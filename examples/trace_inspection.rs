//! The GVSOC-style trace path: simulate with a textual trace, replay it
//! through the paper's listener hierarchy, and compare the energy computed
//! from the trace with the simulator's own accounting.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p pulp-energy --example trace_inspection
//! ```

use kernel_ir::{lower, DType, KernelBuilder, Suite};
use pulp_energy_model::{
    energy_of, energy_waterfall, stats_from_trace, DynamicFeatures, EnergyModel,
};
use pulp_sim::{simulate_traced, ClusterConfig, TextSink};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small kernel with observable contention: two loads to nearby
    // addresses plus FP work.
    let n = 64usize;
    let mut b = KernelBuilder::new("demo", Suite::Custom, DType::F32, n * 4);
    let x = b.array("x", n);
    b.par_for(n as u64, |b, i| {
        b.load(x, i);
        b.compute(3);
        b.store(x, i);
    });
    let kernel = b.build()?;

    let config = ClusterConfig::default();
    let team = 4;
    let lowered = lower(&kernel, team, &config)?;

    // Run once with a text trace attached.
    let mut sink = TextSink::new();
    let stats = simulate_traced(&config, &lowered.program, 1_000_000, &mut sink)?;

    println!("trace: {} lines; first ten:", sink.text.lines().count());
    for line in sink.text.lines().take(10) {
        println!("  {line}");
    }

    // Replay the text through the listener stack (8 CoreListeners,
    // 16 L1BankListeners, 32 L2BankListeners), as the paper does.
    let reconstructed = stats_from_trace(&sink.text, &config, team)?;
    let model = EnergyModel::table1();
    let e_direct = energy_of(&stats, &model, &config);
    let e_trace = energy_of(&reconstructed, &model, &config);

    println!(
        "\nenergy from simulator stats: {:.4} uJ",
        e_direct.total_uj()
    );
    println!("energy from replayed trace:  {:.4} uJ", e_trace.total_uj());
    assert!(
        (e_direct.total() - e_trace.total()).abs() < 1e-6,
        "paths must agree"
    );

    // The reconstructed stats carry full per-core cycle attribution: the
    // summary table shows where every core spent every cycle, and the
    // waterfall shows which (component, operating-region) pair the energy
    // went to. Both reconstructions agree with the simulator's own.
    println!("\nper-core cycle attribution (reconstructed from the trace):");
    print!("{}", reconstructed.summary());
    assert_eq!(stats.breakdown_totals(), reconstructed.breakdown_totals());

    println!("\nenergy waterfall:");
    print!("{}", energy_waterfall(&stats, &model, &config));

    let dynamic = DynamicFeatures::extract(&reconstructed);
    println!("\ndynamic features at {team} cores (Table III):");
    println!("  PE_idle      = {:.3}", dynamic.pe_idle);
    println!("  PE_sleep     = {:.3}", dynamic.pe_sleep);
    println!("  PE_alu       = {}", dynamic.pe_alu);
    println!("  PE_fp        = {}", dynamic.pe_fp);
    println!("  PE_l1        = {}", dynamic.pe_l1);
    println!("  L1_conflicts = {}", dynamic.l1_conflicts);
    Ok(())
}

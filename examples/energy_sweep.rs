//! Energy landscape sweep: how the minimum-energy core count moves with
//! data type and payload size.
//!
//! Reproduces, for a handful of kernels, the observation that motivates
//! the paper: "the energy optimal scaling configuration is not trivial" —
//! it depends on the kernel's resource pressure *and* its instantiation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p pulp-energy --example energy_sweep
//! ```

use pulp_energy::measure_kernel;
use pulp_energy_model::EnergyModel;
use pulp_kernels::{registry, KernelParams, PAYLOAD_SIZES};
use pulp_sim::ClusterConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ClusterConfig::default();
    let model = EnergyModel::table1();
    let defs = registry();

    for name in ["gemm", "fpu_storm", "bank_hammer", "tiny_regions"] {
        let def = defs.iter().find(|d| d.name == name).expect("kernel exists");
        println!("=== {name} ===");
        println!(
            "{:>6} {:>6} | {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} | best",
            "dtype", "bytes", "1", "2", "3", "4", "5", "6", "7", "8"
        );
        for &dtype in def.dtypes {
            for size in PAYLOAD_SIZES {
                let kernel = def.build(&KernelParams::new(dtype, size))?;
                let profile = measure_kernel(&kernel, &config, &model)?;
                print!("{:>6} {:>6} |", dtype.to_string(), size);
                for c in 0..8 {
                    print!(" {:>8.2}", profile.energy[c] * 1e-9);
                }
                println!(" | {} cores", profile.label() + 1);
            }
        }
        println!();
    }
    println!("(energies in microjoules; 'best' is the energy arg-min — note how it");
    println!(" shifts with the data type on FPU-bound kernels and with the payload");
    println!(" size once the OpenMP fork/join overhead stops amortising)");
    Ok(())
}

//! Time-resolved power profile of a phased kernel.
//!
//! Attaches a [`PowerProbe`] to the simulation of the `mixed_phase`
//! kernel (compute phase, barrier, memory phase) and renders power over
//! time — the compute burst, the barrier dip and the memory phase are all
//! visible, the simulator-side analogue of the paper's post-layout power
//! traces.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p pulp-energy --example power_profile
//! ```

use kernel_ir::{lower, DType};
use pulp_energy_model::{render_profile, EnergyModel, PowerProbe};
use pulp_kernels::{registry, KernelParams};
use pulp_sim::{simulate_traced, ClusterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ClusterConfig::default();
    let kernel = registry()
        .into_iter()
        .find(|d| d.name == "mixed_phase")
        .expect("kernel exists")
        .build(&KernelParams::new(DType::F32, 2048))?;

    let lowered = lower(&kernel, 4, &config)?;
    let window = 64;
    let mut probe = PowerProbe::new(EnergyModel::table1(), config.clone(), window);
    let stats = simulate_traced(&config, &lowered.program, 10_000_000, &mut probe)?;

    println!(
        "mixed_phase/f32/2048 on 4 cores: {} cycles, baseline {:.1} pJ/cycle\n",
        stats.cycles,
        probe.baseline_per_cycle() * 1e-3
    );
    println!(
        "{:>10} {:>12}  power over time ({}-cycle windows)",
        "cycle", "power", window
    );
    print!("{}", render_profile(&probe.profile(), window, 50));
    println!(
        "\ndynamic energy captured by the probe: {:.3} uJ",
        probe.dynamic_total() * 1e-9
    );
    Ok(())
}

//! DMA staging vs direct L2 access — the paper's *future work*
//! ("we will model DMA transfers and memory hierarchy"), implemented.
//!
//! The same computation is expressed two ways: reading the off-cluster L2
//! on every access, and staging tiles into the TCDM with the cluster DMA
//! first. The sweep shows where staging pays and how the minimum-energy
//! core count moves.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p pulp-energy --example dma_staging
//! ```

use kernel_ir::DType;
use pulp_energy::measure_kernel;
use pulp_energy_model::EnergyModel;
use pulp_kernels::extra::{dma_double_buffer_scale, dma_tiled_scale, l2_direct_scale};
use pulp_kernels::KernelParams;
use pulp_sim::ClusterConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ClusterConfig::default();
    let model = EnergyModel::table1();

    println!(
        "{:>8} {:>18} {:>12} {:>8} {:>12} {:>12} {:>8}",
        "payload", "variant", "cycles@8", "best", "E@8 [uJ]", "E@best [uJ]", "gain"
    );
    for payload in [4096usize, 8196, 32768] {
        let p = KernelParams::new(DType::I32, payload);
        let direct = l2_direct_scale(&p)?;
        let tiled = dma_tiled_scale(&p)?;
        let double = dma_double_buffer_scale(&p)?;
        let prof_direct = measure_kernel(&direct, &config, &model)?;
        let prof_tiled = measure_kernel(&tiled, &config, &model)?;
        let prof_double = measure_kernel(&double, &config, &model)?;
        for (name, prof) in [
            ("direct-L2", &prof_direct),
            ("dma-staged", &prof_tiled),
            ("double-buffered", &prof_double),
        ] {
            println!(
                "{:>8} {:>18} {:>12} {:>8} {:>12.3} {:>12.3} {:>7.2}x",
                payload,
                name,
                prof.cycles[7],
                format!("{} PEs", prof.label() + 1),
                prof.energy[7] * 1e-9,
                prof.energy[prof.label()] * 1e-9,
                prof_direct.energy[prof_direct.label()] / prof.energy[prof.label()],
            );
        }
    }
    println!("\n'gain' compares each variant's best-case energy with the direct-L2");
    println!("baseline's. Staging through the TCDM with the cluster DMA is the");
    println!("canonical PULP pattern the paper's dataset deliberately avoided —");
    println!("and the reason its authors list DMA modelling as future work.");
    Ok(())
}

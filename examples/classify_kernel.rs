//! Compile-time classification — the paper's end-to-end use case.
//!
//! Trains a decision tree on measured kernels, then predicts the
//! minimum-energy core count of *unseen* kernels from their static
//! features alone, and checks the prediction against simulation ground
//! truth (including the energy wasted when the prediction is off).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p pulp-energy --example classify_kernel
//! ```

use pulp_energy::{
    pipeline::{LabeledDataset, PipelineOptions},
    static_feature_vector, StaticFeatureSet,
};
use pulp_kernels::{registry, KernelParams};
use pulp_ml::{DecisionTree, TreeParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train on a spread of behaviours...
    let train_kernels = [
        "gemm",
        "atax",
        "fir",
        "vec_scale",
        "dot_product",
        "fpu_storm",
        "bank_hammer",
        "reduction_critical",
        "compute_dense",
        "stream_triad",
        "tiny_regions",
        "l2_stream",
    ];
    // ...and classify kernels the model never saw.
    let test_kernels = [
        "mvt",
        "autocorr",
        "stream_copy",
        "bank_stride",
        "critical_light",
    ];

    println!("building training set ({} kernels)...", train_kernels.len());
    let mut opts = PipelineOptions::quick(&train_kernels);
    opts.payload_sizes = vec![512, 2048, 8196];
    let train = LabeledDataset::build(&opts)?;
    let data = train.static_dataset(StaticFeatureSet::All)?;

    let mut tree = DecisionTree::new(TreeParams::default());
    tree.fit(&data);
    println!(
        "trained on {} samples; tree depth {}",
        data.len(),
        tree.depth()
    );

    // The paper argues for decision trees because their decisions are
    // inspectable — print the learned rules (truncated).
    let rules = tree.render(data.feature_names());
    println!("\nlearned decision rules (first 12 lines):");
    for line in rules.lines().take(12) {
        println!("  {line}");
    }
    println!("  ...\n");

    let defs = registry();
    println!(
        "{:<28} {:>10} {:>8} {:>10}",
        "unseen kernel", "predicted", "actual", "waste"
    );
    let mut exact = 0;
    let mut total = 0;
    for name in test_kernels {
        let def = defs.iter().find(|d| d.name == name).expect("kernel exists");
        for dtype in def.dtypes.iter().copied() {
            let params = KernelParams::new(dtype, 2048);
            let kernel = def.build(&params)?;
            let predicted = tree.predict(&static_feature_vector(&kernel));

            // Ground truth by simulation.
            let profile = pulp_energy::measure_kernel(
                &kernel,
                &pulp_sim::ClusterConfig::default(),
                &pulp_energy_model::EnergyModel::table1(),
            )?;
            let actual = profile.label();
            let waste = profile.waste(predicted);
            println!(
                "{:<28} {:>7} PEs {:>5} PEs {:>9.1}%",
                format!("{name}/{dtype}"),
                predicted + 1,
                actual + 1,
                waste * 100.0
            );
            exact += usize::from(predicted == actual);
            total += 1;
        }
    }
    println!("\nexact matches: {exact}/{total} (the paper tolerates small energy waste —");
    println!("a prediction within a few % of the minimum is as good as exact)");
    Ok(())
}

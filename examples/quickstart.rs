//! Quickstart: author a kernel, extract its static features, measure its
//! energy at every core count, and see which configuration wins.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p pulp-energy --example quickstart
//! ```

use kernel_ir::{DType, KernelBuilder, Suite};
use pulp_energy::{measure_kernel, static_feature_names, static_feature_vector};
use pulp_energy_model::EnergyModel;
use pulp_sim::ClusterConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An AXPY-style kernel over 1024 floats, written with the builder API.
    let n = 1024usize;
    let mut b = KernelBuilder::new("axpy", Suite::Custom, DType::F32, 2 * n * 4);
    let x = b.array("x", n);
    let y = b.array("y", n);
    b.par_for(n as u64, |b, i| {
        b.load(x, i);
        b.load(y, i);
        b.compute(2); // a * x[i] + y[i]
        b.store(y, i);
    });
    let kernel = b.build()?;

    // Static features — what the classifier would see at compile time.
    println!("static features of `{}`:", kernel.name);
    for (name, value) in static_feature_names()
        .iter()
        .zip(static_feature_vector(&kernel))
    {
        println!("  {name:>10} = {value:.3}");
    }

    // Ground truth: simulate at 1..=8 cores and apply the Table-I model.
    let config = ClusterConfig::default();
    let profile = measure_kernel(&kernel, &config, &EnergyModel::table1())?;

    println!(
        "\n{:>6} {:>12} {:>10} {:>9}",
        "cores", "energy [uJ]", "cycles", "speedup"
    );
    for c in 0..8 {
        let marker = if c == profile.label() {
            "  <-- minimum energy"
        } else {
            ""
        };
        println!(
            "{:>6} {:>12.3} {:>10} {:>8.2}x{marker}",
            c + 1,
            profile.energy[c] * 1e-9,
            profile.cycles[c],
            profile.speedup(c),
        );
    }
    println!(
        "\nminimum-energy configuration: {} cores (energy waste at 8 cores: {:.1}%)",
        profile.label() + 1,
        profile.waste(7) * 100.0
    );
    Ok(())
}

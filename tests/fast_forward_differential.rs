//! Differential test: the event-horizon fast-forward against the
//! single-step oracle on randomized programs.
//!
//! Programs are generated as a sequence of episodes over a shared
//! synchronisation skeleton (so they always validate): per-core compute
//! blocks, blocking and asynchronous DMA transfers, fork/join regions and
//! critical sections, each closed by a cluster barrier. Every sampled
//! program runs at 1..=8 cores through both simulator modes and must
//! produce bit-identical architectural statistics (including the per-core
//! 10-cause cycle histograms) and an identical trace-event stream.

use proptest::prelude::*;
use pulp_sim::{
    simulate_opts, AddrExpr, ClusterConfig, FpOp, NoTelemetry, OpKind, Program, SegOp, SimOptions,
    SimScratch, SimStats, TraceEvent, VecSink, TCDM_BASE,
};

fn instr(kind: OpKind) -> SegOp {
    SegOp::Instr { kind, addr: None }
}

fn load(addr: u32) -> SegOp {
    SegOp::Instr {
        kind: OpKind::Load,
        addr: Some(AddrExpr::constant(addr)),
    }
}

/// One episode of the shared synchronisation skeleton.
#[derive(Debug, Clone)]
enum Episode {
    /// Per-core op mixes (index selects kind), each `(mix, reps)`.
    Compute(Vec<(u8, u8)>),
    /// Master runs a blocking DMA while workers head to the barrier.
    Dma { words: u64, inbound: bool },
    /// Master overlaps an async DMA with compute, then drains it.
    DmaAsync { words: u64, overlap: u8 },
    /// Fork/join region with per-core work.
    Fork(Vec<u8>),
    /// Every core takes the cluster critical section.
    Critical,
}

fn ops_of_mix(mix: u8, reps: u8, out: &mut Vec<SegOp>) {
    for r in 0..reps {
        out.push(match mix % 5 {
            0 => instr(OpKind::Alu),
            1 => instr(OpKind::Mul),
            2 => instr(OpKind::Fp(FpOp::Div)),
            3 => load(TCDM_BASE + u32::from(r % 4) * 4),
            _ => load(TCDM_BASE), // all cores on one bank: conflict stalls
        });
    }
}

/// Expands the episode list into one stream per core. Every episode ends
/// with a cluster barrier, so the synchronisation skeleton matches across
/// cores by construction and the program always validates.
fn program_of_episodes(team: usize, episodes: &[Episode]) -> Program {
    let mut streams = vec![Vec::new(); team];
    for ep in episodes {
        match ep {
            Episode::Compute(mixes) => {
                for (core, stream) in streams.iter_mut().enumerate() {
                    let (mix, reps) = mixes[core % mixes.len()];
                    ops_of_mix(mix, reps, stream);
                }
            }
            Episode::Dma { words, inbound } => {
                streams[0].push(SegOp::Dma {
                    words: *words,
                    inbound: *inbound,
                });
            }
            Episode::DmaAsync { words, overlap } => {
                streams[0].push(SegOp::DmaAsync {
                    words: *words,
                    inbound: true,
                });
                ops_of_mix(0, *overlap, &mut streams[0]);
                streams[0].push(SegOp::DmaWait);
            }
            Episode::Fork(work) => {
                for (core, stream) in streams.iter_mut().enumerate() {
                    stream.push(if core == 0 {
                        SegOp::Fork
                    } else {
                        SegOp::WaitFork
                    });
                    ops_of_mix(1, work[core % work.len()], stream);
                }
            }
            Episode::Critical => {
                for stream in &mut streams {
                    stream.push(SegOp::CriticalBegin);
                    stream.push(instr(OpKind::Alu));
                    stream.push(SegOp::CriticalEnd);
                }
            }
        }
        for stream in &mut streams {
            stream.push(SegOp::Barrier);
        }
    }
    Program::new(streams)
}

fn arb_episode() -> impl Strategy<Value = Episode> {
    (
        0u8..5,
        prop::collection::vec((0u8..5, 0u8..12), 1..8),
        16u64..2048,
        prop::bool::ANY,
        prop::collection::vec(0u8..10, 1..8),
        0u8..8,
    )
        .prop_map(|(kind, mixes, words, inbound, work, overlap)| match kind {
            0 => Episode::Compute(mixes),
            1 => Episode::Dma { words, inbound },
            2 => Episode::DmaAsync {
                words: words / 2 + 16,
                overlap,
            },
            3 => Episode::Fork(work),
            _ => Episode::Critical,
        })
}

fn run(
    config: &ClusterConfig,
    program: &Program,
    opts: &SimOptions,
    scratch: &mut SimScratch,
) -> (SimStats, Vec<(u64, TraceEvent)>) {
    let mut sink = VecSink::new();
    let stats = simulate_opts(config, program, opts, &mut sink, &mut NoTelemetry, scratch)
        .expect("episode programs always terminate");
    (stats, sink.events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fast-forward is bit-identical to the single-step oracle on random
    /// episode programs at every team size: same statistics, same 10-cause
    /// cycle histograms, same trace-event stream.
    #[test]
    fn fast_forward_matches_oracle_on_random_programs(
        episodes in prop::collection::vec(arb_episode(), 1..6),
        team in 1usize..9,
    ) {
        let config = ClusterConfig::default();
        let program = program_of_episodes(team, &episodes);
        prop_assert_eq!(program.validate(), Ok(()));
        let ff_opts = SimOptions::default();
        let oracle_opts = SimOptions::oracle();
        let mut scratch = SimScratch::new();
        let (ff, ff_events) = run(&config, &program, &ff_opts, &mut scratch);
        let (oracle, oracle_events) = run(&config, &program, &oracle_opts, &mut scratch);
        // The oracle must never take a bulk span.
        prop_assert_eq!(oracle.fast_forward.spans, 0);
        prop_assert_eq!(oracle.fast_forward.skipped_cycles, 0);
        // Per-core cause histograms agree exactly.
        for (core, (a, b)) in ff.cores.iter().zip(oracle.cores.iter()).enumerate() {
            prop_assert_eq!(
                &a.breakdown, &b.breakdown,
                "core {} cause histogram diverged", core
            );
        }
        // The trace streams are identical event for event.
        prop_assert_eq!(ff_events, oracle_events);
        // Architectural state is bit-identical modulo the ff diagnostics.
        prop_assert_eq!(ff.without_fast_forward(), oracle);
    }

    /// The adaptive scan re-arm points never miss a skippable span: on
    /// random episode programs at every team size, adaptive scanning takes
    /// exactly the same bulk spans (count and skipped cycles) as scanning
    /// on every iteration, while computing the horizon no more often — and
    /// the architectural results stay bit-identical.
    #[test]
    fn adaptive_scan_never_misses_a_span_on_random_programs(
        episodes in prop::collection::vec(arb_episode(), 1..6),
        team in 1usize..9,
    ) {
        let config = ClusterConfig::default();
        let program = program_of_episodes(team, &episodes);
        prop_assert_eq!(program.validate(), Ok(()));
        let adaptive_opts = SimOptions::default(); // adaptive_scan: true
        let always_opts = SimOptions::default().with_adaptive_scan(false);
        let mut scratch = SimScratch::new();
        let (adaptive, adaptive_events) = run(&config, &program, &adaptive_opts, &mut scratch);
        let (always, always_events) = run(&config, &program, &always_opts, &mut scratch);
        // Same spans: an armed scan at every point the always-scan skips.
        prop_assert_eq!(adaptive.fast_forward.spans, always.fast_forward.spans);
        prop_assert_eq!(
            adaptive.fast_forward.skipped_cycles,
            always.fast_forward.skipped_cycles
        );
        prop_assert_eq!(
            adaptive.fast_forward.horizon_skips,
            always.fast_forward.horizon_skips
        );
        // Adaptive never scans more often than once per iteration.
        prop_assert!(
            adaptive.fast_forward.horizon_computations
                <= always.fast_forward.horizon_computations,
            "adaptive scanned {} times vs always-scan's {}",
            adaptive.fast_forward.horizon_computations,
            always.fast_forward.horizon_computations
        );
        // And the architectural results are bit-identical.
        prop_assert_eq!(adaptive.without_fast_forward(), always.without_fast_forward());
        prop_assert_eq!(adaptive_events, always_events);
    }
}

/// A fixed barrier/DMA-heavy regression program: long quiescent spans, so
/// the fast-forward must actually engage while staying bit-identical.
#[test]
fn fast_forward_engages_and_matches_on_dma_heavy_program() {
    let config = ClusterConfig::default();
    let episodes = [
        Episode::Dma {
            words: 4096,
            inbound: true,
        },
        Episode::Fork(vec![3, 1, 4, 1, 5]),
        Episode::Dma {
            words: 2048,
            inbound: false,
        },
        Episode::Critical,
    ];
    let mut scratch = SimScratch::new();
    for team in [2usize, 4, 8] {
        let program = program_of_episodes(team, &episodes);
        let (ff, ff_events) = run(&config, &program, &SimOptions::default(), &mut scratch);
        let (oracle, oracle_events) = run(&config, &program, &SimOptions::oracle(), &mut scratch);
        assert!(
            ff.skip_ratio() > 0.5,
            "team {team}: expected heavy skipping, got {}",
            ff.skip_ratio()
        );
        assert_eq!(ff.without_fast_forward(), oracle, "team {team}");
        assert_eq!(ff_events, oracle_events, "team {team}");
    }
}

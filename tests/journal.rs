//! Golden tests over the committed fixture journal: the journal's bytes
//! are exactly what the canonical writer produces, and `pulp_cli report`'s
//! output on it is byte-deterministic.
//!
//! The fixture pair lives in `tests/fixtures/`:
//!
//! * `sweep_journal.jsonl` — a two-shard labeling sweep, written by
//!   [`fixture_journal`] through the real [`JournalWriter`];
//! * `sweep_journal_report.txt` — `render_report` (the body of
//!   `pulp_cli report`) over that journal.
//!
//! Regenerate both after an intentional schema change with
//! `cargo test -p pulp-obs --test journal -- --ignored regenerate` and
//! review the diff like any other golden update.

use pulp_obs::{
    render_journal, render_report, validate_journal, JournalEvent, JournalReader, JournalWriter,
};

const FIXTURE: &str = include_str!("fixtures/sweep_journal.jsonl");
const GOLDEN_REPORT: &str = include_str!("fixtures/sweep_journal_report.txt");

/// The fixture's event stream: a plausible two-shard sweep with fixed
/// values everywhere a real run would record wall-clock measurements.
fn fixture_journal() -> String {
    let mut w = JournalWriter::in_memory("headline", "0b3bdbc67d8b88ea", 42);
    let events = [
        JournalEvent::StageStart {
            stage: "enumerate".into(),
        },
        JournalEvent::StageEnd {
            stage: "enumerate".into(),
            wall_ms: 3.25,
        },
        JournalEvent::StageStart {
            stage: "measure".into(),
        },
        JournalEvent::Heartbeat {
            shard: 0,
            done: 16,
            assigned: 32,
            elapsed_ms: 1200,
            kernels_per_s: 13.333,
            cache_hits: 10,
            cache_misses: 6,
        },
        JournalEvent::Heartbeat {
            shard: 1,
            done: 12,
            assigned: 31,
            elapsed_ms: 1200,
            kernels_per_s: 10.0,
            cache_hits: 0,
            cache_misses: 12,
        },
        JournalEvent::Heartbeat {
            shard: 0,
            done: 32,
            assigned: 32,
            elapsed_ms: 2400,
            kernels_per_s: 13.333,
            cache_hits: 20,
            cache_misses: 12,
        },
        JournalEvent::Heartbeat {
            shard: 1,
            done: 31,
            assigned: 31,
            elapsed_ms: 3100,
            kernels_per_s: 10.0,
            cache_hits: 1,
            cache_misses: 30,
        },
        JournalEvent::SlowKernel {
            sample: "linalg/gemm/i32/8192".into(),
            wall_ms: 412.5,
            cycles: 1_250_000,
        },
        JournalEvent::SlowKernel {
            sample: "dsp/fir/f32/8192".into(),
            wall_ms: 201.0,
            cycles: 640_000,
        },
        JournalEvent::Cache {
            hits: 21,
            misses: 42,
            invalidations: 1,
        },
        JournalEvent::StageEnd {
            stage: "measure".into(),
            wall_ms: 3100.0,
        },
        JournalEvent::StageStart {
            stage: "train_eval".into(),
        },
        JournalEvent::StageEnd {
            stage: "train_eval".into(),
            wall_ms: 96.5,
        },
        JournalEvent::BenchRecord {
            bench: "headline".into(),
            name: "static_at_5".into(),
            value: 0.79,
        },
    ];
    w.events(events).expect("in-memory journal writes succeed");
    w.finalize_to_string().expect("finalize")
}

#[test]
fn fixture_is_exactly_what_the_writer_produces() {
    assert_eq!(
        fixture_journal(),
        FIXTURE,
        "committed fixture drifted from the canonical writer; regenerate \
         with `cargo test -p pulp-obs --test journal -- --ignored regenerate`"
    );
}

#[test]
fn fixture_validates_and_round_trips_bit_identically() {
    validate_journal(FIXTURE).expect("fixture validates");
    let journal = JournalReader::read_str(FIXTURE).expect("fixture parses");
    assert!(journal.ok());
    assert_eq!(journal.run_start(), ("headline", "0b3bdbc67d8b88ea", 42));
    // parse → canonical re-encode reproduces the file bytes.
    assert_eq!(render_journal(&journal), FIXTURE);
}

#[test]
fn report_on_the_fixture_is_byte_deterministic() {
    let journal = JournalReader::read_str(FIXTURE).expect("fixture parses");
    let report = render_report(&journal);
    assert_eq!(report, render_report(&journal), "report must be pure");
    assert_eq!(
        report, GOLDEN_REPORT,
        "report drifted from the golden; regenerate with \
         `cargo test -p pulp-obs --test journal -- --ignored regenerate`"
    );
}

#[test]
fn report_names_the_fixtures_headline_facts() {
    // Sanity on the golden itself, so a bad regeneration can't silently
    // pin a useless report.
    for needle in [
        "0b3bdbc67d8b88ea", // manifest hash
        "measure",          // stage table
        "linalg/gemm/i32/8192",
        "static_at_5",
        "21", // cache hits
        "42", // cache misses
    ] {
        assert!(
            GOLDEN_REPORT.contains(needle),
            "golden report lost {needle:?}:\n{GOLDEN_REPORT}"
        );
    }
}

/// Rewrites both fixture files. Run explicitly after intentional schema
/// changes: `cargo test -p pulp-obs --test journal -- --ignored regenerate`.
#[test]
#[ignore = "writes tests/fixtures/; run explicitly to regenerate goldens"]
fn regenerate() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures");
    std::fs::create_dir_all(dir).expect("fixture dir");
    let text = fixture_journal();
    let journal = JournalReader::read_str(&text).expect("generated journal parses");
    std::fs::write(format!("{dir}/sweep_journal.jsonl"), &text).expect("write journal");
    std::fs::write(
        format!("{dir}/sweep_journal_report.txt"),
        render_report(&journal),
    )
    .expect("write report");
}

//! End-to-end pipeline integration: dataset construction, feature/label
//! coherence and classification above chance on a reduced kernel set.

use pulp_energy::{
    evaluation::{always_n_curve, tolerance_curve, Protocol},
    pipeline::{LabeledDataset, PipelineOptions},
    StaticFeatureSet, NUM_CLASSES,
};
use pulp_ml::{cross_val_predict, DecisionTree, TreeParams};

fn dataset() -> LabeledDataset {
    let mut opts = PipelineOptions::quick(&[
        "gemm",
        "fir",
        "vec_scale",
        "fpu_storm",
        "bank_hammer",
        "reduction_critical",
        "compute_dense",
        "tiny_regions",
        "stream_triad",
        "dot_product",
    ]);
    opts.payload_sizes = vec![512, 2048, 8196];
    LabeledDataset::build(&opts).expect("dataset build")
}

#[test]
fn pipeline_produces_coherent_dataset() {
    let data = dataset();
    assert_eq!(data.len(), 10 * 2 * 3);
    for s in &data.samples {
        assert_eq!(s.energy.len(), NUM_CLASSES);
        assert_eq!(s.static_x.len(), 20);
        assert_eq!(s.dynamic_x.len(), 80);
        assert!(
            s.energy.iter().all(|&e| e.is_finite() && e > 0.0),
            "{}",
            s.id
        );
        // Energies are in a sane absolute range for microcontroller
        // kernels: nanojoules to millijoules.
        assert!(
            s.energy[0] > 1e3 && s.energy[0] < 1e15,
            "{}: {}",
            s.id,
            s.energy[0]
        );
    }
    // Labels span more than one class on this behaviour mix.
    let classes: std::collections::HashSet<usize> = data.labels().into_iter().collect();
    assert!(classes.len() >= 3, "labels collapsed: {classes:?}");
}

#[test]
fn static_features_classify_above_chance() {
    let data = dataset();
    let ds = data.static_dataset(StaticFeatureSet::All).expect("static");
    let preds = cross_val_predict(&ds, 5, 0, || DecisionTree::new(TreeParams::default()));
    let acc = pulp_ml::accuracy(&preds, ds.labels());
    // 8-class chance is 12.5%; a majority-class guesser would get the
    // dominant-class share. The tree must beat chance comfortably.
    assert!(acc > 0.3, "static CV accuracy too low: {acc}");
}

#[test]
fn learned_tree_beats_always_8_under_tolerance() {
    let data = dataset();
    let ds = data.static_dataset(StaticFeatureSet::All).expect("static");
    let tolerances = vec![0.0, 0.05, 0.10];
    let energies = data.energies();
    let curve = tolerance_curve("static", &ds, &energies, &tolerances, &Protocol::quick());
    let naive = always_n_curve(8, &energies, &tolerances);
    let at5 = curve.at(0.05).expect("grid");
    let naive5 = naive.at(0.05).expect("grid");
    assert!(
        at5 > naive5,
        "tree {at5:.3} must beat always-8 {naive5:.3} at 5% tolerance"
    );
}

#[test]
fn dynamic_features_are_at_least_as_good_as_static() {
    let data = dataset();
    let energies = data.energies();
    let tolerances = vec![0.05];
    let protocol = Protocol::quick();
    let s = tolerance_curve(
        "static",
        &data.static_dataset(StaticFeatureSet::All).expect("static"),
        &energies,
        &tolerances,
        &protocol,
    );
    let d = tolerance_curve(
        "dynamic",
        &data.dynamic_dataset().expect("dynamic"),
        &energies,
        &tolerances,
        &protocol,
    );
    // Dynamic features contain the ground truth's ingredients; allow a
    // small slack for CV noise on the reduced set.
    let d5 = d.at(0.05).expect("grid");
    let s5 = s.at(0.05).expect("grid");
    assert!(
        d5 >= s5 - 0.10,
        "dynamic {d5:.3} should not trail static {s5:.3} by much"
    );
}

#[test]
fn tolerance_never_decreases_accuracy() {
    let data = dataset();
    let ds = data.static_dataset(StaticFeatureSet::Agg).expect("agg");
    let tolerances: Vec<f64> = (0..=10).map(|t| t as f64 / 50.0).collect();
    let curve = tolerance_curve(
        "agg",
        &ds,
        &data.energies(),
        &tolerances,
        &Protocol::quick(),
    );
    for w in curve.mean.windows(2) {
        assert!(w[1] >= w[0] - 1e-12);
    }
}

#[test]
fn fpu_bound_kernel_labels_depend_on_dtype() {
    let data = dataset();
    let label_of = |id: &str| {
        data.samples
            .iter()
            .find(|s| s.id == id)
            .unwrap_or_else(|| panic!("missing sample {id}"))
            .label
    };
    // The paper's FPU-contention story: f32 instances of an FP-dense
    // kernel must favour fewer cores than their i32 twins.
    let f32_label = label_of("custom/fpu_storm/f32/8196");
    let i32_label = label_of("custom/fpu_storm/i32/8196");
    assert!(
        f32_label < i32_label,
        "fpu_storm: f32 label {} must be below i32 label {}",
        f32_label + 1,
        i32_label + 1
    );
}

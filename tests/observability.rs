//! Cross-crate observability contract tests.
//!
//! Three properties the profiling stack promises:
//!
//! 1. **Exclusivity** — the simulator attributes every cycle of every core
//!    to exactly one [`CycleCause`], at every team size.
//! 2. **Path agreement** — the trace-replay listener stack reconstructs
//!    the same per-core stall-cause counters the fast path reports.
//! 3. **Chrome export** — the trace-event JSON survives a round trip
//!    through `serde_json` with proper nesting and monotonic timestamps.
//! 4. **Prometheus export** — the Recorder→registry bridge turns real
//!    pipeline spans into a valid, deterministic text exposition.

use kernel_ir::lower;
use pulp_energy::pipeline::{LabeledDataset, PipelineOptions};
use pulp_energy_model::stats_from_trace;
use pulp_obs::{chrome_trace, validate_chrome_trace, Recorder};
use pulp_sim::{
    simulate_instrumented, simulate_traced, ClusterConfig, NullSink, RegionProfiler, TextSink,
};
use serde::Value;

fn lowered_program(team: usize, config: &ClusterConfig) -> pulp_sim::Program {
    let defs = pulp_kernels::registry();
    let def = defs
        .iter()
        .find(|d| d.name == "fir")
        .expect("fir in registry");
    let kernel = def
        .build(&pulp_kernels::KernelParams::new(kernel_ir::DType::F32, 512))
        .expect("fir instantiates");
    lower(&kernel, team, config).expect("fir lowers").program
}

#[test]
fn every_cycle_has_exactly_one_cause_at_every_team_size() {
    let config = ClusterConfig::default();
    for team in 1..=8 {
        let program = lowered_program(team, &config);
        let mut profiler = RegionProfiler::new();
        let stats =
            simulate_instrumented(&config, &program, 10_000_000, &mut NullSink, &mut profiler)
                .expect("simulate");
        stats.check_consistency().expect("attribution consistent");
        for (id, core) in stats.cores.iter().enumerate() {
            assert_eq!(
                core.breakdown.total(),
                stats.cycles,
                "team {team} core {id}: per-core attribution must tile the run"
            );
        }
        assert_eq!(
            stats.breakdown_totals().total(),
            stats.cycles * stats.cores.len() as u64,
            "team {team}: cluster-wide attribution must be cycles x cores"
        );
        // The region segmentation is a partition of the same cells.
        let region_cells: u64 = profiler.regions().iter().map(|r| r.breakdown.total()).sum();
        assert_eq!(region_cells, stats.cycles * stats.cores.len() as u64);
        assert_eq!(profiler.totals.total(), region_cells);
    }
}

#[test]
fn listener_replay_reproduces_fast_path_stall_causes() {
    let config = ClusterConfig::default();
    for team in [1, 3, 8] {
        let program = lowered_program(team, &config);
        let mut sink = TextSink::new();
        let direct = simulate_traced(&config, &program, 10_000_000, &mut sink).expect("simulate");
        let replayed = stats_from_trace(&sink.text, &config, program.num_cores()).expect("replay");
        for (id, (d, r)) in direct.cores.iter().zip(&replayed.cores).enumerate() {
            assert_eq!(
                d.breakdown, r.breakdown,
                "team {team} core {id}: replayed stall causes must match the fast path"
            );
        }
        // The replay reconstructs architectural state only; the fast-forward
        // span counters are diagnostics the trace does not carry.
        assert_eq!(direct.without_fast_forward(), replayed);
    }
}

#[test]
fn pipeline_chrome_trace_round_trips_with_nesting_and_monotonic_time() {
    let mut rec = Recorder::new();
    let data =
        LabeledDataset::build_instrumented(&PipelineOptions::quick(&["vec_scale"]), &mut rec)
            .expect("build");
    assert_eq!(data.len(), 4);

    // Per-sample spans nest the per-team simulate spans.
    let sample_spans: Vec<usize> = rec
        .spans()
        .iter()
        .enumerate()
        .filter(|(_, s)| s.cat == "sample")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(sample_spans.len(), 4);
    let nested = rec
        .spans()
        .iter()
        .filter(|s| s.cat == "simulate")
        .filter(|s| s.parent.is_some_and(|p| sample_spans.contains(&p)))
        .count();
    assert_eq!(
        nested,
        4 * 8,
        "every simulate span nests inside its sample span"
    );

    let json = chrome_trace(&rec, "pipeline");
    validate_chrome_trace(&json).expect("structurally valid trace");

    // Round trip through serde_json and re-check the invariants by hand.
    let value: Value = serde_json::from_str(&json).expect("parses");
    let events = value.field("traceEvents").expect("traceEvents");
    let Value::Seq(events) = events else {
        panic!("traceEvents must be an array")
    };
    assert!(!events.is_empty());
    let mut last_start: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut complete = 0usize;
    for e in events {
        let ph = e
            .field("ph")
            .and_then(|v| v.as_str().map(str::to_string))
            .expect("ph");
        if ph != "X" {
            continue;
        }
        complete += 1;
        let tid = e.field("tid").and_then(|v| v.as_u64()).expect("tid");
        let ts = e.field("ts").and_then(|v| v.as_u64()).expect("ts");
        e.field("dur").and_then(|v| v.as_u64()).expect("dur");
        if let Some(&prev) = last_start.get(&tid) {
            assert!(ts >= prev, "per-track start times must be non-decreasing");
        }
        last_start.insert(tid, ts);
    }
    assert_eq!(
        complete,
        rec.spans().len(),
        "every span exports as one complete event"
    );

    // The deterministic dump is stable across exports.
    assert_eq!(rec.to_json(), rec.to_json());
}

#[test]
fn pipeline_metrics_render_a_valid_prometheus_exposition() {
    use pulp_obs::{validate_exposition, MetricsRegistry};

    let mut metrics = MetricsRegistry::new();
    let data =
        LabeledDataset::build_with_metrics(&PipelineOptions::quick(&["vec_scale"]), &mut metrics)
            .expect("build");
    assert_eq!(data.len(), 4);

    let text = metrics.render();
    validate_exposition(&text).expect("pipeline exposition is structurally valid");

    // Every pipeline span category becomes one stage histogram series, and
    // the sample histogram counts exactly the four built samples.
    assert!(text.contains("# TYPE pulp_pipeline_stage_ticks histogram"));
    assert_eq!(
        metrics.histogram_count("pulp_pipeline_stage_ticks", &[("stage", "sample")]),
        Some(4),
        "one observation per built sample:\n{text}"
    );
    assert_eq!(
        metrics.histogram_count("pulp_pipeline_stage_ticks", &[("stage", "simulate")]),
        Some(4 * 8),
        "one observation per (sample, team) simulate span"
    );

    // The exposition is deterministic: rendering twice is byte-identical,
    // and a registry fed from the same spans renders the same text (modulo
    // the wall-clock durations, which we exclude by comparing structure).
    assert_eq!(text, metrics.render());
    let families: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
    let mut sorted = families.clone();
    sorted.sort_unstable();
    assert_eq!(families, sorted, "families render in sorted order");
}

//! Property-based tests over the core invariants of the stack.

use kernel_ir::{lower, DType, KernelBuilder, Suite};
use proptest::prelude::*;
use pulp_energy_model::{energy_of, stats_from_trace, EnergyModel};
use pulp_ml::{stratified_folds, tolerance_accuracy};
use pulp_sim::{
    render_line, simulate, simulate_traced, ClusterConfig, FpOp, OpKind, Program, SegOp, TextSink,
    TraceEvent,
};

fn config() -> ClusterConfig {
    ClusterConfig::default()
}

/// A random kernel: 1 parallel loop over a random trip count, a random
/// body mix, optionally a nested sequential loop.
fn arb_kernel() -> impl Strategy<Value = kernel_ir::Kernel> {
    (
        1u64..200,       // parallel trip
        0u32..6,         // compute ops
        0u32..3,         // loads
        0u32..2,         // stores
        prop::bool::ANY, // nested loop?
        1u64..8,         // nested trip
        prop::bool::ANY, // f32?
        prop::bool::ANY, // critical?
    )
        .prop_map(
            |(trip, ops, loads, stores, nested, ntrip, is_f32, critical)| {
                let dtype = if is_f32 { DType::F32 } else { DType::I32 };
                let n = 256usize;
                let mut b = KernelBuilder::new("prop", Suite::Custom, dtype, n * 4);
                let x = b.array("x", n);
                let acc = b.array("acc", 4);
                b.par_for(trip.min(n as u64), |b, i| {
                    for _ in 0..loads {
                        b.load(x, i);
                    }
                    b.compute(ops);
                    if nested {
                        b.for_(ntrip, |b, _j| {
                            b.load(x, i);
                            b.compute(1);
                        });
                    }
                    for _ in 0..stores {
                        b.store(x, i);
                    }
                    if critical {
                        b.critical(|b| {
                            b.load(acc, 0);
                            b.alu(1);
                            b.store(acc, 0);
                        });
                    }
                });
                b.build()
                    .expect("generated kernel is valid by construction")
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random kernels simulate successfully at every team size and keep
    /// their memory traffic invariant across team sizes.
    #[test]
    fn traffic_conservation_on_random_kernels(kernel in arb_kernel()) {
        let cfg = config();
        let mut reference = None;
        for team in [1usize, 3, 8] {
            let lowered = lower(&kernel, team, &cfg).expect("lower");
            let stats = simulate(&cfg, &lowered.program).expect("simulate");
            prop_assert_eq!(stats.check_consistency(), Ok(()));
            let traffic = (stats.l1_reads(), stats.l1_writes());
            match reference {
                None => reference = Some(traffic),
                Some(r) => prop_assert_eq!(traffic, r),
            }
        }
    }

    /// Energy accounting is strictly monotone in added work.
    #[test]
    fn energy_grows_with_work(extra in 1u32..64) {
        let cfg = config();
        let model = EnergyModel::table1();
        let build = |n: u32| {
            let mut b = KernelBuilder::new("w", Suite::Custom, DType::I32, 64);
            b.par_for(4, |b, _| b.alu(n));
            b.build().expect("valid")
        };
        let energy = |k: &kernel_ir::Kernel| {
            let lowered = lower(k, 2, &cfg).expect("lower");
            let stats = simulate(&cfg, &lowered.program).expect("simulate");
            energy_of(&stats, &model, &cfg).total()
        };
        let small = energy(&build(4));
        let big = energy(&build(4 + extra));
        prop_assert!(big > small, "{big} !> {small}");
    }

    /// The trace path reconstructs the fast path exactly for random
    /// kernels.
    #[test]
    fn trace_parity_on_random_kernels(kernel in arb_kernel()) {
        let cfg = config();
        let lowered = lower(&kernel, 3, &cfg).expect("lower");
        let mut sink = TextSink::new();
        let direct =
            simulate_traced(&cfg, &lowered.program, 50_000_000, &mut sink).expect("simulate");
        let replayed = stats_from_trace(&sink.text, &cfg, 3).expect("replay");
        // Replay reconstructs architectural state; fast-forward span
        // counters are diagnostics the trace does not carry.
        prop_assert_eq!(direct.without_fast_forward(), replayed);
    }

    /// Rendered trace lines always parse back.
    #[test]
    fn trace_lines_round_trip(
        cycle in 0u64..1_000_000,
        core in 0usize..8,
        bank in 0usize..16,
        kind in prop::sample::select(vec![
            OpKind::Alu, OpKind::Mul, OpKind::Div, OpKind::Fp(FpOp::Add),
            OpKind::Fp(FpOp::Div), OpKind::Branch, OpKind::Jump, OpKind::Nop,
        ]),
        which in 0usize..6,
    ) {
        let event = match which {
            0 => TraceEvent::Insn { core, kind, addr: None },
            1 => TraceEvent::Stall {
                core,
                cause: pulp_sim::CycleCause::ALL[(cycle % 10) as usize],
            },
            2 => TraceEvent::CgEnter {
                core,
                cause: pulp_sim::CycleCause::ALL[(core + bank) % 10],
            },
            3 => TraceEvent::L1Access { bank, write: cycle % 2 == 0 },
            4 => TraceEvent::L1Conflict { bank },
            _ => TraceEvent::Insn { core, kind: OpKind::Load, addr: Some(pulp_sim::TCDM_BASE + (cycle as u32 % 1024) * 4) },
        };
        let mut line = String::new();
        render_line(&mut line, cycle, event);
        let parsed = pulp_energy_model::parse_line(&line);
        prop_assert!(parsed.is_some(), "unparsable line: {line}");
        prop_assert_eq!(parsed.expect("parsed").cycle, cycle);
    }

    /// Stratified folds always partition the index set.
    #[test]
    fn folds_partition(labels in prop::collection::vec(0usize..5, 10..200), k in 2usize..10, seed in 0u64..100) {
        let folds = stratified_folds(&labels, k, seed);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..labels.len()).collect::<Vec<_>>());
    }

    /// Tolerance accuracy is monotone in the tolerance for any energies.
    #[test]
    fn tolerance_accuracy_is_monotone(
        energies in prop::collection::vec(
            prop::collection::vec(1.0f64..1000.0, 8),
            1..40,
        ),
        preds in prop::collection::vec(0usize..8, 40),
    ) {
        let preds = &preds[..energies.len()];
        let mut last = 0.0;
        for t in [0.0, 0.05, 0.2, 1.0, 10.0] {
            let acc = tolerance_accuracy(preds, &energies, t);
            prop_assert!(acc >= last - 1e-12);
            last = acc;
        }
    }

    /// Every memory access of a lowered random kernel lands inside one of
    /// the kernel's declared array windows (no stray addresses escape the
    /// lowering's layout).
    #[test]
    fn lowered_addresses_stay_in_declared_arrays(kernel in arb_kernel(), team in 1usize..8) {
        use pulp_sim::{TraceEvent, VecSink};
        let cfg = config();
        let lowered = lower(&kernel, team, &cfg).expect("lower");
        // Recompute each array's byte window from the deterministic layout.
        let windows: Vec<(u32, u32)> = kernel
            .arrays
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let base = lowered.layout.base(kernel_ir::ArrayId::for_tests(i as u32));
                (base, base + a.bytes() as u32)
            })
            .collect();
        let mut sink = VecSink::new();
        simulate_traced(&cfg, &lowered.program, 50_000_000, &mut sink).expect("simulate");
        for (_, e) in &sink.events {
            if let TraceEvent::Insn { addr: Some(a), .. } = e {
                prop_assert!(
                    windows.iter().any(|&(lo, hi)| (lo..hi).contains(a)),
                    "address {a:#x} outside every array window {windows:?}"
                );
            }
        }
    }

    /// Unrolling preserves simulated memory traffic for random kernels.
    #[test]
    fn unrolling_is_semantics_preserving(kernel in arb_kernel(), factor in 2u32..6) {
        let cfg = config();
        let unrolled = kernel_ir::unroll_innermost(&kernel, factor);
        prop_assert!(kernel_ir::validate(&unrolled).is_ok());
        let traffic = |k: &kernel_ir::Kernel| {
            let lowered = lower(k, 2, &cfg).expect("lower");
            let s = simulate(&cfg, &lowered.program).expect("simulate");
            (s.l1_reads(), s.l1_writes())
        };
        prop_assert_eq!(traffic(&kernel), traffic(&unrolled));
    }

    /// Programs of random straight-line ops never break the simulator.
    #[test]
    fn random_straightline_programs_simulate(
        ops in prop::collection::vec(0usize..6, 1..64),
        team in 1usize..8,
    ) {
        let stream: Vec<SegOp> = ops
            .iter()
            .map(|&o| match o {
                0 => SegOp::Instr { kind: OpKind::Alu, addr: None },
                1 => SegOp::Instr { kind: OpKind::Mul, addr: None },
                2 => SegOp::Instr { kind: OpKind::Fp(FpOp::Mul), addr: None },
                3 => SegOp::Instr {
                    kind: OpKind::Load,
                    addr: Some(pulp_sim::AddrExpr::constant(pulp_sim::TCDM_BASE)),
                },
                4 => SegOp::Instr {
                    kind: OpKind::Store,
                    addr: Some(pulp_sim::AddrExpr::constant(pulp_sim::TCDM_BASE + 64)),
                },
                _ => SegOp::Instr { kind: OpKind::Nop, addr: None },
            })
            .collect();
        let program = Program::new(vec![stream; team]);
        let stats = simulate(&config(), &program).expect("simulate");
        prop_assert_eq!(stats.check_consistency(), Ok(()));
        prop_assert_eq!(stats.total_retired(), (ops.len() * team) as u64);
    }

    /// Wall time is the only non-deterministic manifest field; no value of
    /// it (on either side) may perturb `manifest_hash`, while any change
    /// to a provenance field must.
    #[test]
    fn manifest_hash_ignores_wall_time_only(
        wall_a in 0u64..u64::MAX,
        wall_b in 0u64..u64::MAX,
        seed in 0u64..1_000_000,
    ) {
        use pulp_energy::RunManifest;
        use pulp_energy_model::EnergyModel;
        let base = RunManifest::new("prop", &config(), &EnergyModel::table1()).with_seed(seed);
        let a = base.clone().with_wall_time_ms(wall_a);
        let b = base.clone().with_wall_time_ms(wall_b);
        prop_assert_eq!(a.manifest_hash(), b.manifest_hash());
        prop_assert_eq!(a.manifest_hash(), base.manifest_hash());
        // Wall time does change the raw encoding when the values differ —
        // the hash's indifference is deliberate, not vacuous.
        if wall_a != wall_b {
            prop_assert_ne!(a.to_json_pretty(), b.to_json_pretty());
        }
        prop_assert_ne!(
            base.clone().with_seed(seed + 1).manifest_hash(),
            base.manifest_hash()
        );
    }
}

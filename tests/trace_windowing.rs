//! The paper's kernel-region isolation: "after analysing the trace, it is
//! possible to filter out events within a range of cycles ... the range of
//! cycles in which the parallel code fragment is contained".
//!
//! We simulate a program with a warm-up phase, a kernel phase and a
//! cool-down phase in one trace, locate the kernel window from the barrier
//! markers, and check the windowed listener counts only the kernel's work.

use kernel_ir::{lower, DType, KernelBuilder, Suite};
use pulp_energy_model::{PulpListeners, TraceAnalyser};
use pulp_sim::{simulate_traced, ClusterConfig, TextSink};

/// Builds a program whose kernel phase is bracketed by barriers:
/// master-only warm-up, parallel kernel, master-only cool-down.
fn phased_kernel(n: usize) -> kernel_ir::Kernel {
    let mut b = KernelBuilder::new("phased", Suite::Custom, DType::I32, n * 4);
    let x = b.array("x", n);
    // Warm-up: sequential master-only initialisation.
    b.for_(n as u64, |b, i| b.store(x, i));
    b.barrier();
    // The kernel: the parallel region of interest.
    b.par_for(n as u64, |b, i| {
        b.load(x, i);
        b.alu(2);
        b.store(x, i);
    });
    b.barrier();
    // Cool-down: sequential master-only checksum.
    b.for_(n as u64, |b, i| b.load(x, i));
    b.build().expect("valid kernel")
}

#[test]
fn windowed_analysis_isolates_the_parallel_region() {
    let n = 64usize;
    let cfg = ClusterConfig::default();
    let kernel = phased_kernel(n);
    let lowered = lower(&kernel, 4, &cfg).expect("lower");
    let mut sink = TextSink::new();
    simulate_traced(&cfg, &lowered.program, 1_000_000, &mut sink).expect("simulate");

    // Locate the kernel window from the explicit barrier releases: the
    // kernel's parallel region sits between the 1st and 2nd release
    // (region fork/join adds its own barriers after them).
    let releases: Vec<u64> = sink
        .text
        .lines()
        .filter(|l| l.contains("event_unit: release"))
        .map(|l| {
            l.split(':')
                .next()
                .expect("cycle field")
                .trim()
                .parse()
                .expect("cycle")
        })
        .collect();
    assert!(
        releases.len() >= 2,
        "expected bracketing barriers, got {releases:?}"
    );
    let start = releases[0] + 1;
    let end = releases[releases.len() - 2] + 1;

    // Full-trace counts include warm-up stores and cool-down loads.
    let mut full = PulpListeners::new(&cfg);
    TraceAnalyser::new()
        .analyse(&sink.text, &mut full)
        .expect("analyse");
    let full_stats = full.into_stats(4);
    assert_eq!(
        full_stats.l1_writes(),
        2 * n as u64,
        "warm-up + kernel stores"
    );
    assert_eq!(
        full_stats.l1_reads(),
        2 * n as u64,
        "kernel + cool-down loads"
    );

    // Windowed counts cover exactly the kernel region.
    let mut windowed = PulpListeners::new(&cfg);
    TraceAnalyser::with_window(start, end)
        .analyse(&sink.text, &mut windowed)
        .expect("analyse");
    let kernel_stats = windowed.into_stats(4);
    assert_eq!(kernel_stats.l1_writes(), n as u64, "kernel stores only");
    assert_eq!(kernel_stats.l1_reads(), n as u64, "kernel loads only");
    // All four team cores worked inside the window.
    for core in 0..4 {
        assert!(
            kernel_stats.cores[core].l1_ops > 0,
            "core {core} idle inside the kernel window"
        );
    }
}

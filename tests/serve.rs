//! End-to-end test of the instrumented prediction service.
//!
//! Boots a real [`Server`] on an ephemeral port, talks to it over raw
//! `TcpStream` HTTP/1.1 and checks the contract the service promises:
//!
//! 1. `/healthz`, `/metrics` and `/predict` all answer.
//! 2. `/predict` agrees with an offline predictor trained on the same
//!    dataset with the same protocol (training is deterministic).
//! 3. `/metrics` always passes the Prometheus exposition validator and its
//!    request counters move in exact lockstep with the requests we issue.

use pulp_bench::serve::{check_exposition, ServeState, Server};
use pulp_energy::pipeline::{LabeledDataset, PipelineOptions};
use pulp_energy::{static_feature_vector, EnergyPredictor, StaticFeatureSet};
use pulp_ml::TreeParams;
use pulp_obs::MetricsRegistry;
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// Issues one HTTP/1.1 request and returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Reads one sample value out of a rendered exposition by its exact
/// `name{labels}` prefix.
fn sample(text: &str, series: &str) -> Option<f64> {
    text.lines()
        .find(|l| {
            l.strip_prefix(series)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn serve_round_trip_matches_offline_pipeline_and_counts_requests() {
    // One shared quick dataset: the server trains from it and the offline
    // reference predictor trains on the identical inputs.
    let opts = PipelineOptions::quick(&["vec_scale", "fpu_storm"]);
    let mut metrics = MetricsRegistry::new();
    let data =
        LabeledDataset::build_with_metrics(&opts, &mut metrics).expect("quick dataset builds");
    let offline = EnergyPredictor::train(&data, StaticFeatureSet::All, TreeParams::default())
        .expect("offline predictor trains");
    let state = Arc::new(ServeState::from_parts(
        EnergyPredictor::train(&data, StaticFeatureSet::All, TreeParams::default())
            .expect("server predictor trains"),
        &data,
        metrics,
        &opts,
    ));

    let server = Server::bind("127.0.0.1:0", Arc::clone(&state)).expect("bind ephemeral port");
    let addr = server.addr;
    std::thread::spawn(move || server.run());

    // 1. All three endpoints answer.
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    let (status, first_metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    check_exposition(&first_metrics).expect("first exposition valid");

    // 2. /predict by kernel name matches the offline predictor on the
    //    exact same feature vector.
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        r#"{"kernel": "vec_scale", "dtype": "i32", "size": 2048}"#,
    );
    assert_eq!(status, 200, "predict failed: {body}");
    let reply: Value = serde_json::from_str(&body).expect("predict reply is JSON");
    let served = reply.field("cores").and_then(Value::as_u64).expect("cores") as usize;

    let def = pulp_kernels::registry()
        .into_iter()
        .find(|d| d.name == "vec_scale")
        .expect("vec_scale registered");
    let kernel = def
        .build(&pulp_kernels::KernelParams::new(
            kernel_ir::DType::I32,
            2048,
        ))
        .expect("vec_scale instantiates");
    let full = static_feature_vector(&kernel);
    let expected = offline
        .predict_cores_from_static(&full)
        .expect("offline prediction");
    assert_eq!(
        served, expected,
        "served prediction must match the offline pipeline"
    );
    assert!(
        reply
            .field("expected_energy_fj")
            .and_then(Value::as_f64)
            .is_ok(),
        "training sample resolves an expected energy: {body}"
    );

    // The raw-feature path gives the same answer as the kernel path.
    let features = full
        .iter()
        .map(f64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        &format!("{{\"features\": [{features}]}}"),
    );
    assert_eq!(status, 200);
    let reply: Value = serde_json::from_str(&body).expect("json");
    assert_eq!(
        reply.field("cores").and_then(Value::as_u64).expect("cores") as usize,
        expected
    );

    // Error surface: short vector -> 400, bad method -> 405, bad path -> 404.
    let (status, body) = request(addr, "POST", "/predict", r#"{"features": [1.0]}"#);
    assert_eq!(status, 400);
    assert!(body.contains("error"), "400 carries a JSON error: {body}");
    let (status, _) = request(addr, "GET", "/predict", "");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "GET", "/does-not-exist", "");
    assert_eq!(status, 404);

    // 3. The registry reflects exactly the requests issued above. The
    //    /metrics request itself is recorded after rendering, so the first
    //    scrape shows up here with count 1.
    let (status, text) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    check_exposition(&text).expect("second exposition valid");
    let count = |series: &str| sample(&text, series).unwrap_or(f64::NAN);
    assert_eq!(
        count(r#"pulp_http_requests_total{endpoint="/healthz",status="200"}"#),
        2.0
    );
    assert_eq!(
        count(r#"pulp_http_requests_total{endpoint="/metrics",status="200"}"#),
        1.0
    );
    assert_eq!(
        count(r#"pulp_http_requests_total{endpoint="/predict",status="200"}"#),
        2.0
    );
    assert_eq!(
        count(r#"pulp_http_requests_total{endpoint="/predict",status="400"}"#),
        1.0
    );
    assert_eq!(
        count(r#"pulp_http_requests_total{endpoint="/predict",status="405"}"#),
        1.0
    );
    assert_eq!(
        count(r#"pulp_http_requests_total{endpoint="other",status="404"}"#),
        1.0
    );
    // Latency histograms track the same totals.
    assert_eq!(
        count(r#"pulp_http_request_seconds_count{endpoint="/healthz"}"#),
        2.0
    );
    assert_eq!(
        count(r#"pulp_http_request_seconds_count{endpoint="/predict"}"#),
        4.0
    );
    // Per-stage /predict instrumentation saw both successful predictions.
    assert_eq!(
        count(r#"pulp_predict_stage_seconds_count{stage="predict"}"#),
        2.0
    );
    // One energy lookup hit (kernel path) and one miss (raw features).
    assert_eq!(
        count(r#"pulp_predict_energy_lookups_total{outcome="hit"}"#),
        1.0
    );
    assert_eq!(
        count(r#"pulp_predict_energy_lookups_total{outcome="miss"}"#),
        1.0
    );

    // The manifest endpoint serves valid JSON describing this instance.
    let (status, body) = request(addr, "GET", "/manifest", "");
    assert_eq!(status, 200);
    let manifest: Value = serde_json::from_str(&body).expect("manifest is JSON");
    assert_eq!(
        manifest.field("tool").and_then(Value::as_str),
        Ok("pulp_cli serve")
    );
    assert_eq!(
        state.manifest().config_hash,
        manifest
            .field("config_hash")
            .and_then(Value::as_str)
            .expect("config_hash")
    );
}

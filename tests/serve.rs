//! End-to-end test of the instrumented prediction service.
//!
//! Boots a real [`Server`] on an ephemeral port, talks to it over raw
//! `TcpStream` HTTP/1.1 and checks the contract the service promises:
//!
//! 1. `/healthz`, `/metrics` and `/predict` all answer.
//! 2. `/predict` agrees with an offline predictor trained on the same
//!    dataset with the same protocol (training is deterministic).
//! 3. `/metrics` always passes the Prometheus exposition validator and its
//!    request counters move in exact lockstep with the requests we issue.

use pulp_bench::serve::{check_exposition, ServeOptions, ServeState, Server, ShutdownHandle};
use pulp_energy::pipeline::{LabeledDataset, PipelineOptions};
use pulp_energy::{static_feature_vector, EnergyPredictor, StaticFeatureSet};
use pulp_ml::TreeParams;
use pulp_obs::{validate_chrome_trace, validate_exposition, LogFormat, Logger, MetricsRegistry};
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One shared quick dataset for every test in this file: the sweep is the
/// expensive part, training a fresh predictor from it is cheap, so each
/// test gets its own [`ServeState`] (fresh metrics) over the same data.
fn fixture() -> &'static (PipelineOptions, LabeledDataset) {
    static DATA: OnceLock<(PipelineOptions, LabeledDataset)> = OnceLock::new();
    DATA.get_or_init(|| {
        let opts = PipelineOptions::quick(&["vec_scale", "fpu_storm"]);
        let mut metrics = MetricsRegistry::new();
        let data =
            LabeledDataset::build_with_metrics(&opts, &mut metrics).expect("quick dataset builds");
        (opts, data)
    })
}

/// A fresh server state over the shared fixture dataset.
fn fresh_state() -> Arc<ServeState> {
    let (opts, data) = fixture();
    Arc::new(ServeState::from_parts(
        EnergyPredictor::train(data, StaticFeatureSet::All, TreeParams::default())
            .expect("predictor trains"),
        data,
        MetricsRegistry::new(),
        opts,
    ))
}

/// Boots a server with explicit capacity knobs; returns its address, the
/// shared state (for metric assertions), a shutdown handle, and the thread
/// running [`Server::run`] so tests can prove it joins.
fn spawn_server(
    opts: ServeOptions,
) -> (
    SocketAddr,
    Arc<ServeState>,
    ShutdownHandle,
    std::thread::JoinHandle<()>,
) {
    let state = fresh_state();
    let server =
        Server::bind_with("127.0.0.1:0", Arc::clone(&state), opts).expect("bind ephemeral port");
    let addr = server.addr;
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());
    (addr, state, handle, thread)
}

/// Writes one HTTP/1.1 request on an already-open stream without closing
/// it, so keep-alive behaviour is observable.
fn send_on(stream: &mut TcpStream, method: &str, path: &str, body: &str) {
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
}

/// Reads one `Content-Length`-framed response off a persistent connection:
/// `(status, headers, body)` with header names lowercased.
fn read_framed(reader: &mut BufReader<TcpStream>) -> (u16, Vec<(String, String)>, String) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let (name, value) = header.split_once(':').expect("header separator");
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .expect("content-length header")
        .1
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
    (status, headers, String::from_utf8(body).expect("utf8 body"))
}

/// Issues one HTTP/1.1 request and returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("send request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Reads one sample value out of a rendered exposition by its exact
/// `name{labels}` prefix.
fn sample(text: &str, series: &str) -> Option<f64> {
    text.lines()
        .find(|l| {
            l.strip_prefix(series)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn serve_round_trip_matches_offline_pipeline_and_counts_requests() {
    // One shared quick dataset: the server trains from it and the offline
    // reference predictor trains on the identical inputs.
    let opts = PipelineOptions::quick(&["vec_scale", "fpu_storm"]);
    let mut metrics = MetricsRegistry::new();
    let data =
        LabeledDataset::build_with_metrics(&opts, &mut metrics).expect("quick dataset builds");
    let offline = EnergyPredictor::train(&data, StaticFeatureSet::All, TreeParams::default())
        .expect("offline predictor trains");
    let state = Arc::new(ServeState::from_parts(
        EnergyPredictor::train(&data, StaticFeatureSet::All, TreeParams::default())
            .expect("server predictor trains"),
        &data,
        metrics,
        &opts,
    ));

    let server = Server::bind("127.0.0.1:0", Arc::clone(&state)).expect("bind ephemeral port");
    let addr = server.addr;
    std::thread::spawn(move || server.run());

    // 1. All three endpoints answer.
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    let (status, first_metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    check_exposition(&first_metrics).expect("first exposition valid");

    // 2. /predict by kernel name matches the offline predictor on the
    //    exact same feature vector.
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        r#"{"kernel": "vec_scale", "dtype": "i32", "size": 2048}"#,
    );
    assert_eq!(status, 200, "predict failed: {body}");
    let reply: Value = serde_json::from_str(&body).expect("predict reply is JSON");
    let served = reply.field("cores").and_then(Value::as_u64).expect("cores") as usize;

    let def = pulp_kernels::registry()
        .into_iter()
        .find(|d| d.name == "vec_scale")
        .expect("vec_scale registered");
    let kernel = def
        .build(&pulp_kernels::KernelParams::new(
            kernel_ir::DType::I32,
            2048,
        ))
        .expect("vec_scale instantiates");
    let full = static_feature_vector(&kernel);
    let expected = offline
        .predict_cores_from_static(&full)
        .expect("offline prediction");
    assert_eq!(
        served, expected,
        "served prediction must match the offline pipeline"
    );
    assert!(
        reply
            .field("expected_energy_fj")
            .and_then(Value::as_f64)
            .is_ok(),
        "training sample resolves an expected energy: {body}"
    );

    // The raw-feature path gives the same answer as the kernel path.
    let features = full
        .iter()
        .map(f64::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        &format!("{{\"features\": [{features}]}}"),
    );
    assert_eq!(status, 200);
    let reply: Value = serde_json::from_str(&body).expect("json");
    assert_eq!(
        reply.field("cores").and_then(Value::as_u64).expect("cores") as usize,
        expected
    );

    // Error surface: short vector -> 400, bad method -> 405, bad path -> 404.
    let (status, body) = request(addr, "POST", "/predict", r#"{"features": [1.0]}"#);
    assert_eq!(status, 400);
    assert!(body.contains("error"), "400 carries a JSON error: {body}");
    let (status, _) = request(addr, "GET", "/predict", "");
    assert_eq!(status, 405);
    let (status, _) = request(addr, "GET", "/does-not-exist", "");
    assert_eq!(status, 404);

    // 3. The registry reflects exactly the requests issued above. The
    //    /metrics request itself is recorded after rendering, so the first
    //    scrape shows up here with count 1.
    let (status, text) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    check_exposition(&text).expect("second exposition valid");
    let count = |series: &str| sample(&text, series).unwrap_or(f64::NAN);
    assert_eq!(
        count(r#"pulp_http_requests_total{endpoint="/healthz",status="200"}"#),
        2.0
    );
    assert_eq!(
        count(r#"pulp_http_requests_total{endpoint="/metrics",status="200"}"#),
        1.0
    );
    assert_eq!(
        count(r#"pulp_http_requests_total{endpoint="/predict",status="200"}"#),
        2.0
    );
    assert_eq!(
        count(r#"pulp_http_requests_total{endpoint="/predict",status="400"}"#),
        1.0
    );
    assert_eq!(
        count(r#"pulp_http_requests_total{endpoint="/predict",status="405"}"#),
        1.0
    );
    assert_eq!(
        count(r#"pulp_http_requests_total{endpoint="other",status="404"}"#),
        1.0
    );
    // Latency histograms track the same totals.
    assert_eq!(
        count(r#"pulp_http_request_seconds_count{endpoint="/healthz"}"#),
        2.0
    );
    assert_eq!(
        count(r#"pulp_http_request_seconds_count{endpoint="/predict"}"#),
        4.0
    );
    // Per-stage /predict instrumentation saw both successful predictions.
    assert_eq!(
        count(r#"pulp_predict_stage_seconds_count{stage="predict"}"#),
        2.0
    );
    // One energy lookup hit (kernel path) and one miss (raw features).
    assert_eq!(
        count(r#"pulp_predict_energy_lookups_total{outcome="hit"}"#),
        1.0
    );
    assert_eq!(
        count(r#"pulp_predict_energy_lookups_total{outcome="miss"}"#),
        1.0
    );

    // The manifest endpoint serves valid JSON describing this instance.
    let (status, body) = request(addr, "GET", "/manifest", "");
    assert_eq!(status, 200);
    let manifest: Value = serde_json::from_str(&body).expect("manifest is JSON");
    assert_eq!(
        manifest.field("tool").and_then(Value::as_str),
        Ok("pulp_cli serve")
    );
    assert_eq!(
        state.manifest().config_hash,
        manifest
            .field("config_hash")
            .and_then(Value::as_str)
            .expect("config_hash")
    );
}

#[test]
fn graceful_shutdown_drains_inflight_and_joins() {
    let (addr, _state, _handle, thread) = spawn_server(ServeOptions::default());

    // Park one request mid-flight: headers promise a body we have not sent
    // yet, so a worker sits in `read_request` waiting for it.
    let body = r#"{"kernel": "vec_scale", "dtype": "i32", "size": 2048}"#;
    let mut inflight = TcpStream::connect(addr).expect("connect");
    let (head, tail) = body.split_at(10);
    inflight
        .write_all(
            format!(
                "POST /predict HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{head}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send partial request");
    std::thread::sleep(Duration::from_millis(100));

    // Ask the server to drain over a second connection.
    let (status, reply) = request(addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 200, "shutdown ack: {reply}");
    assert!(reply.contains("draining"), "{reply}");

    // The in-flight request still completes after the drain began.
    inflight.write_all(tail.as_bytes()).expect("finish request");
    let mut reader = BufReader::new(inflight);
    let (status, _, reply) = read_framed(&mut reader);
    assert_eq!(status, 200, "in-flight request must complete: {reply}");
    let reply: Value = serde_json::from_str(&reply).expect("predict reply is JSON");
    assert!(reply.field("cores").and_then(Value::as_u64).is_ok());

    // `Server::run` returns: every worker joined.
    thread.join().expect("server thread joins cleanly");

    // And the listener is gone, so new connections are refused.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "connections after shutdown must be refused"
    );
}

#[test]
fn keepalive_connection_reuse_is_counted() {
    let (addr, state, handle, thread) = spawn_server(ServeOptions::default());

    // Three requests down one connection: HTTP/1.1 defaults to keep-alive.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    for _ in 0..3 {
        send_on(&mut stream, "GET", "/healthz", "");
        let (status, headers, body) = read_framed(&mut reader);
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        assert!(
            headers
                .iter()
                .any(|(n, v)| n == "connection" && v == "keep-alive"),
            "server must announce keep-alive: {headers:?}"
        );
    }
    drop(stream);

    // Requests 2 and 3 were reuses of the same connection.
    assert_eq!(
        state.metric_value("pulp_serve_keepalive_reuse_total", &[]),
        Some(2.0)
    );

    handle.trigger();
    thread.join().expect("server thread joins");
}

#[test]
fn keepalive_honours_per_connection_request_cap() {
    let opts = ServeOptions {
        keepalive_max_requests: 2,
        ..ServeOptions::default()
    };
    let (addr, _state, handle, thread) = spawn_server(opts);

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    send_on(&mut stream, "GET", "/healthz", "");
    let (_, headers, _) = read_framed(&mut reader);
    assert!(headers
        .iter()
        .any(|(n, v)| n == "connection" && v == "keep-alive"));
    // The second (cap-th) request is answered but the server closes after.
    send_on(&mut stream, "GET", "/healthz", "");
    let (status, headers, _) = read_framed(&mut reader);
    assert_eq!(status, 200);
    assert!(
        headers
            .iter()
            .any(|(n, v)| n == "connection" && v == "close"),
        "cap-th response must announce close: {headers:?}"
    );
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("peer closed");
    assert!(rest.is_empty(), "no bytes after the final response");

    handle.trigger();
    thread.join().expect("server thread joins");
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    // One worker, queue depth one: parking the worker and queueing one
    // connection makes the very next connection shed.
    let opts = ServeOptions {
        workers: 1,
        queue_depth: 1,
        timeout_ms: 5_000,
        ..ServeOptions::default()
    };
    let (addr, state, handle, thread) = spawn_server(opts);

    // Park the only worker: it blocks reading a request we never finish.
    let mut parked = TcpStream::connect(addr).expect("connect parked");
    parked
        .write_all(b"POST /predict HTTP/1.1\r\nHost: test\r\nContent-Length: 10\r\n\r\n")
        .expect("park worker");
    std::thread::sleep(Duration::from_millis(200));

    // This connection sits in the queue (depth 1, now full).
    let queued = TcpStream::connect(addr).expect("connect queued");
    std::thread::sleep(Duration::from_millis(200));

    // The next connection must be shed: 503 + Retry-After, counted.
    let mut shed = TcpStream::connect(addr).expect("connect shed");
    send_on(&mut shed, "GET", "/healthz", "");
    let mut reader = BufReader::new(shed);
    let (status, headers, body) = read_framed(&mut reader);
    assert_eq!(status, 503, "over-capacity connection must shed: {body}");
    assert!(
        headers.iter().any(|(n, _)| n == "retry-after"),
        "503 must carry Retry-After: {headers:?}"
    );
    assert!(
        state
            .metric_value("pulp_serve_shed_total", &[])
            .unwrap_or(0.0)
            >= 1.0,
        "shed_total must count the refused connection"
    );

    // Unpark the worker so the drain below is quick; the queued connection
    // then gets served too.
    parked.write_all(b"0123456789").expect("unpark");
    let mut parked_reader = BufReader::new(parked);
    let (status, _, _) = read_framed(&mut parked_reader);
    assert_eq!(status, 400, "ten bytes of junk JSON is a client error");
    drop(queued);

    handle.trigger();
    thread.join().expect("server thread joins");
}

#[test]
fn batch_predictions_match_sequential_over_http() {
    let (addr, _state, handle, thread) = spawn_server(ServeOptions::default());

    // Mixed batch: kernel-name items and a raw-feature item.
    let items = [
        r#"{"kernel": "vec_scale", "dtype": "i32", "size": 1024}"#.to_string(),
        r#"{"kernel": "fpu_storm", "dtype": "f32", "size": 2048}"#.to_string(),
        r#"{"kernel": "vec_scale", "dtype": "f32", "size": 4096}"#.to_string(),
    ];
    let batch_body = format!("{{\"requests\": [{}]}}", items.join(","));
    let (status, body) = request(addr, "POST", "/predict/batch", &batch_body);
    assert_eq!(status, 200, "batch failed: {body}");
    let reply: Value = serde_json::from_str(&body).expect("batch reply is JSON");
    assert_eq!(
        reply.field("count").and_then(Value::as_u64),
        Ok(items.len() as u64)
    );
    let results = reply
        .field("results")
        .and_then(Value::as_seq)
        .expect("results array");
    assert_eq!(results.len(), items.len());

    // Each batch result carries exactly the cores a sequential /predict
    // call returns for the same item.
    for (item, batched) in items.iter().zip(results) {
        let (status, body) = request(addr, "POST", "/predict", item);
        assert_eq!(status, 200, "sequential predict failed: {body}");
        let sequential: Value = serde_json::from_str(&body).expect("json");
        assert_eq!(
            batched.field("cores").and_then(Value::as_u64),
            sequential.field("cores").and_then(Value::as_u64),
            "batch and sequential disagree on {item}"
        );
    }

    // Shape errors name the offending item and reject empty batches.
    let (status, body) = request(
        addr,
        "POST",
        "/predict/batch",
        r#"{"requests": [{"kernel": "vec_scale", "dtype": "i32", "size": 64}, {"features": [1.0]}]}"#,
    );
    assert_eq!(status, 400);
    assert!(body.contains("requests[1]"), "error names the item: {body}");
    let (status, _) = request(addr, "POST", "/predict/batch", r#"{"requests": []}"#);
    assert_eq!(status, 400);

    handle.trigger();
    thread.join().expect("server thread joins");
}

#[test]
fn oversized_body_is_refused_with_413_before_reading_it() {
    let opts = ServeOptions {
        max_body_bytes: 256,
        ..ServeOptions::default()
    };
    let (addr, _state, handle, thread) = spawn_server(opts);

    // Announce a huge body and send none of it: the refusal must come from
    // the Content-Length check alone.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /predict HTTP/1.1\r\nHost: test\r\nContent-Length: 1000000\r\n\r\n")
        .expect("send oversized header");
    let mut reader = BufReader::new(stream);
    let (status, _, body) = read_framed(&mut reader);
    assert_eq!(status, 413, "oversized body must be refused: {body}");
    assert!(body.contains("256"), "413 names the limit: {body}");

    // A body at the limit still parses (and fails later, as bad JSON).
    let at_limit = "x".repeat(256);
    let (status, _) = request(addr, "POST", "/predict", &at_limit);
    assert_eq!(status, 400, "at-limit body reaches the JSON parser");

    handle.trigger();
    thread.join().expect("server thread joins");
}

#[test]
fn metrics_exposition_is_versioned_and_machine_valid() {
    let (addr, _state, handle, thread) = spawn_server(ServeOptions::default());

    // Exercise a predict first so histograms and windowed series exist.
    let body = r#"{"kernel": "vec_scale", "dtype": "i32", "size": 2048}"#;
    let (status, _) = request(addr, "POST", "/predict", body);
    assert_eq!(status, 200);

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    send_on(&mut stream, "GET", "/metrics", "");
    let (status, headers, text) = read_framed(&mut reader);
    assert_eq!(status, 200);
    let content_type = &headers
        .iter()
        .find(|(n, _)| n == "content-type")
        .expect("content-type header")
        .1;
    assert!(
        content_type.starts_with("text/plain; version=0.0.4"),
        "Prometheus exposition must be versioned: {content_type}"
    );
    validate_exposition(&text).expect("exposition must pass the validator");
    // The sliding-window latency series renders next to the cumulative
    // histogram it mirrors.
    assert!(
        text.contains("pulp_serve_request_seconds_window"),
        "windowed series missing from the exposition"
    );
    assert!(text.contains("pulp_http_request_seconds_bucket"));

    handle.trigger();
    thread.join().expect("server thread joins");
}

#[test]
fn debug_requests_serves_a_validated_chrome_trace_of_every_request() {
    let (addr, state, handle, thread) = spawn_server(ServeOptions::default());

    let body = r#"{"kernel": "vec_scale", "dtype": "i32", "size": 2048}"#;
    const N: usize = 5;
    for _ in 0..N {
        let (status, reply) = request(addr, "POST", "/predict", body);
        assert_eq!(status, 200, "predict failed: {reply}");
    }

    let (status, trace) = request(addr, "GET", "/debug/requests?n=64", "");
    assert_eq!(status, 200, "debug endpoint failed: {trace}");
    validate_chrome_trace(&trace).expect("flight-recorder trace must validate");
    // Every request above appears as its own lane with the promised child
    // spans: queue wait at the front, the predict stage, the final write.
    let count = |needle: &str| trace.matches(needle).count();
    assert!(
        count("\"queue_wait\"") >= N,
        "every request carries a queue_wait span: {trace}"
    );
    assert!(count("\"predict\"") >= N, "predict spans missing: {trace}");
    assert!(count("\"write\"") >= N, "write spans missing: {trace}");
    // The recorder retained each completed request (the /debug request
    // itself is recorded after its response is written, so >= N).
    assert!(state.flight().completed() >= N as u64);

    // The slow table renders as a deterministic JSON array sorted worst
    // first.
    let (status, slow) = request(addr, "GET", "/debug/slow?n=8", "");
    assert_eq!(status, 200);
    let v: Value = serde_json::from_str(&slow).expect("slow summary is JSON");
    let entries = v.as_seq().expect("top-level array");
    assert!(!entries.is_empty());
    let worst: Vec<u64> = entries
        .iter()
        .map(|e| {
            e.field("total_ticks")
                .and_then(Value::as_u64)
                .expect("ticks")
        })
        .collect();
    assert!(worst.windows(2).all(|w| w[0] >= w[1]), "sorted: {worst:?}");

    handle.trigger();
    thread.join().expect("server thread joins");
}

#[test]
fn debug_query_params_reject_malformed_values_with_400() {
    let (addr, state, handle, thread) = spawn_server(ServeOptions::default());

    for target in [
        "/debug/requests?n=banana",
        "/debug/requests?n=0",
        "/debug/requests?n=-1",
        "/debug/slow?n=",
        "/debug/slow?n=2.5",
    ] {
        let (status, body) = request(addr, "GET", target, "");
        assert_eq!(status, 400, "{target} must be rejected: {body}");
        let v: Value = serde_json::from_str(&body).expect("error body is JSON");
        let msg = v
            .field("error")
            .and_then(Value::as_str)
            .expect("error field");
        assert!(msg.contains("positive integer"), "{target}: {msg}");
    }

    // Well-formed but oversized values clamp to retention instead of
    // erroring; absent values keep serving the default.
    let over = state.flight().capacity() + 1000;
    for target in [
        format!("/debug/requests?n={over}"),
        "/debug/requests".to_string(),
        "/debug/slow?n=9999".to_string(),
        "/debug/slow".to_string(),
    ] {
        let (status, body) = request(addr, "GET", &target, "");
        assert_eq!(status, 200, "{target} must clamp, not fail: {body}");
    }

    handle.trigger();
    thread.join().expect("server thread joins");
}

#[test]
fn slow_request_lines_honour_the_json_log_format() {
    let (pipeline, data) = fixture();
    let state = Arc::new(
        ServeState::from_parts(
            EnergyPredictor::train(data, StaticFeatureSet::All, TreeParams::default())
                .expect("predictor trains"),
            data,
            MetricsRegistry::new(),
            pipeline,
        )
        .with_logger(Logger::to_sink(LogFormat::Json)),
    );
    // slow_ms 0: every request is "slow", so one line per request.
    let opts = ServeOptions {
        slow_ms: 0,
        ..ServeOptions::default()
    };
    let server =
        Server::bind_with("127.0.0.1:0", Arc::clone(&state), opts).expect("bind ephemeral port");
    let addr = server.addr;
    let handle = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());

    let body = r#"{"kernel": "vec_scale", "dtype": "i32", "size": 2048}"#;
    let (status, reply) = request(addr, "POST", "/predict", body);
    assert_eq!(status, 200, "predict failed: {reply}");

    // The line lands after the response is written; poll briefly.
    let mut lines = Vec::new();
    for _ in 0..100 {
        lines = state.log_lines().expect("sink logger");
        if !lines.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(!lines.is_empty(), "slow_ms=0 must log every request");
    let v: Value = serde_json::from_str(&lines[0]).expect("JSON-lines record");
    assert_eq!(v.field("level").and_then(Value::as_str), Ok("warn"));
    assert_eq!(v.field("stage").and_then(Value::as_str), Ok("serve"));
    assert_eq!(v.field("endpoint").and_then(Value::as_str), Ok("/predict"));
    assert_eq!(v.field("status").and_then(Value::as_str), Ok("200"));
    assert!(v.field("trace_id").and_then(Value::as_str).is_ok());
    let spans = v.field("spans").and_then(Value::as_str).expect("spans");
    assert!(
        spans.contains("queue_wait=") && spans.contains("predict="),
        "span breakdown names the stages: {spans}"
    );

    handle.trigger();
    thread.join().expect("server thread joins");
}

#[test]
fn windowed_p99_tracks_the_cumulative_p99_under_steady_load() {
    let (addr, state, handle, thread) = spawn_server(ServeOptions::default());

    let body = r#"{"kernel": "vec_scale", "dtype": "i32", "size": 2048}"#;
    for _ in 0..60 {
        let (status, reply) = request(addr, "POST", "/predict", body);
        assert_eq!(status, 200, "predict failed: {reply}");
    }

    // Every observation of this run is inside the 60s window, and the
    // windowed series shares the cumulative histogram's log buckets — the
    // two p99 estimates must land within one log-bucket of each other
    // (buckets are 10^(1/4) apart).
    let windowed = state
        .windowed_quantile(
            "pulp_serve_request_seconds_window",
            &[("endpoint", "/predict")],
            0.99,
        )
        .expect("windowed series exists");
    let cumulative = state
        .histogram_quantile(
            "pulp_http_request_seconds",
            &[("endpoint", "/predict")],
            0.99,
        )
        .expect("cumulative histogram exists");
    assert!(windowed > 0.0 && cumulative > 0.0);
    let log_distance = (windowed / cumulative).log10().abs();
    assert!(
        log_distance < 0.2501,
        "windowed p99 {windowed} vs cumulative {cumulative}: {log_distance} decades apart"
    );

    handle.trigger();
    thread.join().expect("server thread joins");
}

#[test]
fn malformed_request_lines_get_400_not_a_dropped_connection() {
    let (addr, _state, handle, thread) = spawn_server(ServeOptions::default());

    for garbage in [
        "this is not http\r\n\r\n",
        "GET /healthz\r\n\r\n",
        "GET healthz HTTP/1.1\r\nHost: t\r\n\r\n",
        "GET /healthz SMTP/1.0\r\nHost: t\r\n\r\n",
    ] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(garbage.as_bytes()).expect("send garbage");
        let mut reader = BufReader::new(stream);
        let (status, _, body) = read_framed(&mut reader);
        assert_eq!(status, 400, "{garbage:?} must get a 400, got: {body}");
        assert!(body.contains("malformed"), "{body}");
    }

    handle.trigger();
    thread.join().expect("server thread joins");
}

#[test]
fn a_thousand_idle_keepalive_connections_cost_no_capacity() {
    // The admission set is tiny (2 workers + 8 queue slots), yet a
    // thousand established keep-alive connections can park on the event
    // loop: established idle connections hold no slot, no thread and no
    // deadline. Before the readiness rewrite each of these held a worker.
    let opts = ServeOptions {
        workers: 2,
        queue_depth: 8,
        timeout_ms: 10_000,
        ..ServeOptions::default()
    };
    let (addr, state, handle, thread) = spawn_server(opts);

    const IDLE: usize = 1_000;
    let mut parked = Vec::with_capacity(IDLE);
    for i in 0..IDLE {
        let mut stream = TcpStream::connect(addr).expect("connect idle conn");
        send_on(&mut stream, "GET", "/healthz", "");
        let mut reader = BufReader::new(stream);
        let (status, _, body) = read_framed(&mut reader);
        assert_eq!(status, 200, "idle conn {i} establish failed: {body}");
        parked.push(reader); // keep-alive: the server parks it idle
    }

    // The open-connections gauge sees the whole parked fleet.
    let open = state
        .metric_value("pulp_serve_open_connections", &[])
        .expect("open-connections gauge exists");
    assert!(
        open >= IDLE as f64,
        "gauge must count the parked fleet, got {open}"
    );

    // Active traffic still flows with bounded latency: the parked fleet
    // must not consume the admission slots actives need.
    let started = std::time::Instant::now();
    for _ in 0..20 {
        let (status, body) = request(addr, "GET", "/healthz", "");
        assert_eq!(
            status, 200,
            "active request failed under parked load: {body}"
        );
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "20 active round-trips took {elapsed:?} with {IDLE} parked connections"
    );

    // Parked connections are still live: reuse one end-to-end.
    let reader = parked.last_mut().expect("parked fleet");
    send_on(reader.get_mut(), "GET", "/healthz", "");
    let (status, _, _) = read_framed(reader);
    assert_eq!(status, 200, "parked connection must still serve");

    handle.trigger();
    thread
        .join()
        .expect("server thread joins with 1k connections open");
}

#[test]
fn drain_completes_with_connections_in_every_state() {
    let opts = ServeOptions {
        workers: 1,
        queue_depth: 4,
        timeout_ms: 5_000,
        ..ServeOptions::default()
    };
    let (addr, _state, _handle, thread) = spawn_server(opts);

    // Idle established: one completed request, then parked keep-alive.
    let mut idle = TcpStream::connect(addr).expect("connect idle");
    send_on(&mut idle, "GET", "/healthz", "");
    let mut idle_reader = BufReader::new(idle);
    let (status, _, _) = read_framed(&mut idle_reader);
    assert_eq!(status, 200);

    // Fresh and silent: accepted, never sent a byte.
    let silent = TcpStream::connect(addr).expect("connect silent");

    // Mid-read: headers sent, body short by six bytes.
    let mut partial = TcpStream::connect(addr).expect("connect partial");
    partial
        .write_all(b"POST /predict HTTP/1.1\r\nHost: test\r\nContent-Length: 10\r\n\r\n0123")
        .expect("send partial");
    std::thread::sleep(Duration::from_millis(100));

    // Trigger the drain over HTTP; this connection itself is mid-pipeline
    // (dispatched, then writing) while the drain begins.
    let mut admin = TcpStream::connect(addr).expect("connect admin");
    send_on(&mut admin, "POST", "/admin/shutdown", "");
    let mut admin_reader = BufReader::new(admin);
    let (status, _, body) = read_framed(&mut admin_reader);
    assert_eq!(status, 200, "shutdown must answer before closing: {body}");
    assert!(body.contains("draining"), "{body}");

    // The idle and silent connections are dropped by the drain...
    let mut probe = [0u8; 1];
    idle_reader
        .get_mut()
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    assert_eq!(
        idle_reader.get_mut().read(&mut probe).expect("idle closes"),
        0,
        "parked idle connection must close on drain"
    );

    // ...while the mid-read request finishes its body and completes.
    partial.write_all(b"456789").expect("finish body");
    let mut partial_reader = BufReader::new(partial);
    let (status, _, body) = read_framed(&mut partial_reader);
    assert_eq!(
        status, 400,
        "in-flight request must complete through the drain: {body}"
    );

    drop(silent);
    thread.join().expect("server drains every state and joins");
}

#[test]
fn slow_loris_gets_408_from_the_timer_wheel_while_idle_conns_live_on() {
    let opts = ServeOptions {
        workers: 2,
        queue_depth: 4,
        timeout_ms: 150,
        ..ServeOptions::default()
    };
    let (addr, state, handle, thread) = spawn_server(opts);

    // Establish a keep-alive connection before the loris arrives.
    let mut veteran = TcpStream::connect(addr).expect("connect veteran");
    send_on(&mut veteran, "GET", "/healthz", "");
    let mut veteran_reader = BufReader::new(veteran);
    let (status, _, _) = read_framed(&mut veteran_reader);
    assert_eq!(status, 200);

    // The loris trickles half a request line and stalls; the timer wheel
    // must fire the read deadline and answer 408 without a worker ever
    // being involved.
    let mut loris = TcpStream::connect(addr).expect("connect loris");
    loris.write_all(b"GET /healthz HT").expect("trickle");
    let mut loris_reader = BufReader::new(loris);
    let (status, _, body) = read_framed(&mut loris_reader);
    assert_eq!(status, 408, "stalled read must deadline: {body}");
    assert!(body.contains("deadline"), "{body}");
    assert!(
        state
            .metric_value("pulp_serve_timeouts_total", &[("kind", "read")])
            .unwrap_or(0.0)
            >= 1.0,
        "read timeout must be counted"
    );

    // Far longer than timeout_ms later, the established idle connection is
    // still alive: idle keep-alive connections carry no read deadline.
    std::thread::sleep(Duration::from_millis(400));
    send_on(veteran_reader.get_mut(), "GET", "/healthz", "");
    let (status, _, _) = read_framed(&mut veteran_reader);
    assert_eq!(status, 200, "established idle connections must not expire");

    handle.trigger();
    thread.join().expect("server thread joins");
}

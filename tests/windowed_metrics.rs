//! Property tests for the sliding-window metrics and the flight recorder.
//!
//! The windowed quantiles are checked against a naive reference that keeps
//! every raw observation and re-derives the live set from first principles
//! (latest epoch per ring slot, window anchored at the newest epoch), then
//! full-resorts the surviving values. The flight-recorder properties pin
//! the at-capacity contract: exactly the most recent N completed traces
//! survive, in completion order.

use proptest::prelude::*;
use pulp_obs::metrics::log_buckets;
use pulp_obs::{FlightRecorder, MetricsRegistry, RequestTrace, WindowConfig};

/// Upper bound of the bucket a value falls into — the resolution at which
/// the histogram can answer quantile queries. Values past the last finite
/// bound land in `+Inf`, which the quantile degrades to the last bound.
fn bucket_bound(bounds: &[f64], value: f64) -> f64 {
    bounds
        .iter()
        .copied()
        .find(|&b| value <= b)
        .unwrap_or_else(|| *bounds.last().expect("non-empty bucket layout"))
}

/// The raw in-window observations, derived without the ring: an observation
/// is live iff its epoch is the newest to occupy its slot index AND it falls
/// inside the window anchored at the newest epoch overall. With monotone
/// feed times this is exactly the set the ring retains.
fn live_values(observations: &[(f64, u64)], slots: usize, window_secs: u64) -> Vec<f64> {
    let n = slots.max(1) as u64;
    let slot_secs = (window_secs / n).max(1);
    let epochs: Vec<u64> = observations.iter().map(|&(_, t)| t / slot_secs).collect();
    let Some(anchor) = epochs.iter().copied().max() else {
        return Vec::new();
    };
    let mut latest = vec![0u64; n as usize];
    for &e in &epochs {
        let i = (e % n) as usize;
        latest[i] = latest[i].max(e);
    }
    observations
        .iter()
        .zip(&epochs)
        .filter(|&(&(v, _), &e)| v.is_finite() && e + n > anchor && e == latest[(e % n) as usize])
        .map(|(&(v, _), _)| v)
        .collect()
}

/// Full-resort reference quantile: sort the live raw values, pick the rank
/// the histogram targets (`ceil(q * count)`, at least 1), and report the
/// bucket bound that value maps to — bucketing is monotone, so this is the
/// exact answer the histogram's cumulative-rank walk must produce.
fn reference_quantile(live: &[f64], bounds: &[f64], q: f64) -> Option<f64> {
    if live.is_empty() {
        return None;
    }
    let mut sorted = live.to_vec();
    sorted.sort_by(f64::total_cmp);
    let target = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
    Some(bucket_bound(bounds, sorted[target - 1]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Windowed p50/p90/p99 and the live count agree with the naive
    /// reference for arbitrary value streams with monotone timestamps,
    /// across several slot layouts — including streams long enough to
    /// wrap the ring many times over.
    #[test]
    fn windowed_quantiles_match_a_full_resort_reference(
        raw in prop::collection::vec((0.0f64..20.0, 0u64..25), 1..200),
        slots in prop::sample::select(vec![1usize, 2, 3, 6]),
    ) {
        let bounds = log_buckets(1e-3, 16.0, 3);
        let window_secs = 60u64;
        // Deltas accumulate into non-decreasing absolute seconds, matching
        // how a live process feeds the window from a monotone clock.
        let mut now_s = 0u64;
        let observations: Vec<(f64, u64)> = raw
            .iter()
            .map(|&(v, dt)| {
                now_s += dt;
                (v, now_s)
            })
            .collect();

        let mut reg = MetricsRegistry::new();
        for &(v, t) in &observations {
            reg.windowed_observe_with("w_window", "windowed property series", &[], v, t, || {
                WindowConfig {
                    window_secs,
                    slots,
                    buckets: bounds.clone(),
                }
            });
        }

        let live = live_values(&observations, slots, window_secs);
        prop_assert_eq!(reg.windowed_count("w_window", &[]), Some(live.len() as u64));
        for q in [0.50, 0.90, 0.99] {
            let got = reg.windowed_quantile("w_window", &[], q);
            let want = reference_quantile(&live, &bounds, q);
            prop_assert_eq!(got, want, "quantile q={} diverged from the reference", q);
        }
    }

    /// A single-stripe recorder at capacity retains exactly the most recent
    /// `cap` traces, oldest-first, and still counts every completion.
    #[test]
    fn flight_recorder_at_capacity_keeps_exactly_the_newest_traces(
        cap in 1usize..24,
        extra in 0usize..60,
    ) {
        let recorder = FlightRecorder::with_stripes(cap, 1);
        let total = cap + extra;
        for i in 0..total as u64 {
            recorder.record(RequestTrace::new(i, "req", 200, Vec::new()));
        }
        prop_assert_eq!(recorder.len(), cap);
        prop_assert_eq!(recorder.completed(), total as u64);
        let kept = recorder.recent(cap);
        prop_assert_eq!(kept.len(), cap);
        let ids: Vec<u64> = kept.iter().map(|t| t.trace_id).collect();
        let expected: Vec<u64> = (extra as u64..total as u64).collect();
        prop_assert_eq!(ids, expected, "eviction must drop exactly the oldest traces");
    }
}

/// The striped (default-layout) recorder never retains more than its
/// per-stripe ceilings allow, and `recent` always reports completion order
/// regardless of which stripe each trace landed in.
#[test]
fn striped_recorder_bounds_retention_and_orders_by_completion() {
    let capacity = 16;
    let recorder = FlightRecorder::new(capacity);
    for i in 0..10 * capacity as u64 {
        recorder.record(RequestTrace::new(i, "req", 200, Vec::new()));
    }
    assert!(
        recorder.len() <= capacity,
        "retained {} traces, capacity {capacity}",
        recorder.len()
    );
    assert_eq!(recorder.completed(), 10 * capacity as u64);
    let seqs: Vec<u64> = recorder.recent(capacity).iter().map(|t| t.seq()).collect();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "recent() must be sorted by completion sequence: {seqs:?}"
    );
}

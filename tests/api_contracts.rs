//! API-guideline contracts across the workspace: serde round-trips for
//! data-structure types, `Send`/`Sync` for everything that crosses the
//! pipeline's worker threads, and error-type ergonomics.

use kernel_ir::Kernel;
use pulp_energy::pipeline::{LabeledDataset, PipelineOptions};
use pulp_sim::{ClusterConfig, Program, SimStats};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}
fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}

#[test]
fn core_types_are_send_and_sync() {
    assert_send::<ClusterConfig>();
    assert_sync::<ClusterConfig>();
    assert_send::<Program>();
    assert_sync::<Program>();
    assert_send::<SimStats>();
    assert_send::<Kernel>();
    assert_sync::<Kernel>();
    assert_send::<LabeledDataset>();
    assert_send::<pulp_ml::DecisionTree>();
    assert_sync::<pulp_ml::DecisionTree>();
    assert_send::<pulp_energy::EnergyPredictor>();
}

#[test]
fn error_types_implement_std_error() {
    assert_error::<pulp_sim::SimError>();
    assert_error::<pulp_sim::ValidateProgramError>();
    assert_error::<kernel_ir::ValidateKernelError>();
    assert_error::<kernel_ir::LowerError>();
    assert_error::<pulp_ml::DatasetError>();
    assert_error::<pulp_energy_model::ParseTraceError>();
    assert_error::<pulp_energy_model::ListenError>();
    assert_error::<pulp_energy::BuildDatasetError>();
    assert_error::<pulp_energy::MeasureError>();
    assert_error::<pulp_energy::PredictorError>();
}

#[test]
fn error_messages_are_lowercase_and_unpunctuated() {
    // C-GOOD-ERR: concise, lowercase, no trailing period.
    let messages = [
        pulp_sim::SimError::CycleLimit { budget: 10 }.to_string(),
        kernel_ir::ValidateKernelError::NestedParallel.to_string(),
        kernel_ir::LowerError::ZeroChunk.to_string(),
    ];
    for m in messages {
        assert!(!m.ends_with('.'), "trailing period: {m}");
        let first = m.chars().next().expect("non-empty message");
        assert!(
            first.is_lowercase() || first.is_numeric(),
            "should start lowercase: {m}"
        );
    }
}

#[test]
fn config_round_trips_through_json() {
    let cfg = ClusterConfig::default().without_clock_gating();
    let json = serde_json::to_string(&cfg).expect("serialise");
    let back: ClusterConfig = serde_json::from_str(&json).expect("parse");
    assert_eq!(cfg, back);
}

#[test]
fn kernel_round_trips_through_json() {
    let kernel = pulp_kernels::registry()
        .into_iter()
        .find(|d| d.name == "gemm")
        .expect("kernel")
        .build(&pulp_kernels::KernelParams::new(
            kernel_ir::DType::F32,
            2048,
        ))
        .expect("build");
    let json = serde_json::to_string(&kernel).expect("serialise");
    let back: Kernel = serde_json::from_str(&json).expect("parse");
    assert_eq!(kernel, back);
}

#[test]
fn program_round_trips_through_json() {
    let kernel = pulp_kernels::registry()
        .into_iter()
        .find(|d| d.name == "fir")
        .expect("kernel")
        .build(&pulp_kernels::KernelParams::new(kernel_ir::DType::I32, 512))
        .expect("build");
    let lowered = kernel_ir::lower(&kernel, 3, &ClusterConfig::default()).expect("lower");
    let json = serde_json::to_string(&lowered.program).expect("serialise");
    let back: Program = serde_json::from_str(&json).expect("parse");
    assert_eq!(lowered.program, back);
    // And the deserialised program still runs identically.
    let cfg = ClusterConfig::default();
    let a = pulp_sim::simulate(&cfg, &lowered.program).expect("simulate");
    let b = pulp_sim::simulate(&cfg, &back).expect("simulate");
    assert_eq!(a, b);
}

#[test]
fn labeled_dataset_round_trips_through_json() {
    let data = LabeledDataset::build(&PipelineOptions::quick(&["vec_scale"])).expect("dataset");
    let json = serde_json::to_string(&data).expect("serialise");
    let back: LabeledDataset = serde_json::from_str(&json).expect("parse");
    assert_eq!(data, back);
}

#[test]
fn stats_round_trip_through_json() {
    let cfg = ClusterConfig::default();
    let kernel = pulp_kernels::registry()
        .into_iter()
        .find(|d| d.name == "vec_scale")
        .expect("kernel")
        .build(&pulp_kernels::KernelParams::new(kernel_ir::DType::I32, 512))
        .expect("build");
    let lowered = kernel_ir::lower(&kernel, 2, &cfg).expect("lower");
    let stats = pulp_sim::simulate(&cfg, &lowered.program).expect("simulate");
    let json = serde_json::to_string(&stats).expect("serialise");
    let back: SimStats = serde_json::from_str(&json).expect("parse");
    assert_eq!(stats, back);
}

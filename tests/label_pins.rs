//! Label regression pins.
//!
//! These tests pin the minimum-energy labels of behaviour-defining samples
//! to the values measured with the calibrated platform of DESIGN.md §6.
//! They are deliberately *brittle*: a change to simulator timing, runtime
//! overheads or the energy model that moves any of these labels should be
//! a conscious decision (re-run `dataset_stats` and update EXPERIMENTS.md
//! alongside these pins).

use kernel_ir::DType;
use pulp_energy::measure_kernel;
use pulp_energy_model::EnergyModel;
use pulp_kernels::{registry, KernelParams};
use pulp_sim::ClusterConfig;

fn label(kernel: &str, dtype: DType, payload: usize) -> usize {
    let def = registry()
        .into_iter()
        .find(|d| d.name == kernel)
        .expect("kernel exists");
    let k = def
        .build(&KernelParams::new(dtype, payload))
        .expect("build");
    let profile =
        measure_kernel(&k, &ClusterConfig::default(), &EnergyModel::table1()).expect("measure");
    profile.label() + 1
}

#[test]
fn fpu_bound_f32_prefers_the_fpu_count() {
    assert_eq!(label("fpu_storm", DType::F32, 8196), 4);
}

#[test]
fn fpu_bound_i32_prefers_all_cores() {
    assert_eq!(label("fpu_storm", DType::I32, 8196), 8);
}

#[test]
fn conflict_bound_kernel_prefers_few_cores() {
    assert!(label("bank_hammer", DType::I32, 512) <= 2);
}

#[test]
fn dense_compute_prefers_all_cores() {
    assert_eq!(label("compute_dense", DType::I32, 32768), 8);
}

#[test]
fn tiny_regions_prefer_tiny_teams() {
    assert!(label("tiny_regions", DType::F32, 2048) <= 2);
}

#[test]
fn serialised_reduction_prefers_small_teams() {
    assert!(label("reduction_critical", DType::I32, 8196) <= 4);
}

#[test]
fn small_payload_shifts_gemm_below_the_maximum() {
    let small = label("gemm", DType::F32, 512);
    let large = label("gemm", DType::F32, 32768);
    assert!(
        small < large,
        "512 B gemm ({small}) must sit below 32 KiB gemm ({large})"
    );
    assert_eq!(large, 8);
}

//! Cross-crate integration: dataset kernels → lowering → simulation →
//! energy, with conservation checks and trace-path parity on real kernels.

use kernel_ir::{lower, DType};
use pulp_energy_model::{energy_of, stats_from_trace, EnergyModel};
use pulp_kernels::{registry, KernelParams};
use pulp_sim::{simulate, simulate_traced, ClusterConfig, TextSink};

fn config() -> ClusterConfig {
    ClusterConfig::default()
}

/// Every kernel in the registry must lower and simulate at every team size
/// (smallest payload: this is the whole dataset's plumbing in one test).
#[test]
fn all_kernels_simulate_at_all_team_sizes() {
    let cfg = config();
    let model = EnergyModel::table1();
    for def in registry() {
        for &dtype in def.dtypes {
            let kernel = def.build(&KernelParams::new(dtype, 512)).expect("build");
            for team in 1..=8 {
                let lowered = lower(&kernel, team, &cfg).expect("lower");
                let stats = simulate(&cfg, &lowered.program)
                    .unwrap_or_else(|e| panic!("{}@{team}: {e}", def.name));
                assert!(stats.check_consistency().is_ok(), "{}@{team}", def.name);
                let energy = energy_of(&stats, &model, &cfg);
                assert!(energy.total() > 0.0, "{}@{team}: zero energy", def.name);
            }
        }
    }
}

/// The amount of payload work (memory accesses) must not depend on the
/// team size — parallelisation only redistributes it.
#[test]
fn memory_traffic_is_team_invariant() {
    let cfg = config();
    for name in ["gemm", "fir", "stream_copy", "jacobi-2d", "saxpy_chunked"] {
        let def = registry()
            .into_iter()
            .find(|d| d.name == name)
            .expect("kernel");
        let kernel = def
            .build(&KernelParams::new(DType::I32, 2048))
            .expect("build");
        let reference = {
            let lowered = lower(&kernel, 1, &cfg).expect("lower");
            let s = simulate(&cfg, &lowered.program).expect("simulate");
            (s.l1_reads(), s.l1_writes())
        };
        for team in 2..=8 {
            let lowered = lower(&kernel, team, &cfg).expect("lower");
            let s = simulate(&cfg, &lowered.program).expect("simulate");
            assert_eq!(
                (s.l1_reads(), s.l1_writes()),
                reference,
                "{name}@{team}: traffic changed"
            );
        }
    }
}

/// More cores must never make a kernel slower in cycles (the energy
/// optimum may still be below 8, but wall-clock is monotone or flat within
/// a small tolerance for convoy effects).
#[test]
fn cycles_do_not_explode_with_cores() {
    let cfg = config();
    for name in ["gemm", "compute_dense", "reduction_critical"] {
        let def = registry()
            .into_iter()
            .find(|d| d.name == name)
            .expect("kernel");
        let kernel = def
            .build(&KernelParams::new(DType::I32, 8196))
            .expect("build");
        let c1 = {
            let lowered = lower(&kernel, 1, &cfg).expect("lower");
            simulate(&cfg, &lowered.program).expect("simulate").cycles
        };
        let c8 = {
            let lowered = lower(&kernel, 8, &cfg).expect("lower");
            simulate(&cfg, &lowered.program).expect("simulate").cycles
        };
        assert!(
            c8 <= c1 + c1 / 4,
            "{name}: 8 cores took {c8} cycles vs {c1} on one core"
        );
    }
}

/// Trace replay through the listener stack reconstructs the simulator's
/// statistics exactly, for a real dataset kernel with contention.
#[test]
fn trace_parity_on_dataset_kernel() {
    let cfg = config();
    let def = registry()
        .into_iter()
        .find(|d| d.name == "bank_hammer")
        .expect("kernel");
    let kernel = def
        .build(&KernelParams::new(DType::F32, 512))
        .expect("build");
    let lowered = lower(&kernel, 4, &cfg).expect("lower");
    let mut sink = TextSink::new();
    let direct = simulate_traced(&cfg, &lowered.program, 10_000_000, &mut sink).expect("simulate");
    let replayed = stats_from_trace(&sink.text, &cfg, 4).expect("replay");
    // Replay reconstructs architectural state; fast-forward span counters
    // are diagnostics the trace does not carry.
    assert_eq!(direct.without_fast_forward(), replayed);
}

/// Ablations must act in the expected direction on a conflict-heavy
/// kernel.
#[test]
fn ablations_change_energy_in_the_expected_direction() {
    let model = EnergyModel::table1();
    let def = registry()
        .into_iter()
        .find(|d| d.name == "bank_hammer")
        .expect("kernel");
    let kernel = def
        .build(&KernelParams::new(DType::I32, 2048))
        .expect("build");

    let energy_with = |cfg: &ClusterConfig| {
        let lowered = lower(&kernel, 8, cfg).expect("lower");
        let stats = simulate(cfg, &lowered.program).expect("simulate");
        (energy_of(&stats, &model, cfg).total(), stats.cycles)
    };

    let base = config();
    let (e_base, c_base) = energy_with(&base);
    let (e_ideal, c_ideal) = energy_with(&base.clone().without_bank_conflicts());
    assert!(c_ideal < c_base, "removing conflicts must shorten the run");
    assert!(e_ideal < e_base, "removing conflicts must save energy");

    let (e_nocg, _) = energy_with(&base.clone().without_clock_gating());
    assert!(
        e_nocg > e_base,
        "without clock gating, sleeping cores burn active-wait energy"
    );
}

/// The energy trade-off exists: for at least one dataset kernel the
/// minimum-energy team is strictly smaller than the fastest team.
#[test]
fn energy_optimum_differs_from_speed_optimum_somewhere() {
    let cfg = config();
    let model = EnergyModel::table1();
    let mut found = false;
    for name in ["fpu_storm", "bank_hammer", "critical_light", "tiny_regions"] {
        let def = registry()
            .into_iter()
            .find(|d| d.name == name)
            .expect("kernel");
        for &dtype in def.dtypes {
            let kernel = def.build(&KernelParams::new(dtype, 8196)).expect("build");
            let mut energies = Vec::new();
            let mut cycles = Vec::new();
            for team in 1..=8 {
                let lowered = lower(&kernel, team, &cfg).expect("lower");
                let s = simulate(&cfg, &lowered.program).expect("simulate");
                energies.push(energy_of(&s, &model, &cfg).total());
                cycles.push(s.cycles);
            }
            let e_best = (0..8)
                .min_by(|&a, &b| energies[a].partial_cmp(&energies[b]).expect("finite"))
                .expect("nonempty");
            let c_best = (0..8).min_by_key(|&i| cycles[i]).expect("nonempty");
            if e_best < c_best {
                found = true;
            }
        }
    }
    assert!(
        found,
        "expected at least one kernel where energy argmin < speed argmin"
    );
}

//! Pseudo-C pretty-printing of kernels.
//!
//! Renders a [`Kernel`] back into OpenMP-flavoured pseudo-C, close to the
//! sources the dataset kernels were ported from. Useful in docs, debug
//! output and the examples; [`Kernel`] implements [`std::fmt::Display`]
//! through this module.

use crate::ast::{Kernel, Stmt};
use crate::expr::Idx;
use crate::types::{MemLevel, Schedule};
use std::fmt::{self, Write as _};

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render(self))
    }
}

/// Renders `kernel` as OpenMP-flavoured pseudo-C.
pub fn render(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// {} [{}] dtype={} payload={}B",
        kernel.name, kernel.suite, kernel.dtype, kernel.payload_bytes
    );
    let _ = writeln!(out, "void kernel(void) {{");
    for (i, a) in kernel.arrays.iter().enumerate() {
        let attr = match a.level {
            MemLevel::Tcdm => "__tcdm",
            MemLevel::L2 => "__l2",
        };
        let _ = writeln!(
            out,
            "  {attr} {} {}[{}]; // a{i}",
            kernel.dtype, a.name, a.len
        );
    }
    render_stmts(kernel, &kernel.body, 1, &mut out);
    let _ = writeln!(out, "}}");
    out
}

fn var_name(id: u32) -> String {
    // i, j, k, l, m, ... then v<N>.
    const NAMES: [&str; 6] = ["i", "j", "k", "l", "m", "n_"];
    NAMES
        .get(id as usize)
        .map_or_else(|| format!("v{id}"), |s| (*s).to_string())
}

fn render_idx(idx: &Idx) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (v, c) in idx.terms() {
        match c {
            1 => parts.push(var_name(v.id())),
            -1 => parts.push(format!("-{}", var_name(v.id()))),
            c => parts.push(format!("{c}*{}", var_name(v.id()))),
        }
    }
    if idx.constant() != 0 || parts.is_empty() {
        parts.push(idx.constant().to_string());
    }
    parts.join(" + ").replace("+ -", "- ")
}

fn render_stmts(kernel: &Kernel, stmts: &[Stmt], indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    for s in stmts {
        match s {
            Stmt::For { var, trip, body } => {
                let v = var_name(var.id());
                let _ = writeln!(out, "{pad}for (int {v} = 0; {v} < {trip}; {v}++) {{");
                render_stmts(kernel, body, indent + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::ParFor {
                var,
                trip,
                sched,
                body,
            } => {
                let clause = match sched {
                    Schedule::Static => String::new(),
                    Schedule::Chunked(k) => format!(" schedule(static, {k})"),
                    Schedule::Guided(k) => format!(" schedule(guided, {k})"),
                };
                let v = var_name(var.id());
                let _ = writeln!(out, "{pad}#pragma omp parallel for{clause}");
                let _ = writeln!(out, "{pad}for (int {v} = 0; {v} < {trip}; {v}++) {{");
                render_stmts(kernel, body, indent + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Load { arr, idx } => {
                let _ = writeln!(
                    out,
                    "{pad}tmp = {}[{}];",
                    kernel.array(*arr).name,
                    render_idx(idx)
                );
            }
            Stmt::Store { arr, idx } => {
                let _ = writeln!(
                    out,
                    "{pad}{}[{}] = tmp;",
                    kernel.array(*arr).name,
                    render_idx(idx)
                );
            }
            Stmt::Alu(n) => {
                let _ = writeln!(out, "{pad}/* {n}x int alu */");
            }
            Stmt::Mul(n) => {
                let _ = writeln!(out, "{pad}/* {n}x int mul */");
            }
            Stmt::Div(n) => {
                let _ = writeln!(out, "{pad}/* {n}x int div */");
            }
            Stmt::Fp(n) => {
                let _ = writeln!(out, "{pad}/* {n}x fp op */");
            }
            Stmt::FpDiv(n) => {
                let _ = writeln!(out, "{pad}/* {n}x fp div */");
            }
            Stmt::Nop(n) => {
                let _ = writeln!(out, "{pad}/* {n}x nop */");
            }
            Stmt::Barrier => {
                let _ = writeln!(out, "{pad}#pragma omp barrier");
            }
            Stmt::Critical(body) => {
                let _ = writeln!(out, "{pad}#pragma omp critical");
                let _ = writeln!(out, "{pad}{{");
                render_stmts(kernel, body, indent + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::DmaTransfer {
                l2,
                tcdm,
                words,
                inbound,
                blocking,
            } => {
                let (src, dst) = if *inbound { (*l2, *tcdm) } else { (*tcdm, *l2) };
                let call = if *blocking {
                    "dma_memcpy"
                } else {
                    "dma_memcpy_async"
                };
                let _ = writeln!(
                    out,
                    "{pad}{call}({}, {}, {words} /* words */);",
                    kernel.array(dst).name,
                    kernel.array(src).name
                );
            }
            Stmt::DmaWait => {
                let _ = writeln!(out, "{pad}dma_wait();");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::types::{DType, Suite};

    fn demo() -> Kernel {
        let mut b = KernelBuilder::new("demo", Suite::Custom, DType::F32, 256);
        let a = b.array("a", 64);
        let l2 = b.array_l2("buf", 64);
        b.dma_in(l2, a, 64);
        b.par_for_sched(8, Schedule::Chunked(2), |b, i| {
            b.for_(8, |b, j| {
                b.load(a, i * 8 + j);
                b.compute(2);
            });
            b.critical(|b| b.store(a, i));
        });
        b.build().expect("valid")
    }

    #[test]
    fn renders_structure() {
        let text = render(&demo());
        assert!(text.contains("#pragma omp parallel for schedule(static, 2)"));
        assert!(text.contains("for (int j = 0; j < 8; j++)"));
        assert!(text.contains("tmp = a[8*i + j];"));
        assert!(text.contains("#pragma omp critical"));
        assert!(text.contains("dma_memcpy(a, buf, 64"));
        assert!(text.contains("__tcdm f32 a[64]"));
        assert!(text.contains("__l2 f32 buf[64]"));
    }

    #[test]
    fn display_matches_render() {
        let k = demo();
        assert_eq!(format!("{k}"), render(&k));
    }

    #[test]
    fn index_rendering_handles_constants_and_negatives() {
        assert_eq!(render_idx(&Idx::zero()), "0");
        assert_eq!(render_idx(&Idx::constant_of(5)), "5");
        let i = crate::expr::LoopVar::for_tests(0);
        assert_eq!(render_idx(&(Idx::constant_of(15) - i)), "-i + 15");
        assert_eq!(render_idx(&(i * 4 + 2usize)), "4*i + 2");
    }

    #[test]
    fn braces_balance() {
        let text = render(&demo());
        assert_eq!(text.matches('{').count(), text.matches('}').count());
    }
}

//! # kernel-ir — kernel intermediate representation
//!
//! The IR-level stand-in for the C/OpenMP sources of the paper's dataset.
//! A [`Kernel`] preserves exactly the program structure the paper's
//! pipeline observes: typed arrays, loop nests with affine accesses,
//! OpenMP parallel regions with schedules, compute bursts by opcode class
//! and synchronisation constructs.
//!
//! Three consumers read the IR:
//!
//! * [`static_features`] extracts the RAW/AGG compile-time features
//!   (Table II(a) of the paper) without executing anything;
//! * the `pulp-mca` crate computes machine-code-analyser features from the
//!   hot-block instruction mix;
//! * [`lowering`] plays compiler + OpenMP runtime, producing per-core
//!   [`pulp_sim::Program`]s for any team size.
//!
//! # Examples
//!
//! ```
//! use kernel_ir::{DType, KernelBuilder, Suite, lower, RawFeatures};
//! use pulp_sim::{simulate, ClusterConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 64;
//! let mut b = KernelBuilder::new("axpy", Suite::Custom, DType::F32, 2 * n * 4);
//! let x = b.array("x", n);
//! let y = b.array("y", n);
//! b.par_for(n as u64, |b, i| {
//!     b.load(x, i);
//!     b.load(y, i);
//!     b.compute(2); // mul + add
//!     b.store(y, i);
//! });
//! let kernel = b.build()?;
//!
//! let raw = RawFeatures::extract(&kernel);
//! assert_eq!(raw.tcdm, 3);
//!
//! let config = ClusterConfig::default();
//! let lowered = lower(&kernel, 4, &config)?;
//! let stats = simulate(&config, &lowered.program)?;
//! assert_eq!(stats.l1_reads(), 2 * n as u64);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod builder;
pub mod expr;
pub mod lowering;
pub mod pretty;
pub mod static_features;
pub mod transform;
pub mod types;
pub mod validate;

pub use ast::{ArrayDecl, ArrayId, Kernel, Stmt};
pub use builder::KernelBuilder;
pub use expr::{Idx, LoopVar};
pub use lowering::{contains_dma, lower, static_chunk, ArrayLayout, LowerError, Lowered};
pub use pretty::render as render_kernel;
pub use static_features::{AggFeatures, RawFeatures};
pub use transform::{interchange_parallel, unroll_innermost};
pub use types::{DType, MemLevel, Schedule, Suite};
pub use validate::{validate, ValidateKernelError, L2_CAPACITY, TCDM_CAPACITY};

//! Static (compile-time) feature extraction — the RAW and AGG feature
//! families of Table II(a) in the paper.
//!
//! RAW features are static counts read off the IR without executing it,
//! mirroring the LLVM-IR parsing of the original work:
//!
//! * `op` — number of ALU, FP and JUMP opcodes in the kernel body,
//! * `tcdm` — number of accesses to the on-cluster TCDM memory,
//! * `transfer` — amount of data the kernel works on (payload bytes),
//! * `avgws` — average iteration count of the parallel regions (the
//!   OpenMP replacement the paper proposes for OpenCL's work-item count).
//!
//! AGG features combine them exactly as Grewe et al. do:
//! `F1 = transfer / (op + tcdm)`, `F3 = avgws`, `F4 = op / tcdm`.

use crate::ast::{Kernel, Stmt};
use crate::types::MemLevel;
use serde::{Deserialize, Serialize};

/// Raw static counts (Table II(a), RAW block).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawFeatures {
    /// Static count of ALU, FP and JUMP opcodes.
    pub op: u64,
    /// Static count of TCDM accesses.
    pub tcdm: u64,
    /// Payload bytes the kernel works on.
    pub transfer: u64,
    /// Average trip count over parallel regions (0 when there are none).
    pub avgws: f64,
}

impl RawFeatures {
    /// Extracts the RAW features from `kernel`.
    pub fn extract(kernel: &Kernel) -> Self {
        let mut op: u64 = 0;
        let mut tcdm: u64 = 0;
        let mut region_trips: Vec<u64> = Vec::new();
        kernel.visit(|s| match s {
            Stmt::Alu(n) | Stmt::Mul(n) | Stmt::Div(n) | Stmt::Fp(n) | Stmt::FpDiv(n) => {
                op += u64::from(*n);
            }
            // Each loop contributes one backward jump.
            Stmt::For { .. } => op += 1,
            Stmt::ParFor { trip, .. } => {
                op += 1;
                region_trips.push(*trip);
            }
            Stmt::Load { arr, .. } | Stmt::Store { arr, .. }
                if kernel.array(*arr).level == MemLevel::Tcdm =>
            {
                tcdm += 1;
            }
            _ => {}
        });
        let avgws = if region_trips.is_empty() {
            0.0
        } else {
            region_trips.iter().sum::<u64>() as f64 / region_trips.len() as f64
        };
        Self {
            op,
            tcdm,
            transfer: kernel.payload_bytes as u64,
            avgws,
        }
    }
}

/// Aggregate static features (Table II(a), AGG block).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggFeatures {
    /// `transfer / (op + tcdm)` — data moved per static instruction.
    pub f1: f64,
    /// `avgws` — parallel work available.
    pub f3: f64,
    /// `op / tcdm` — compute-to-memory ratio.
    pub f4: f64,
}

impl AggFeatures {
    /// Combines RAW features following Grewe et al.
    ///
    /// Denominators are clamped to 1 so kernels without memory accesses
    /// still produce finite features.
    pub fn from_raw(raw: &RawFeatures) -> Self {
        let denom1 = (raw.op + raw.tcdm).max(1) as f64;
        let denom4 = raw.tcdm.max(1) as f64;
        Self {
            f1: raw.transfer as f64 / denom1,
            f3: raw.avgws,
            f4: raw.op as f64 / denom4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::types::{DType, Suite};

    fn sample_kernel() -> Kernel {
        let mut b = KernelBuilder::new("k", Suite::Custom, DType::F32, 256);
        let a = b.array("a", 64);
        let l2 = b.array_l2("b", 64);
        b.par_for(64, |b, i| {
            b.load(a, i); // tcdm
            b.load(l2, i); // l2, not counted in tcdm
            b.compute(3); // 3 fp
            b.store(a, i); // tcdm
        });
        b.build().expect("valid")
    }

    #[test]
    fn raw_counts_are_static_not_dynamic() {
        let raw = RawFeatures::extract(&sample_kernel());
        // 3 FP + 1 jump for the region; loop trip does not multiply counts.
        assert_eq!(raw.op, 4);
        assert_eq!(raw.tcdm, 2);
        assert_eq!(raw.transfer, 256);
        assert!((raw.avgws - 64.0).abs() < 1e-9);
    }

    #[test]
    fn l2_accesses_excluded_from_tcdm_count() {
        let raw = RawFeatures::extract(&sample_kernel());
        assert_eq!(raw.tcdm, 2, "only the two TCDM accesses count");
    }

    #[test]
    fn agg_combines_grewe_style() {
        let raw = RawFeatures {
            op: 6,
            tcdm: 2,
            transfer: 256,
            avgws: 64.0,
        };
        let agg = AggFeatures::from_raw(&raw);
        assert!((agg.f1 - 32.0).abs() < 1e-9);
        assert!((agg.f3 - 64.0).abs() < 1e-9);
        assert!((agg.f4 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn agg_handles_zero_denominators() {
        let raw = RawFeatures {
            op: 0,
            tcdm: 0,
            transfer: 100,
            avgws: 0.0,
        };
        let agg = AggFeatures::from_raw(&raw);
        assert!(agg.f1.is_finite());
        assert!(agg.f4.is_finite());
    }

    #[test]
    fn avgws_averages_multiple_regions() {
        let mut b = KernelBuilder::new("k", Suite::Custom, DType::I32, 64);
        b.par_for(10, |b, _| b.alu(1));
        b.par_for(30, |b, _| b.alu(1));
        let k = b.build().expect("valid");
        let raw = RawFeatures::extract(&k);
        assert!((raw.avgws - 20.0).abs() < 1e-9);
    }

    #[test]
    fn no_regions_gives_zero_avgws() {
        let mut b = KernelBuilder::new("k", Suite::Custom, DType::I32, 64);
        b.for_(10, |b, _| b.alu(1));
        let k = b.build().expect("valid");
        assert_eq!(RawFeatures::extract(&k).avgws, 0.0);
    }
}

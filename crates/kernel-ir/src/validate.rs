//! Structural validation of kernels.
//!
//! Checks the invariants the lowering pass and the simulator rely on:
//! memory footprints fit their level, every index stays in bounds for all
//! loop-variable values (interval analysis over the affine expressions),
//! parallel regions do not nest, and barriers only appear at the top level.

use crate::ast::{ArrayId, Kernel, Stmt};
use crate::expr::{Idx, LoopVar};
use crate::types::MemLevel;
use std::collections::HashMap;
use std::fmt;

/// TCDM capacity assumed by validation (the paper's instance: 64 KiB).
pub const TCDM_CAPACITY: usize = 64 * 1024;
/// L2 capacity assumed by validation (the paper's instance: 512 KiB).
pub const L2_CAPACITY: usize = 512 * 1024;

/// Errors reported by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateKernelError {
    /// Combined TCDM arrays exceed the scratchpad capacity.
    TcdmOverflow {
        /// Bytes requested.
        bytes: usize,
        /// Capacity available.
        capacity: usize,
    },
    /// Combined L2 arrays exceed the L2 capacity.
    L2Overflow {
        /// Bytes requested.
        bytes: usize,
        /// Capacity available.
        capacity: usize,
    },
    /// A `ParFor` appears inside another `ParFor`.
    NestedParallel,
    /// A barrier appears inside a loop or critical section.
    MisplacedBarrier,
    /// An index expression references a loop variable that is not in scope.
    UnboundVar {
        /// The out-of-scope variable.
        var: LoopVar,
    },
    /// A DMA endpoint is in the wrong memory level or too small.
    BadDma {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A DMA transfer appears inside a parallel region.
    MisplacedDma,
    /// An access may fall outside its array for some iteration.
    IndexOutOfBounds {
        /// Accessed array.
        arr: ArrayId,
        /// Smallest reachable index.
        min: i64,
        /// Largest reachable index.
        max: i64,
        /// Array length in elements.
        len: usize,
    },
}

impl fmt::Display for ValidateKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TcdmOverflow { bytes, capacity } => {
                write!(f, "TCDM arrays need {bytes} B but capacity is {capacity} B")
            }
            Self::L2Overflow { bytes, capacity } => {
                write!(f, "L2 arrays need {bytes} B but capacity is {capacity} B")
            }
            Self::NestedParallel => write!(f, "nested parallel regions are not supported"),
            Self::MisplacedBarrier => {
                write!(f, "barriers are only allowed at the kernel top level")
            }
            Self::UnboundVar { var } => {
                write!(
                    f,
                    "index references out-of-scope loop variable v{}",
                    var.id()
                )
            }
            Self::BadDma { reason } => write!(f, "invalid DMA transfer: {reason}"),
            Self::MisplacedDma => {
                write!(f, "DMA transfers are not allowed inside parallel regions")
            }
            Self::IndexOutOfBounds { arr, min, max, len } => write!(
                f,
                "array {} indexed in [{min}, {max}] but has {len} elements",
                arr.id()
            ),
        }
    }
}

impl std::error::Error for ValidateKernelError {}

/// Validates `kernel`, returning the first defect found.
///
/// # Errors
///
/// See [`ValidateKernelError`] for the conditions checked.
pub fn validate(kernel: &Kernel) -> Result<(), ValidateKernelError> {
    let tcdm = kernel.footprint(MemLevel::Tcdm);
    if tcdm > TCDM_CAPACITY {
        return Err(ValidateKernelError::TcdmOverflow {
            bytes: tcdm,
            capacity: TCDM_CAPACITY,
        });
    }
    let l2 = kernel.footprint(MemLevel::L2);
    if l2 > L2_CAPACITY {
        return Err(ValidateKernelError::L2Overflow {
            bytes: l2,
            capacity: L2_CAPACITY,
        });
    }
    let mut scope: HashMap<LoopVar, u64> = HashMap::new();
    check_stmts(kernel, &kernel.body, &mut scope, Ctx::TopLevel)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    TopLevel,
    InLoop,
    InParallel,
}

fn check_stmts(
    kernel: &Kernel,
    stmts: &[Stmt],
    scope: &mut HashMap<LoopVar, u64>,
    ctx: Ctx,
) -> Result<(), ValidateKernelError> {
    for s in stmts {
        match s {
            Stmt::For { var, trip, body } => {
                scope.insert(*var, *trip);
                let inner = if ctx == Ctx::TopLevel {
                    Ctx::InLoop
                } else {
                    ctx
                };
                check_stmts(kernel, body, scope, inner)?;
                scope.remove(var);
            }
            Stmt::ParFor {
                var, trip, body, ..
            } => {
                if ctx == Ctx::InParallel {
                    return Err(ValidateKernelError::NestedParallel);
                }
                scope.insert(*var, *trip);
                check_stmts(kernel, body, scope, Ctx::InParallel)?;
                scope.remove(var);
            }
            Stmt::Load { arr, idx } | Stmt::Store { arr, idx } => {
                check_access(kernel, *arr, idx, scope)?;
            }
            Stmt::Barrier => {
                if ctx != Ctx::TopLevel {
                    return Err(ValidateKernelError::MisplacedBarrier);
                }
            }
            Stmt::Critical(body) => {
                check_stmts(kernel, body, scope, ctx)?;
            }
            Stmt::DmaWait => {
                if ctx == Ctx::InParallel {
                    return Err(ValidateKernelError::MisplacedDma);
                }
            }
            Stmt::DmaTransfer {
                l2, tcdm, words, ..
            } => {
                // Allowed in sequential context (including tiling loops),
                // but not inside parallel regions.
                if ctx == Ctx::InParallel {
                    return Err(ValidateKernelError::MisplacedDma);
                }
                if kernel.array(*l2).level != MemLevel::L2 {
                    return Err(ValidateKernelError::BadDma {
                        reason: "l2 endpoint must be an L2 array",
                    });
                }
                if kernel.array(*tcdm).level != MemLevel::Tcdm {
                    return Err(ValidateKernelError::BadDma {
                        reason: "tcdm endpoint must be a TCDM array",
                    });
                }
                let max = kernel.array(*l2).len.min(kernel.array(*tcdm).len) as u64;
                if *words > max {
                    return Err(ValidateKernelError::BadDma {
                        reason: "transfer longer than an endpoint array",
                    });
                }
            }
            Stmt::Alu(_)
            | Stmt::Mul(_)
            | Stmt::Div(_)
            | Stmt::Fp(_)
            | Stmt::FpDiv(_)
            | Stmt::Nop(_) => {}
        }
    }
    Ok(())
}

fn check_access(
    kernel: &Kernel,
    arr: ArrayId,
    idx: &Idx,
    scope: &HashMap<LoopVar, u64>,
) -> Result<(), ValidateKernelError> {
    let mut min = idx.constant();
    let mut max = idx.constant();
    for (var, coeff) in idx.terms() {
        let Some(&trip) = scope.get(&var) else {
            return Err(ValidateKernelError::UnboundVar { var });
        };
        let hi = trip.saturating_sub(1) as i64;
        let (lo_c, hi_c) = if coeff >= 0 {
            (0, coeff * hi)
        } else {
            (coeff * hi, 0)
        };
        min += lo_c;
        max += hi_c;
    }
    let len = kernel.array(arr).len;
    if min < 0 || max >= len as i64 {
        return Err(ValidateKernelError::IndexOutOfBounds { arr, min, max, len });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::types::{DType, Suite};

    fn builder() -> KernelBuilder {
        KernelBuilder::new("t", Suite::Custom, DType::I32, 64)
    }

    #[test]
    fn accepts_well_formed_kernel() {
        let mut b = builder();
        let a = b.array("a", 64);
        b.par_for(8, |b, i| {
            b.for_(8, |b, j| {
                b.load(a, i * 8 + j);
            });
        });
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_tcdm_overflow() {
        let mut b = builder();
        let _ = b.array("big", (TCDM_CAPACITY / 4) + 1);
        assert!(matches!(
            b.build(),
            Err(ValidateKernelError::TcdmOverflow { .. })
        ));
    }

    #[test]
    fn rejects_l2_overflow() {
        let mut b = builder();
        let _ = b.array_l2("big", (L2_CAPACITY / 4) + 1);
        assert!(matches!(
            b.build(),
            Err(ValidateKernelError::L2Overflow { .. })
        ));
    }

    #[test]
    fn rejects_nested_parallel() {
        let mut b = builder();
        b.par_for(4, |b, _| {
            b.par_for_sched(4, crate::types::Schedule::Static, |b, _| b.alu(1));
        });
        assert_eq!(b.build().unwrap_err(), ValidateKernelError::NestedParallel);
    }

    #[test]
    fn rejects_barrier_in_loop() {
        let mut b = builder();
        b.par_for(4, |b, _| b.barrier());
        assert_eq!(
            b.build().unwrap_err(),
            ValidateKernelError::MisplacedBarrier
        );
    }

    #[test]
    fn accepts_top_level_barrier() {
        let mut b = builder();
        b.par_for(4, |b, _| b.alu(1));
        b.barrier();
        b.par_for(4, |b, _| b.alu(1));
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_out_of_bounds_upper() {
        let mut b = builder();
        let a = b.array("a", 8);
        b.par_for(9, |b, i| b.load(a, i));
        assert!(matches!(
            b.build(),
            Err(ValidateKernelError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn rejects_negative_index() {
        let mut b = builder();
        let a = b.array("a", 8);
        b.par_for(8, |b, i| b.load(a, i - 1));
        assert!(matches!(
            b.build(),
            Err(ValidateKernelError::IndexOutOfBounds { min: -1, .. })
        ));
    }

    #[test]
    fn accepts_boundary_index() {
        let mut b = builder();
        let a = b.array("a", 8);
        b.par_for(8, |b, i| b.load(a, i));
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_unbound_var() {
        let mut b = builder();
        let a = b.array("a", 64);
        let mut stash = None;
        b.par_for(4, |_, i| stash = Some(i));
        let escaped = stash.expect("captured var");
        b.load(a, escaped);
        assert!(matches!(
            b.build(),
            Err(ValidateKernelError::UnboundVar { .. })
        ));
    }

    #[test]
    fn negative_coefficient_interval_analysis() {
        let mut b = builder();
        let a = b.array("a", 16);
        // a[15 - i] for i in 0..16: in bounds.
        b.par_for(16, |b, i| {
            b.load(a, Idx::constant_of(15) - i);
        });
        assert!(b.build().is_ok());
    }

    #[test]
    fn negative_coefficient_out_of_bounds() {
        let mut b = builder();
        let a = b.array("a", 16);
        // a[15 - i] for i in 0..17: reaches -1.
        b.par_for(17, |b, i| {
            b.load(a, Idx::constant_of(15) - i);
        });
        assert!(matches!(
            b.build(),
            Err(ValidateKernelError::IndexOutOfBounds { min: -1, .. })
        ));
    }
}

//! Ergonomic kernel construction.
//!
//! [`KernelBuilder`] offers closure-scoped loops so that kernel sources in
//! the dataset crate read like the C they were ported from:
//!
//! ```
//! use kernel_ir::{DType, KernelBuilder, Suite};
//!
//! # fn main() -> Result<(), kernel_ir::ValidateKernelError> {
//! let n = 16;
//! let mut b = KernelBuilder::new("vec_scale", Suite::Custom, DType::F32, n * 4);
//! let a = b.array("a", n);
//! b.par_for(n as u64, |b, i| {
//!     b.load(a, i);
//!     b.compute(1);
//!     b.store(a, i);
//! });
//! let kernel = b.build()?;
//! assert_eq!(kernel.arrays.len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::ast::{ArrayDecl, ArrayId, Kernel, Stmt};
use crate::expr::{Idx, LoopVar};
use crate::types::{DType, MemLevel, Schedule, Suite};
use crate::validate::{validate, ValidateKernelError};

/// Incremental builder for [`Kernel`]s.
///
/// Statements are appended to the innermost open scope; loops open a scope
/// for the duration of their closure.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    suite: Suite,
    dtype: DType,
    payload_bytes: usize,
    arrays: Vec<ArrayDecl>,
    scopes: Vec<Vec<Stmt>>,
    next_var: u32,
}

impl KernelBuilder {
    /// Starts a kernel named `name` from `suite`, instantiated for `dtype`
    /// and a payload of `payload_bytes`.
    pub fn new(name: impl Into<String>, suite: Suite, dtype: DType, payload_bytes: usize) -> Self {
        Self {
            name: name.into(),
            suite,
            dtype,
            payload_bytes,
            arrays: Vec::new(),
            scopes: vec![Vec::new()],
            next_var: 0,
        }
    }

    /// The data type this kernel instance manipulates.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Declares a TCDM-resident array of `len` elements.
    pub fn array(&mut self, name: impl Into<String>, len: usize) -> ArrayId {
        self.declare(name, len, MemLevel::Tcdm)
    }

    /// Declares an L2-resident array of `len` elements (off-cluster data).
    pub fn array_l2(&mut self, name: impl Into<String>, len: usize) -> ArrayId {
        self.declare(name, len, MemLevel::L2)
    }

    fn declare(&mut self, name: impl Into<String>, len: usize, level: MemLevel) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl {
            name: name.into(),
            len,
            level,
        });
        id
    }

    fn push(&mut self, s: Stmt) {
        self.scopes.last_mut().expect("builder scope stack").push(s);
    }

    fn fresh_var(&mut self) -> LoopVar {
        let v = LoopVar(self.next_var);
        self.next_var += 1;
        v
    }

    /// Opens a sequential loop of `trip` iterations.
    pub fn for_(&mut self, trip: u64, f: impl FnOnce(&mut Self, LoopVar)) {
        let var = self.fresh_var();
        self.scopes.push(Vec::new());
        f(self, var);
        let body = self.scopes.pop().expect("loop scope");
        self.push(Stmt::For { var, trip, body });
    }

    /// Opens an OpenMP `parallel for` with static scheduling.
    pub fn par_for(&mut self, trip: u64, f: impl FnOnce(&mut Self, LoopVar)) {
        self.par_for_sched(trip, Schedule::Static, f);
    }

    /// Opens an OpenMP `parallel for` with an explicit schedule.
    pub fn par_for_sched(
        &mut self,
        trip: u64,
        sched: Schedule,
        f: impl FnOnce(&mut Self, LoopVar),
    ) {
        let var = self.fresh_var();
        self.scopes.push(Vec::new());
        f(self, var);
        let body = self.scopes.pop().expect("loop scope");
        self.push(Stmt::ParFor {
            var,
            trip,
            sched,
            body,
        });
    }

    /// Opens a critical section.
    pub fn critical(&mut self, f: impl FnOnce(&mut Self)) {
        self.scopes.push(Vec::new());
        f(self);
        let body = self.scopes.pop().expect("critical scope");
        self.push(Stmt::Critical(body));
    }

    /// Loads one element.
    pub fn load(&mut self, arr: ArrayId, idx: impl Into<Idx>) {
        self.push(Stmt::Load {
            arr,
            idx: idx.into(),
        });
    }

    /// Stores one element.
    pub fn store(&mut self, arr: ArrayId, idx: impl Into<Idx>) {
        self.push(Stmt::Store {
            arr,
            idx: idx.into(),
        });
    }

    /// Appends `n` integer ALU operations.
    pub fn alu(&mut self, n: u32) {
        if n > 0 {
            self.push(Stmt::Alu(n));
        }
    }

    /// Appends `n` integer multiplies.
    pub fn mul(&mut self, n: u32) {
        if n > 0 {
            self.push(Stmt::Mul(n));
        }
    }

    /// Appends `n` integer divides.
    pub fn div(&mut self, n: u32) {
        if n > 0 {
            self.push(Stmt::Div(n));
        }
    }

    /// Appends `n` floating-point add/mul operations.
    pub fn fp(&mut self, n: u32) {
        if n > 0 {
            self.push(Stmt::Fp(n));
        }
    }

    /// Appends `n` floating-point divides.
    pub fn fp_div(&mut self, n: u32) {
        if n > 0 {
            self.push(Stmt::FpDiv(n));
        }
    }

    /// Appends `n` explicit active-wait cycles.
    pub fn nop(&mut self, n: u32) {
        if n > 0 {
            self.push(Stmt::Nop(n));
        }
    }

    /// Appends `n` arithmetic operations of the kernel's element type:
    /// FP ops for `f32` instances, ALU ops for `i32` instances.
    ///
    /// This is how dataset kernels stay parametric in the data type, the
    /// central knob the paper turns to expose FPU contention.
    pub fn compute(&mut self, n: u32) {
        match self.dtype {
            DType::I32 => self.alu(n),
            DType::F32 => self.fp(n),
        }
    }

    /// Appends `n` multiplies of the kernel's element type.
    pub fn compute_mul(&mut self, n: u32) {
        match self.dtype {
            DType::I32 => self.mul(n),
            DType::F32 => self.fp(n),
        }
    }

    /// Appends `n` divides of the kernel's element type.
    pub fn compute_div(&mut self, n: u32) {
        match self.dtype {
            DType::I32 => self.div(n),
            DType::F32 => self.fp_div(n),
        }
    }

    /// Appends a cluster-wide barrier (top level only; validated by
    /// [`KernelBuilder::build`]).
    pub fn barrier(&mut self) {
        self.push(Stmt::Barrier);
    }

    /// Stages `words` words from an L2 array into a TCDM array via the
    /// cluster DMA (top level only; blocking).
    pub fn dma_in(&mut self, l2: ArrayId, tcdm: ArrayId, words: u64) {
        self.push(Stmt::DmaTransfer {
            l2,
            tcdm,
            words,
            inbound: true,
            blocking: true,
        });
    }

    /// Writes `words` words from a TCDM array back to an L2 array via the
    /// cluster DMA (top level only; blocking).
    pub fn dma_out(&mut self, l2: ArrayId, tcdm: ArrayId, words: u64) {
        self.push(Stmt::DmaTransfer {
            l2,
            tcdm,
            words,
            inbound: false,
            blocking: true,
        });
    }

    /// Starts an asynchronous L2 → TCDM transfer (pair with
    /// [`KernelBuilder::dma_wait`] before touching the destination).
    pub fn dma_in_async(&mut self, l2: ArrayId, tcdm: ArrayId, words: u64) {
        self.push(Stmt::DmaTransfer {
            l2,
            tcdm,
            words,
            inbound: true,
            blocking: false,
        });
    }

    /// Starts an asynchronous TCDM → L2 transfer.
    pub fn dma_out_async(&mut self, l2: ArrayId, tcdm: ArrayId, words: u64) {
        self.push(Stmt::DmaTransfer {
            l2,
            tcdm,
            words,
            inbound: false,
            blocking: false,
        });
    }

    /// Waits for all outstanding asynchronous DMA transfers.
    pub fn dma_wait(&mut self) {
        self.push(Stmt::DmaWait);
    }

    /// Finalises and validates the kernel.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found by [`validate`]: memory
    /// overflow, out-of-bounds indices, nested parallelism, misplaced
    /// barriers or out-of-scope loop variables.
    pub fn build(mut self) -> Result<Kernel, ValidateKernelError> {
        assert_eq!(self.scopes.len(), 1, "unclosed builder scopes");
        let kernel = Kernel {
            name: self.name,
            suite: self.suite,
            dtype: self.dtype,
            payload_bytes: self.payload_bytes,
            arrays: self.arrays,
            body: self.scopes.pop().expect("root scope"),
        };
        validate(&kernel)?;
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structure() {
        let mut b = KernelBuilder::new("k", Suite::Custom, DType::I32, 64);
        let a = b.array("a", 16);
        b.par_for(4, |b, i| {
            b.for_(4, |b, j| {
                b.load(a, i * 4 + j);
                b.compute(1);
            });
            b.store(a, i);
        });
        let k = b.build().expect("valid kernel");
        assert_eq!(k.body.len(), 1);
        let mut loads = 0;
        k.visit(|s| {
            if matches!(s, Stmt::Load { .. }) {
                loads += 1;
            }
        });
        assert_eq!(loads, 1);
    }

    #[test]
    fn compute_dispatches_on_dtype() {
        let mut bi = KernelBuilder::new("k", Suite::Custom, DType::I32, 4);
        bi.compute(3);
        let ki = bi.build().expect("valid");
        assert_eq!(ki.body, vec![Stmt::Alu(3)]);

        let mut bf = KernelBuilder::new("k", Suite::Custom, DType::F32, 4);
        bf.compute(3);
        let kf = bf.build().expect("valid");
        assert_eq!(kf.body, vec![Stmt::Fp(3)]);
    }

    #[test]
    fn zero_count_ops_are_elided() {
        let mut b = KernelBuilder::new("k", Suite::Custom, DType::I32, 4);
        b.alu(0);
        b.fp(0);
        let k = b.build().expect("valid");
        assert!(k.body.is_empty());
    }

    #[test]
    fn critical_wraps_body() {
        let mut b = KernelBuilder::new("k", Suite::Custom, DType::I32, 4);
        b.par_for(8, |b, _i| {
            b.critical(|b| b.alu(1));
        });
        let k = b.build().expect("valid");
        let mut criticals = 0;
        k.visit(|s| {
            if matches!(s, Stmt::Critical(_)) {
                criticals += 1;
            }
        });
        assert_eq!(criticals, 1);
    }
}

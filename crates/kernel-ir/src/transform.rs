//! Kernel transformations.
//!
//! Compiler-style rewrites over the IR:
//!
//! * [`unroll_innermost`] — trades static code size (more I-cache
//!   refills, larger `op` feature) for fewer loop-control instructions
//!   per iteration; quantified by the `unroll_ablation` bench.
//! * [`interchange_parallel`] — swaps a perfect `parallel for`/`for`
//!   nest, moving the work-sharing domain to the inner loop.
//!
//! Both let robustness studies ask how sensitive the energy landscape and
//! the static features are to compiler knobs the paper holds fixed.

use crate::ast::{Kernel, Stmt};
use crate::expr::LoopVar;

/// Unrolls every innermost sequential `For` loop of `kernel` by `factor`.
///
/// A loop of trip `t` becomes a loop of `t / factor` iterations whose body
/// is `factor` substituted copies, followed by `t % factor` straight-line
/// remainder copies. Parallel loops are never unrolled (their trip is the
/// work-sharing domain, not a code-size knob).
///
/// Factors of 0 or 1, and kernels without eligible loops, return an
/// unchanged clone.
pub fn unroll_innermost(kernel: &Kernel, factor: u32) -> Kernel {
    let mut out = kernel.clone();
    if factor <= 1 {
        return out;
    }
    let mut next_var = max_var_id(kernel).map_or(0, |v| v + 1);
    out.body = rewrite(&out.body, u64::from(factor), &mut next_var);
    out
}

fn max_var_id(kernel: &Kernel) -> Option<u32> {
    let mut max = None;
    kernel.visit(|s| {
        if let Stmt::For { var, .. } | Stmt::ParFor { var, .. } = s {
            max = Some(max.map_or(var.id(), |m: u32| m.max(var.id())));
        }
    });
    max
}

fn has_loop(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::For { .. } | Stmt::ParFor { .. } => true,
        Stmt::Critical(body) => has_loop(body),
        _ => false,
    })
}

fn rewrite(stmts: &[Stmt], factor: u64, next_var: &mut u32) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::For { var, trip, body } if !has_loop(body) => {
                unroll_one(*var, *trip, body, factor, next_var)
            }
            Stmt::For { var, trip, body } => Stmt::For {
                var: *var,
                trip: *trip,
                body: rewrite(body, factor, next_var),
            },
            Stmt::ParFor {
                var,
                trip,
                sched,
                body,
            } => Stmt::ParFor {
                var: *var,
                trip: *trip,
                sched: *sched,
                body: rewrite(body, factor, next_var),
            },
            Stmt::Critical(body) => Stmt::Critical(rewrite(body, factor, next_var)),
            other => other.clone(),
        })
        .collect()
}

fn unroll_one(var: LoopVar, trip: u64, body: &[Stmt], factor: u64, next_var: &mut u32) -> Stmt {
    let main_trips = trip / factor;
    let remainder = trip % factor;
    let new_var = LoopVar(*next_var);
    *next_var += 1;

    let mut main_body = Vec::with_capacity(body.len() * factor as usize);
    for u in 0..factor {
        for s in body {
            main_body.push(substitute(s, var, Some(new_var), factor as i64, u as i64));
        }
    }
    let mut out = Vec::new();
    if main_trips > 0 {
        out.push(Stmt::For {
            var: new_var,
            trip: main_trips,
            body: main_body,
        });
    }
    for r in 0..remainder {
        let base = (main_trips * factor + r) as i64;
        for s in body {
            out.push(substitute(s, var, None, 0, base));
        }
    }
    // A single statement is expected by the caller; wrap multi-part
    // results in a trip-1 loop only when needed.
    if out.len() == 1 {
        out.pop().expect("non-empty")
    } else {
        let wrapper = LoopVar(*next_var);
        *next_var += 1;
        Stmt::For {
            var: wrapper,
            trip: 1,
            body: out,
        }
    }
}

fn substitute(s: &Stmt, var: LoopVar, new_var: Option<LoopVar>, scale: i64, offset: i64) -> Stmt {
    match s {
        Stmt::Load { arr, idx } => Stmt::Load {
            arr: *arr,
            idx: idx.replace_var_affine(var, new_var, scale, offset),
        },
        Stmt::Store { arr, idx } => Stmt::Store {
            arr: *arr,
            idx: idx.replace_var_affine(var, new_var, scale, offset),
        },
        Stmt::Critical(body) => Stmt::Critical(
            body.iter()
                .map(|s| substitute(s, var, new_var, scale, offset))
                .collect(),
        ),
        // Innermost loops contain no nested loops by construction.
        other => other.clone(),
    }
}

/// Interchanges each parallel loop with its immediately-nested sequential
/// loop when the nest is *perfect* (the `ParFor` body is exactly one
/// `For`). The inner loop becomes the work-sharing domain:
///
/// ```text
/// parallel for i { for j { body(i, j) } }
///   ==>  parallel for j { for i { body(i, j) } }
/// ```
///
/// The IR carries no loop-carried dataflow, so the transform is always
/// energy-semantics preserving here (same multiset of operations and
/// addresses); on real code it would require a dependence check. It
/// changes the `avgws` static feature, the bank-access pattern and the
/// per-core chunk shape — a second compiler knob for robustness studies.
pub fn interchange_parallel(kernel: &Kernel) -> Kernel {
    let mut out = kernel.clone();
    out.body = out
        .body
        .iter()
        .map(|s| match s {
            Stmt::ParFor {
                var,
                trip,
                sched,
                body,
            } if body.len() == 1 => {
                if let Stmt::For {
                    var: ivar,
                    trip: itrip,
                    body: ibody,
                } = &body[0]
                {
                    Stmt::ParFor {
                        var: *ivar,
                        trip: *itrip,
                        sched: *sched,
                        body: vec![Stmt::For {
                            var: *var,
                            trip: *trip,
                            body: ibody.clone(),
                        }],
                    }
                } else {
                    s.clone()
                }
            }
            other => other.clone(),
        })
        .collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::lowering::lower;
    use crate::types::{DType, Suite};
    use pulp_sim::{simulate, simulate_traced, ClusterConfig, OpKind, TraceEvent, VecSink};

    fn fir_like(n: u64, taps: u64) -> Kernel {
        let mut b = KernelBuilder::new("fir", Suite::Custom, DType::I32, 4 * n as usize);
        let x = b.array("x", (n + taps) as usize);
        let y = b.array("y", n as usize);
        let c = b.array("c", taps as usize);
        b.par_for(n, |b, i| {
            b.for_(taps, |b, t| {
                b.load(x, i + t);
                b.load(c, t);
                b.alu(2);
            });
            b.store(y, i);
        });
        b.build().expect("valid")
    }

    fn addresses(kernel: &Kernel, team: usize) -> Vec<u32> {
        let cfg = ClusterConfig::default();
        let lowered = lower(kernel, team, &cfg).expect("lower");
        let mut sink = VecSink::new();
        simulate_traced(&cfg, &lowered.program, 10_000_000, &mut sink).expect("simulate");
        let mut addrs: Vec<u32> = sink
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                TraceEvent::Insn {
                    kind: OpKind::Load | OpKind::Store,
                    addr,
                    ..
                } => *addr,
                _ => None,
            })
            .collect();
        addrs.sort_unstable();
        addrs
    }

    #[test]
    fn factor_one_is_identity() {
        let k = fir_like(16, 8);
        assert_eq!(unroll_innermost(&k, 1), k);
        assert_eq!(unroll_innermost(&k, 0), k);
    }

    #[test]
    fn unrolled_kernel_still_validates() {
        let k = fir_like(16, 8);
        for factor in [2, 3, 4, 8] {
            let u = unroll_innermost(&k, factor);
            assert!(crate::validate::validate(&u).is_ok(), "factor {factor}");
        }
    }

    #[test]
    fn unrolling_preserves_the_memory_access_multiset() {
        let k = fir_like(12, 6);
        let base = addresses(&k, 3);
        for factor in [2, 4, 5] {
            let u = unroll_innermost(&k, factor);
            assert_eq!(addresses(&u, 3), base, "factor {factor}");
        }
    }

    #[test]
    fn unrolling_reduces_cycles() {
        let cfg = ClusterConfig::default();
        let k = fir_like(64, 16);
        let cycles = |k: &Kernel| {
            let lowered = lower(k, 1, &cfg).expect("lower");
            simulate(&cfg, &lowered.program).expect("simulate").cycles
        };
        let base = cycles(&k);
        let unrolled = cycles(&unroll_innermost(&k, 4));
        assert!(
            unrolled < base,
            "unrolling must remove loop overhead: {unrolled} vs {base}"
        );
    }

    #[test]
    fn remainder_iterations_are_not_lost() {
        // trip 7, factor 3: 2 full blocks + 1 remainder.
        let k = fir_like(4, 7);
        let u = unroll_innermost(&k, 3);
        assert_eq!(addresses(&u, 1), addresses(&k, 1));
    }

    #[test]
    fn interchange_swaps_perfect_nests() {
        let k = fir_like(16, 8);
        let t = interchange_parallel(&k);
        assert!(crate::validate::validate(&t).is_ok());
        // The parallel trip count is now the tap count.
        let mut outer_trip = 0;
        for s in &t.body {
            if let Stmt::ParFor { trip, .. } = s {
                outer_trip = *trip;
            }
        }
        // fir's region body is [For, Store]: not a perfect nest → no swap.
        assert_eq!(outer_trip, 16);

        // A genuinely perfect nest does swap.
        let mut b = crate::builder::KernelBuilder::new(
            "nest",
            crate::types::Suite::Custom,
            crate::types::DType::I32,
            1024,
        );
        let a = b.array("a", 16 * 8);
        b.par_for(16, |b, i| {
            b.for_(8, |b, j| {
                b.load(a, i * 8 + j);
                b.alu(1);
            });
        });
        let k = b.build().expect("valid");
        let t = interchange_parallel(&k);
        let mut outer = 0;
        for s in &t.body {
            if let Stmt::ParFor { trip, .. } = s {
                outer = *trip;
            }
        }
        assert_eq!(outer, 8, "inner loop must become the parallel domain");
        assert_eq!(addresses(&t, 4), addresses(&k, 4), "same access multiset");
        // avgws changes accordingly.
        use crate::static_features::RawFeatures;
        assert_eq!(RawFeatures::extract(&k).avgws, 16.0);
        assert_eq!(RawFeatures::extract(&t).avgws, 8.0);
    }

    #[test]
    fn grows_static_op_feature() {
        use crate::static_features::RawFeatures;
        let k = fir_like(16, 8);
        let u = unroll_innermost(&k, 4);
        let base = RawFeatures::extract(&k);
        let unrolled = RawFeatures::extract(&u);
        assert!(unrolled.op > base.op, "{} !> {}", unrolled.op, base.op);
        assert!(unrolled.tcdm > base.tcdm);
    }
}

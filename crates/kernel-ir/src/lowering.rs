//! Lowering kernels to per-core simulator programs.
//!
//! This pass plays the role of the compiler + OpenMP runtime on PULP: it
//! assigns arrays to concrete addresses, splits parallel-region iterations
//! across the team according to the schedule, inserts the fork/join
//! skeleton (master `Fork`, worker `WaitFork`, joining `Barrier`) and adds
//! the loop-control overhead instructions real code pays per iteration.
//!
//! Master/worker convention: sequential statements execute on core 0 while
//! workers sleep clock-gated; sequential loops that *contain* parallel
//! regions are replicated on the workers as control skeleton only, so the
//! fork counters stay aligned across the team.

use crate::ast::{ArrayId, Kernel, Stmt};
use crate::expr::{Idx, LoopVar};
use crate::types::{MemLevel, Schedule};
use pulp_sim::{AddrExpr, ClusterConfig, OpKind, Program, SegOp};
use std::collections::HashMap;
use std::fmt;

/// ALU instructions charged per parallel-region entry per core (schedule
/// bounds computation in the OpenMP runtime).
pub const REGION_PROLOGUE_ALU: u32 = 12;
/// ALU instructions charged when entering any counted loop (induction
/// variable initialisation).
pub const LOOP_SETUP_ALU: u32 = 1;

/// Errors produced by [`lower`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// The requested team is empty or exceeds the cluster size.
    BadTeamSize {
        /// Requested team size.
        team: usize,
        /// Cores available in the cluster.
        available: usize,
    },
    /// A chunked schedule was given a zero chunk size.
    ZeroChunk,
    /// Array storage exceeds the address window of its memory level.
    LayoutOverflow {
        /// The level that overflowed.
        level: MemLevel,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadTeamSize { team, available } => {
                write!(f, "team size {team} invalid for a {available}-core cluster")
            }
            Self::ZeroChunk => write!(f, "chunked schedule requires a chunk size >= 1"),
            Self::LayoutOverflow { level } => write!(f, "arrays overflow {level:?} window"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Concrete placement of a kernel's arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayLayout {
    bases: Vec<u32>,
}

impl ArrayLayout {
    /// Byte base address of `arr`.
    pub fn base(&self, arr: ArrayId) -> u32 {
        self.bases[arr.id() as usize]
    }

    fn compute(kernel: &Kernel, config: &ClusterConfig) -> Result<Self, LowerError> {
        let mut tcdm_off: u32 = 0;
        let mut l2_off: u32 = 0;
        let mut bases = Vec::with_capacity(kernel.arrays.len());
        for a in &kernel.arrays {
            let bytes = a.bytes() as u32;
            match a.level {
                MemLevel::Tcdm => {
                    bases.push(pulp_sim::TCDM_BASE + tcdm_off);
                    tcdm_off += bytes;
                    if tcdm_off > config.tcdm_bytes {
                        return Err(LowerError::LayoutOverflow {
                            level: MemLevel::Tcdm,
                        });
                    }
                }
                MemLevel::L2 => {
                    bases.push(pulp_sim::L2_BASE + l2_off);
                    l2_off += bytes;
                    if l2_off > config.l2_bytes {
                        return Err(LowerError::LayoutOverflow {
                            level: MemLevel::L2,
                        });
                    }
                }
            }
        }
        Ok(Self { bases })
    }
}

/// Result of lowering: the runnable program plus the array placement.
#[derive(Debug, Clone, PartialEq)]
pub struct Lowered {
    /// Per-core program for the requested team size.
    pub program: Program,
    /// Array base addresses.
    pub layout: ArrayLayout,
}

/// Lowers `kernel` for a team of `team` cores on `config`.
///
/// # Errors
///
/// Returns an error for invalid team sizes, zero chunk sizes, or array sets
/// that do not fit their memory level.
pub fn lower(kernel: &Kernel, team: usize, config: &ClusterConfig) -> Result<Lowered, LowerError> {
    if team == 0 || team > config.num_cores {
        return Err(LowerError::BadTeamSize {
            team,
            available: config.num_cores,
        });
    }
    let layout = ArrayLayout::compute(kernel, config)?;
    let mut streams = Vec::with_capacity(team);
    for core in 0..team {
        let mut lo = Lowerer {
            layout: &layout,
            team,
            core,
            out: Vec::new(),
            depth: 0,
            bindings: HashMap::new(),
        };
        lo.lower_sequential(&kernel.body);
        streams.push(lo.out);
    }
    let program = Program::new(streams);
    debug_assert_eq!(program.validate(), Ok(()));
    Ok(Lowered { program, layout })
}

/// Affine binding of a loop variable to the core-local loop nest:
/// `value = offset + Σ coeff_d · iv_d`.
#[derive(Debug, Clone)]
struct Binding {
    offset: i64,
    terms: Vec<(u8, i64)>,
}

struct Lowerer<'k> {
    layout: &'k ArrayLayout,
    team: usize,
    core: usize,
    out: Vec<SegOp>,
    depth: usize,
    bindings: HashMap<LoopVar, Binding>,
}

impl Lowerer<'_> {
    fn is_master(&self) -> bool {
        self.core == 0
    }

    fn emit_op(&mut self, kind: OpKind, n: u32) {
        for _ in 0..n {
            self.out.push(SegOp::Instr { kind, addr: None });
        }
    }

    fn emit_access(&mut self, kind: OpKind, arr: ArrayId, idx: &Idx) {
        let mut base = i64::from(self.layout.base(arr)) + 4 * idx.constant();
        let mut terms = Vec::new();
        for (var, coeff) in idx.terms() {
            let b = self.bindings.get(&var).expect("validated: var in scope");
            base += 4 * coeff * b.offset;
            for &(d, c) in &b.terms {
                let byte_coeff = 4 * coeff * c;
                if byte_coeff != 0 {
                    merge_term(&mut terms, d, byte_coeff);
                }
            }
        }
        self.out.push(SegOp::Instr {
            kind,
            addr: Some(AddrExpr { base, terms }),
        });
    }

    /// Opens a counted loop, binds `var` to the fresh depth with `offset`
    /// and `stride`, runs `body`, and closes the loop. When `overhead` is
    /// set, per-iteration loop-control instructions are charged.
    fn counted_loop(
        &mut self,
        trip: u64,
        bind: Option<(LoopVar, i64, i64)>,
        overhead: bool,
        body: impl FnOnce(&mut Self),
    ) {
        if overhead {
            self.emit_op(OpKind::Alu, LOOP_SETUP_ALU);
        }
        self.out.push(SegOp::LoopBegin { trip });
        let d = self.depth as u8;
        self.depth += 1;
        if let Some((var, offset, stride)) = bind {
            self.bindings.insert(
                var,
                Binding {
                    offset,
                    terms: vec![(d, stride)],
                },
            );
        }
        body(self);
        if overhead {
            // Induction-variable increment + backward branch.
            self.emit_op(OpKind::Alu, 1);
            self.emit_op(OpKind::Branch, 1);
        }
        self.out.push(SegOp::LoopEnd);
        self.depth -= 1;
        if let Some((var, _, _)) = bind {
            self.bindings.remove(&var);
        }
    }

    /// Lowers statements in sequential (non-parallel) context.
    fn lower_sequential(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::ParFor {
                    var,
                    trip,
                    sched,
                    body,
                } => {
                    self.lower_region(*var, *trip, *sched, body);
                }
                Stmt::Barrier => self.out.push(SegOp::Barrier),
                Stmt::For { var, trip, body } => {
                    if contains_parallel(body) {
                        // Replicated control skeleton; workers execute the
                        // loop structure for free (no overhead ops) so the
                        // fork counters stay aligned.
                        let overhead = self.is_master();
                        self.counted_loop(*trip, Some((*var, 0, 1)), overhead, |lo| {
                            lo.lower_sequential(body);
                        });
                    } else if self.is_master() {
                        self.counted_loop(*trip, Some((*var, 0, 1)), true, |lo| {
                            lo.lower_serial_body(body);
                        });
                    }
                }
                Stmt::DmaTransfer {
                    words,
                    inbound,
                    blocking,
                    ..
                } => {
                    // The master programs the engine; workers are asleep.
                    if self.is_master() {
                        self.out.push(if *blocking {
                            SegOp::Dma {
                                words: *words,
                                inbound: *inbound,
                            }
                        } else {
                            SegOp::DmaAsync {
                                words: *words,
                                inbound: *inbound,
                            }
                        });
                    }
                }
                Stmt::DmaWait => {
                    if self.is_master() {
                        self.out.push(SegOp::DmaWait);
                    }
                }
                other => {
                    if self.is_master() {
                        self.lower_serial_stmt(other);
                    }
                }
            }
        }
    }

    /// Lowers master-only straight-line statements (no parallel regions
    /// inside, guaranteed by validation + `contains_parallel` dispatch).
    fn lower_serial_body(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.lower_serial_stmt(s);
        }
    }

    fn lower_serial_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::For { var, trip, body } => {
                self.counted_loop(*trip, Some((*var, 0, 1)), true, |lo| {
                    lo.lower_serial_body(body);
                });
            }
            Stmt::Load { arr, idx } => self.emit_access(OpKind::Load, *arr, idx),
            Stmt::Store { arr, idx } => self.emit_access(OpKind::Store, *arr, idx),
            Stmt::Alu(n) => self.emit_op(OpKind::Alu, *n),
            Stmt::Mul(n) => self.emit_op(OpKind::Mul, *n),
            Stmt::Div(n) => self.emit_op(OpKind::Div, *n),
            Stmt::Fp(n) => self.emit_op(OpKind::Fp(pulp_sim::FpOp::Mul), *n),
            Stmt::FpDiv(n) => self.emit_op(OpKind::Fp(pulp_sim::FpOp::Div), *n),
            Stmt::Nop(n) => self.emit_op(OpKind::Nop, *n),
            Stmt::Critical(body) => {
                self.out.push(SegOp::CriticalBegin);
                self.lower_serial_body(body);
                self.out.push(SegOp::CriticalEnd);
            }
            Stmt::DmaTransfer {
                words,
                inbound,
                blocking,
                ..
            } => {
                self.out.push(if *blocking {
                    SegOp::Dma {
                        words: *words,
                        inbound: *inbound,
                    }
                } else {
                    SegOp::DmaAsync {
                        words: *words,
                        inbound: *inbound,
                    }
                });
            }
            Stmt::DmaWait => self.out.push(SegOp::DmaWait),
            Stmt::ParFor { .. } | Stmt::Barrier => {
                unreachable!("serial body cannot contain regions or barriers")
            }
        }
    }

    /// Lowers one parallel region for this core.
    fn lower_region(&mut self, var: LoopVar, trip: u64, sched: Schedule, body: &[Stmt]) {
        if self.is_master() {
            self.out.push(SegOp::Fork);
        } else {
            self.out.push(SegOp::WaitFork);
        }
        self.emit_op(OpKind::Alu, REGION_PROLOGUE_ALU);
        match sched {
            Schedule::Static => self.lower_static_chunk(var, trip, body),
            Schedule::Chunked(k) => self.lower_chunked(var, trip, k.max(1) as u64, body),
            Schedule::Guided(min) => self.lower_guided(var, trip, min.max(1) as u64, body),
        }
        self.out.push(SegOp::Barrier);
    }

    fn lower_static_chunk(&mut self, var: LoopVar, trip: u64, body: &[Stmt]) {
        let (start, len) = static_chunk(trip, self.team, self.core);
        if len == 0 {
            return;
        }
        self.counted_loop(len, Some((var, start as i64, 1)), true, |lo| {
            lo.lower_serial_body(body);
        });
    }

    fn lower_chunked(&mut self, var: LoopVar, trip: u64, k: u64, body: &[Stmt]) {
        let full = trip / k;
        let rem = trip % k;
        let team = self.team as u64;
        let core = self.core as u64;
        // Full chunks assigned round-robin: chunk ids {core, core+T, ...}.
        let rounds = if full > core {
            (full - core).div_ceil(team)
        } else {
            0
        };
        if rounds > 0 {
            let offset = (core * k) as i64;
            let outer_stride = (team * k) as i64;
            self.emit_op(OpKind::Alu, LOOP_SETUP_ALU);
            self.out.push(SegOp::LoopBegin { trip: rounds });
            let d0 = self.depth as u8;
            self.depth += 1;
            self.counted_loop(k, None, true, |lo| {
                let d1 = (lo.depth - 1) as u8;
                lo.bindings.insert(
                    var,
                    Binding {
                        offset,
                        terms: vec![(d0, outer_stride), (d1, 1)],
                    },
                );
                lo.lower_serial_body(body);
                lo.bindings.remove(&var);
            });
            // Outer round bookkeeping.
            self.emit_op(OpKind::Alu, 1);
            self.emit_op(OpKind::Branch, 1);
            self.out.push(SegOp::LoopEnd);
            self.depth -= 1;
        }
        // The trailing partial chunk goes to the core next in rotation.
        if rem > 0 && full % team == core {
            let start = (full * k) as i64;
            self.counted_loop(rem, Some((var, start, 1)), true, |lo| {
                lo.lower_serial_body(body);
            });
        }
    }
}

impl Lowerer<'_> {
    /// Guided schedule: precompute the geometric chunk sequence, assign
    /// chunks round-robin, and emit one counted loop per owned chunk.
    fn lower_guided(&mut self, var: LoopVar, trip: u64, min_chunk: u64, body: &[Stmt]) {
        let chunks = guided_chunks(trip, self.team, min_chunk);
        for (cid, &(start, len)) in chunks.iter().enumerate() {
            if cid % self.team != self.core {
                continue;
            }
            self.counted_loop(len, Some((var, start as i64, 1)), true, |lo| {
                lo.lower_serial_body(body);
            });
        }
    }
}

/// The `(start, len)` chunk sequence of a guided schedule over `trip`
/// iterations for `team` cores with minimum chunk `min_chunk`.
pub fn guided_chunks(trip: u64, team: usize, min_chunk: u64) -> Vec<(u64, u64)> {
    let mut chunks = Vec::new();
    let mut start = 0u64;
    let mut remaining = trip;
    let min_chunk = min_chunk.max(1);
    while remaining > 0 {
        let len = (remaining / (2 * team as u64))
            .max(min_chunk)
            .min(remaining);
        chunks.push((start, len));
        start += len;
        remaining -= len;
    }
    chunks
}

fn merge_term(terms: &mut Vec<(u8, i64)>, d: u8, c: i64) {
    if let Some(t) = terms.iter_mut().find(|(td, _)| *td == d) {
        t.1 += c;
        terms.retain(|(_, c)| *c != 0);
    } else {
        terms.push((d, c));
    }
}

/// Returns `(start, len)` of `core`'s contiguous static chunk of `trip`
/// iterations split over `team` cores.
pub fn static_chunk(trip: u64, team: usize, core: usize) -> (u64, u64) {
    let team = team as u64;
    let core = core as u64;
    let base = trip / team;
    let rem = trip % team;
    let start = core * base + core.min(rem);
    let len = base + u64::from(core < rem);
    (start, len)
}

fn contains_parallel(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::ParFor { .. } => true,
        Stmt::For { body, .. } | Stmt::Critical(body) => contains_parallel(body),
        _ => false,
    })
}

/// Returns `true` when `stmts` contain a DMA transfer anywhere.
pub fn contains_dma(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::DmaTransfer { .. } | Stmt::DmaWait => true,
        Stmt::For { body, .. } | Stmt::ParFor { body, .. } | Stmt::Critical(body) => {
            contains_dma(body)
        }
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::types::{DType, Suite};
    use pulp_sim::simulate;

    fn config() -> ClusterConfig {
        ClusterConfig::default()
    }

    fn vector_add(n: usize) -> Kernel {
        let mut b = KernelBuilder::new("vadd", Suite::Custom, DType::I32, n * 4);
        let a = b.array("a", n);
        let c = b.array("c", n);
        b.par_for(n as u64, |b, i| {
            b.load(a, i);
            b.compute(1);
            b.store(c, i);
        });
        b.build().expect("valid kernel")
    }

    #[test]
    fn static_chunk_partitions_exactly() {
        for trip in [0u64, 1, 7, 8, 9, 100] {
            for team in 1..=8usize {
                let mut total = 0;
                let mut next = 0;
                for core in 0..team {
                    let (start, len) = static_chunk(trip, team, core);
                    assert_eq!(start, next, "chunks must be contiguous");
                    next = start + len;
                    total += len;
                }
                assert_eq!(total, trip, "trip={trip} team={team}");
            }
        }
    }

    #[test]
    fn lower_rejects_bad_team() {
        let k = vector_add(16);
        assert!(matches!(
            lower(&k, 0, &config()),
            Err(LowerError::BadTeamSize { .. })
        ));
        assert!(matches!(
            lower(&k, 9, &config()),
            Err(LowerError::BadTeamSize { .. })
        ));
    }

    #[test]
    fn lowered_program_validates_and_runs() {
        let k = vector_add(64);
        for team in 1..=8 {
            let lowered = lower(&k, team, &config()).expect("lower");
            assert_eq!(lowered.program.num_cores(), team);
            let stats = simulate(&config(), &lowered.program).expect("simulate");
            // Each of the 64 iterations does 1 load + 1 store.
            assert_eq!(stats.l1_reads(), 64, "team={team}");
            assert_eq!(stats.l1_writes(), 64, "team={team}");
        }
    }

    #[test]
    fn work_is_conserved_across_team_sizes() {
        let k = vector_add(100);
        let ops1 = lower(&k, 1, &config())
            .expect("lower")
            .program
            .dynamic_op_count();
        let ops8 = lower(&k, 8, &config())
            .expect("lower")
            .program
            .dynamic_op_count();
        // Parallel lowering adds per-core prologue/loop overhead but the
        // payload work (3 ops per iteration) must be identical.
        let payload: u64 = 3 * 100;
        assert!(ops1 >= payload);
        assert!(ops8 >= payload);
        // Overhead stays within the runtime bookkeeping budget.
        assert!(
            ops8 - payload < 8 * 64,
            "excess overhead: {}",
            ops8 - payload
        );
    }

    #[test]
    fn addresses_cover_the_arrays_disjointly() {
        let n = 32;
        let k = vector_add(n);
        let lowered = lower(&k, 4, &config()).expect("lower");
        let base_a = lowered.layout.base(ArrayId(0));
        let base_c = lowered.layout.base(ArrayId(1));
        assert_eq!(
            base_c - base_a,
            (n * 4) as u32,
            "arrays packed back to back"
        );
    }

    #[test]
    fn parallel_speedup_visible_after_lowering() {
        let k = vector_add(512);
        let c1 = simulate(&config(), &lower(&k, 1, &config()).expect("lower").program)
            .expect("simulate")
            .cycles;
        let c8 = simulate(&config(), &lower(&k, 8, &config()).expect("lower").program)
            .expect("simulate")
            .cycles;
        assert!(c8 * 3 < c1, "expected speedup: 1 core {c1} vs 8 cores {c8}");
    }

    #[test]
    fn guided_chunks_partition_and_decay() {
        for (trip, team) in [(100u64, 4usize), (37, 3), (8, 8), (1, 2)] {
            let chunks = guided_chunks(trip, team, 1);
            let total: u64 = chunks.iter().map(|&(_, l)| l).sum();
            assert_eq!(total, trip, "trip={trip} team={team}");
            // Contiguous coverage.
            let mut next = 0;
            for &(s, l) in &chunks {
                assert_eq!(s, next);
                next = s + l;
            }
            // Non-increasing chunk sizes.
            for w in chunks.windows(2) {
                assert!(w[1].1 <= w[0].1, "guided chunks must decay: {chunks:?}");
            }
        }
    }

    #[test]
    fn guided_schedule_covers_all_iterations() {
        let n = 100usize;
        let mut b = KernelBuilder::new("guided", Suite::Custom, DType::I32, n * 4);
        let a = b.array("a", n);
        b.par_for_sched(n as u64, Schedule::Guided(2), |b, i| {
            b.store(a, i);
        });
        let k = b.build().expect("valid");
        for team in [1, 4, 8] {
            let lowered = lower(&k, team, &config()).expect("lower");
            let stats = simulate(&config(), &lowered.program).expect("simulate");
            assert_eq!(stats.l1_writes(), n as u64, "team={team}");
        }
    }

    #[test]
    fn chunked_schedule_covers_all_iterations() {
        let n = 37usize; // deliberately not a multiple of chunk * team
        let mut b = KernelBuilder::new("chunked", Suite::Custom, DType::I32, n * 4);
        let a = b.array("a", n);
        b.par_for_sched(n as u64, Schedule::Chunked(4), |b, i| {
            b.store(a, i);
        });
        let k = b.build().expect("valid");
        for team in [1, 3, 8] {
            let lowered = lower(&k, team, &config()).expect("lower");
            let stats = simulate(&config(), &lowered.program).expect("simulate");
            assert_eq!(stats.l1_writes(), n as u64, "team={team}");
        }
    }

    #[test]
    fn chunked_addresses_match_static_semantics() {
        // Store i at a[i]: collect addresses from both schedules; as a set
        // they must be identical.
        let n = 24usize;
        let build = |sched: Schedule| {
            let mut b = KernelBuilder::new("s", Suite::Custom, DType::I32, n * 4);
            let a = b.array("a", n);
            b.par_for_sched(n as u64, sched, |b, i| b.store(a, i));
            b.build().expect("valid")
        };
        let collect = |k: &Kernel| {
            use pulp_sim::{simulate_traced, TraceEvent, VecSink};
            let lowered = lower(k, 3, &config()).expect("lower");
            let mut sink = VecSink::new();
            simulate_traced(&config(), &lowered.program, 1_000_000, &mut sink).expect("simulate");
            let mut addrs: Vec<u32> = sink
                .events
                .iter()
                .filter_map(|(_, e)| match e {
                    TraceEvent::Insn {
                        kind: OpKind::Store,
                        addr,
                        ..
                    } => *addr,
                    _ => None,
                })
                .collect();
            addrs.sort_unstable();
            addrs
        };
        let a = collect(&build(Schedule::Static));
        let b = collect(&build(Schedule::Chunked(5)));
        assert_eq!(a, b);
        assert_eq!(a.len(), n);
    }

    #[test]
    fn sequential_sections_run_on_master_only() {
        let mut b = KernelBuilder::new("seq", Suite::Custom, DType::I32, 64);
        let a = b.array("a", 16);
        b.for_(16, |b, i| b.store(a, i)); // sequential init
        b.par_for(16, |b, i| {
            b.load(a, i);
        });
        let k = b.build().expect("valid");
        let lowered = lower(&k, 4, &config()).expect("lower");
        let stats = simulate(&config(), &lowered.program).expect("simulate");
        // Master did the 16 stores; loads spread across the team.
        assert!(stats.cores[0].l1_ops >= 16 + 4);
        assert!(stats.cores[1].l1_ops >= 1);
    }

    #[test]
    fn outer_time_loop_with_inner_region() {
        let mut b = KernelBuilder::new("iter", Suite::Custom, DType::I32, 64);
        let a = b.array("a", 16);
        b.for_(3, |b, _t| {
            b.par_for(16, |b, i| {
                b.load(a, i);
                b.store(a, i);
            });
        });
        let k = b.build().expect("valid");
        let lowered = lower(&k, 4, &config()).expect("lower");
        let stats = simulate(&config(), &lowered.program).expect("simulate");
        assert_eq!(stats.l1_reads(), 3 * 16);
        assert_eq!(stats.l1_writes(), 3 * 16);
        assert_eq!(stats.barriers, 3);
    }

    #[test]
    fn empty_chunks_still_synchronise() {
        // 2 iterations over 8 cores: 6 cores get nothing but must not hang.
        let mut b = KernelBuilder::new("tiny", Suite::Custom, DType::I32, 8);
        let a = b.array("a", 2);
        b.par_for(2, |b, i| b.store(a, i));
        let k = b.build().expect("valid");
        let lowered = lower(&k, 8, &config()).expect("lower");
        let stats = simulate(&config(), &lowered.program).expect("simulate");
        assert_eq!(stats.l1_writes(), 2);
    }
}

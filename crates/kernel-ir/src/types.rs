//! Basic kernel types: data types, benchmark suites, loop schedules.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element data type a kernel is instantiated with.
///
/// The paper's dataset considers 32-bit integers and 32-bit single-precision
/// floats (PULP's cores have no double-precision support).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit signed integer.
    I32,
    /// 32-bit IEEE-754 single-precision float.
    F32,
}

impl DType {
    /// Element size in bytes (both supported types are 32-bit).
    pub const fn bytes(self) -> usize {
        4
    }

    /// All data types in dataset enumeration order.
    pub const ALL: [DType; 2] = [DType::I32, DType::F32];
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DType::I32 => "i32",
            DType::F32 => "f32",
        })
    }
}

/// Benchmark suite a kernel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// Polyhedral-compilation benchmarks.
    Polybench,
    /// DSP-oriented kernels.
    Utdsp,
    /// Hand-written kernels stressing memory, compute and synchronisation.
    Custom,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Suite::Polybench => "polybench",
            Suite::Utdsp => "utdsp",
            Suite::Custom => "custom",
        })
    }
}

/// OpenMP loop schedule for parallel regions.
///
/// PULP's OpenMP runtime implements a limited subset of the standard's
/// scheduling policies; following the paper we support static contiguous
/// chunking and round-robin chunked scheduling (the closest static
/// approximation of `schedule(dynamic, k)` on a platform without tasking).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Schedule {
    /// Contiguous block per core (`schedule(static)`).
    #[default]
    Static,
    /// Round-robin chunks of the given size (`schedule(static, k)`).
    Chunked(usize),
    /// Guided self-scheduling approximated statically: chunk sizes decay
    /// geometrically (`remaining / (2 · team)`, floored at the given
    /// minimum), assigned round-robin. The closest static model of
    /// `schedule(guided, k)` on a runtime without tasking.
    Guided(usize),
}

/// Memory level an array is allocated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemLevel {
    /// On-cluster tightly-coupled data memory (single-cycle).
    Tcdm,
    /// Off-cluster L2 scratchpad (15-cycle latency).
    L2,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::I32.bytes(), 4);
        assert_eq!(DType::F32.bytes(), 4);
    }

    #[test]
    fn display_forms() {
        assert_eq!(DType::F32.to_string(), "f32");
        assert_eq!(Suite::Polybench.to_string(), "polybench");
    }

    #[test]
    fn default_schedule_is_static() {
        assert_eq!(Schedule::default(), Schedule::Static);
    }
}

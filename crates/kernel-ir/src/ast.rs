//! Kernel abstract syntax tree.
//!
//! A [`Kernel`] is the IR-level equivalent of one C/OpenMP benchmark
//! function: array declarations plus a statement tree of loops, parallel
//! regions, typed memory accesses and compute bursts. It carries exactly
//! the information the paper's tooling reads off LLVM-IR: opcode classes,
//! memory access targets, loop structure and parallel-region trip counts.

use crate::expr::{Idx, LoopVar};
use crate::types::{DType, MemLevel, Schedule, Suite};
use serde::{Deserialize, Serialize};

/// Handle to a declared array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayId(pub(crate) u32);

impl ArrayId {
    /// The kernel-unique id of this array.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Creates an id from a raw index, for tests and tooling that walk
    /// [`Kernel::arrays`] positionally.
    pub fn for_tests(id: u32) -> Self {
        Self(id)
    }
}

/// An array declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayDecl {
    /// Human-readable name (used in diagnostics).
    pub name: String,
    /// Length in elements (elements are 4 bytes for both supported types).
    pub len: usize,
    /// Memory level the array lives in.
    pub level: MemLevel,
}

impl ArrayDecl {
    /// Size of the array in bytes.
    pub fn bytes(&self) -> usize {
        self.len * 4
    }
}

/// One IR statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// Sequential counted loop.
    For {
        /// Induction variable bound by this loop.
        var: LoopVar,
        /// Trip count.
        trip: u64,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// OpenMP `parallel for` region.
    ParFor {
        /// Induction variable bound by this loop.
        var: LoopVar,
        /// Total iteration count (split across the team).
        trip: u64,
        /// Work schedule.
        sched: Schedule,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Load one element of `arr` at `idx`.
    Load {
        /// Source array.
        arr: ArrayId,
        /// Element index expression.
        idx: Idx,
    },
    /// Store one element of `arr` at `idx`.
    Store {
        /// Destination array.
        arr: ArrayId,
        /// Element index expression.
        idx: Idx,
    },
    /// `n` integer ALU operations.
    Alu(u32),
    /// `n` integer multiplies.
    Mul(u32),
    /// `n` integer divides.
    Div(u32),
    /// `n` floating-point add/mul operations.
    Fp(u32),
    /// `n` floating-point divides.
    FpDiv(u32),
    /// `n` explicit active-wait cycles.
    Nop(u32),
    /// Cluster-wide barrier (top level only).
    Barrier,
    /// Critical section (serialised across the team).
    Critical(Vec<Stmt>),
    /// DMA transfer between an L2 array and a TCDM array (sequential
    /// context only; the paper's future-work memory-hierarchy model).
    DmaTransfer {
        /// L2-side array.
        l2: ArrayId,
        /// TCDM-side array.
        tcdm: ArrayId,
        /// 32-bit words to move.
        words: u64,
        /// `true` for L2 → TCDM.
        inbound: bool,
        /// `true` blocks the master until the transfer completes;
        /// `false` programs the engine and continues (pair with
        /// [`Stmt::DmaWait`] for double buffering).
        blocking: bool,
    },
    /// Wait for all outstanding asynchronous DMA transfers.
    DmaWait,
}

/// A complete kernel: metadata, arrays and body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel name, e.g. `"gemm"`.
    pub name: String,
    /// Originating benchmark suite.
    pub suite: Suite,
    /// Data type this instance manipulates.
    pub dtype: DType,
    /// Payload size in bytes this instance was generated for (the
    /// `transfer` RAW feature).
    pub payload_bytes: usize,
    /// Declared arrays, indexed by [`ArrayId`].
    pub arrays: Vec<ArrayDecl>,
    /// Statement tree.
    pub body: Vec<Stmt>,
}

impl Kernel {
    /// Declared array storage in bytes, per memory level.
    pub fn footprint(&self, level: MemLevel) -> usize {
        self.arrays
            .iter()
            .filter(|a| a.level == level)
            .map(ArrayDecl::bytes)
            .sum()
    }

    /// Returns the declaration of `arr`.
    ///
    /// # Panics
    ///
    /// Panics if `arr` does not belong to this kernel.
    pub fn array(&self, arr: ArrayId) -> &ArrayDecl {
        &self.arrays[arr.0 as usize]
    }

    /// Visits every statement in the tree, depth first.
    pub fn visit(&self, mut f: impl FnMut(&Stmt)) {
        fn walk(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
            for s in stmts {
                f(s);
                match s {
                    Stmt::For { body, .. } | Stmt::ParFor { body, .. } | Stmt::Critical(body) => {
                        walk(body, f)
                    }
                    _ => {}
                }
            }
        }
        walk(&self.body, &mut f);
    }

    /// Unique sample identifier `suite/name/dtype/payload`.
    pub fn sample_id(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.suite, self.name, self.dtype, self.payload_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_kernel() -> Kernel {
        Kernel {
            name: "t".into(),
            suite: Suite::Custom,
            dtype: DType::I32,
            payload_bytes: 64,
            arrays: vec![
                ArrayDecl {
                    name: "a".into(),
                    len: 16,
                    level: MemLevel::Tcdm,
                },
                ArrayDecl {
                    name: "b".into(),
                    len: 8,
                    level: MemLevel::L2,
                },
            ],
            body: vec![Stmt::ParFor {
                var: LoopVar(0),
                trip: 16,
                sched: Schedule::Static,
                body: vec![
                    Stmt::Alu(2),
                    Stmt::Load {
                        arr: ArrayId(0),
                        idx: Idx::zero(),
                    },
                ],
            }],
        }
    }

    #[test]
    fn footprint_separates_levels() {
        let k = tiny_kernel();
        assert_eq!(k.footprint(MemLevel::Tcdm), 64);
        assert_eq!(k.footprint(MemLevel::L2), 32);
    }

    #[test]
    fn visit_reaches_nested_statements() {
        let k = tiny_kernel();
        let mut n = 0;
        k.visit(|_| n += 1);
        assert_eq!(n, 3); // ParFor + Alu + Load
    }

    #[test]
    fn sample_id_is_fully_qualified() {
        assert_eq!(tiny_kernel().sample_id(), "custom/t/i32/64");
    }
}

//! Affine index expressions over loop variables.
//!
//! Array indices in the kernel IR are affine combinations of enclosing loop
//! induction variables: `Σ coeff_v · v + constant`. Operator overloading
//! makes kernel sources read naturally:
//!
//! ```
//! use kernel_ir::expr::{Idx, LoopVar};
//!
//! let i = LoopVar::for_tests(0);
//! let j = LoopVar::for_tests(1);
//! let idx: Idx = i * 8 + j + 1; // A[i][j+1] of an 8-wide matrix
//! assert_eq!(idx.coeff(i), 8);
//! assert_eq!(idx.coeff(j), 1);
//! assert_eq!(idx.constant(), 1);
//! ```

use serde::{Deserialize, Serialize};
use std::ops::{Add, Mul, Neg, Sub};

/// An opaque loop induction variable handle.
///
/// Loop variables are created by the kernel builder when opening loops; the
/// numeric id is unique within one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LoopVar(pub(crate) u32);

impl LoopVar {
    /// Creates a loop variable with an explicit id, for unit tests only.
    pub fn for_tests(id: u32) -> Self {
        Self(id)
    }

    /// The kernel-unique id of this variable.
    pub fn id(self) -> u32 {
        self.0
    }
}

/// An affine index expression `Σ coeff_v · v + constant` (element units).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Idx {
    terms: Vec<(LoopVar, i64)>,
    constant: i64,
}

impl Idx {
    /// The zero index.
    pub fn zero() -> Self {
        Self {
            terms: Vec::new(),
            constant: 0,
        }
    }

    /// A constant index.
    pub fn constant_of(c: i64) -> Self {
        Self {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// The constant part of the expression.
    pub fn constant(&self) -> i64 {
        self.constant
    }

    /// The coefficient of `v` (zero if `v` does not appear).
    pub fn coeff(&self, v: LoopVar) -> i64 {
        self.terms
            .iter()
            .find(|(t, _)| *t == v)
            .map_or(0, |(_, c)| *c)
    }

    /// Iterates over the `(variable, coefficient)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (LoopVar, i64)> + '_ {
        self.terms.iter().copied()
    }

    /// All loop variables referenced with a non-zero coefficient.
    pub fn vars(&self) -> impl Iterator<Item = LoopVar> + '_ {
        self.terms.iter().map(|(v, _)| *v)
    }

    fn add_term(&mut self, v: LoopVar, c: i64) {
        if c == 0 {
            return;
        }
        if let Some(slot) = self.terms.iter_mut().find(|(t, _)| *t == v) {
            slot.1 += c;
            if slot.1 == 0 {
                self.terms.retain(|(_, c)| *c != 0);
            }
        } else {
            self.terms.push((v, c));
        }
    }

    /// Rewrites every occurrence of `var` as `scale · new_var + offset`
    /// (or just `offset` when `new_var` is `None`). Used by loop
    /// transformations such as unrolling.
    pub fn replace_var_affine(
        &self,
        var: LoopVar,
        new_var: Option<LoopVar>,
        scale: i64,
        offset: i64,
    ) -> Idx {
        let mut out = Idx {
            terms: Vec::new(),
            constant: self.constant,
        };
        for (v, c) in self.terms() {
            if v == var {
                out.constant += c * offset;
                if let Some(nv) = new_var {
                    out.add_term(nv, c * scale);
                }
            } else {
                out.add_term(v, c);
            }
        }
        out
    }

    /// Evaluates the expression with a lookup for variable values.
    ///
    /// Used by validation (interval analysis) and by tests; lowering instead
    /// translates the expression into the simulator's [`pulp_sim::AddrExpr`].
    pub fn eval(&self, lookup: impl Fn(LoopVar) -> i64) -> i64 {
        self.constant + self.terms.iter().map(|&(v, c)| c * lookup(v)).sum::<i64>()
    }
}

impl Default for Idx {
    fn default() -> Self {
        Self::zero()
    }
}

impl From<LoopVar> for Idx {
    fn from(v: LoopVar) -> Self {
        Self {
            terms: vec![(v, 1)],
            constant: 0,
        }
    }
}

impl From<usize> for Idx {
    fn from(c: usize) -> Self {
        Self::constant_of(c as i64)
    }
}

impl From<i64> for Idx {
    fn from(c: i64) -> Self {
        Self::constant_of(c)
    }
}

impl From<i32> for Idx {
    fn from(c: i32) -> Self {
        Self::constant_of(i64::from(c))
    }
}

impl Add for Idx {
    type Output = Idx;
    fn add(mut self, rhs: Idx) -> Idx {
        self.constant += rhs.constant;
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self
    }
}

impl Add<LoopVar> for Idx {
    type Output = Idx;
    fn add(mut self, rhs: LoopVar) -> Idx {
        self.add_term(rhs, 1);
        self
    }
}

impl Add<usize> for Idx {
    type Output = Idx;
    fn add(mut self, rhs: usize) -> Idx {
        self.constant += rhs as i64;
        self
    }
}

impl Sub<usize> for Idx {
    type Output = Idx;
    fn sub(mut self, rhs: usize) -> Idx {
        self.constant -= rhs as i64;
        self
    }
}

impl Mul<usize> for Idx {
    type Output = Idx;
    fn mul(mut self, rhs: usize) -> Idx {
        let k = rhs as i64;
        self.constant *= k;
        for t in &mut self.terms {
            t.1 *= k;
        }
        self.terms.retain(|(_, c)| *c != 0);
        self
    }
}

impl Neg for Idx {
    type Output = Idx;
    fn neg(mut self) -> Idx {
        self.constant = -self.constant;
        for t in &mut self.terms {
            t.1 = -t.1;
        }
        self
    }
}

impl Sub<LoopVar> for Idx {
    type Output = Idx;
    fn sub(mut self, rhs: LoopVar) -> Idx {
        self.add_term(rhs, -1);
        self
    }
}

impl Sub<Idx> for Idx {
    type Output = Idx;
    fn sub(self, rhs: Idx) -> Idx {
        self + (-rhs)
    }
}

impl Neg for LoopVar {
    type Output = Idx;
    fn neg(self) -> Idx {
        -Idx::from(self)
    }
}

impl Add<LoopVar> for LoopVar {
    type Output = Idx;
    fn add(self, rhs: LoopVar) -> Idx {
        Idx::from(self) + rhs
    }
}

impl Add<usize> for LoopVar {
    type Output = Idx;
    fn add(self, rhs: usize) -> Idx {
        Idx::from(self) + rhs
    }
}

impl Sub<usize> for LoopVar {
    type Output = Idx;
    fn sub(self, rhs: usize) -> Idx {
        Idx::from(self) - rhs
    }
}

impl Add<Idx> for LoopVar {
    type Output = Idx;
    fn add(self, rhs: Idx) -> Idx {
        Idx::from(self) + rhs
    }
}

impl Mul<usize> for LoopVar {
    type Output = Idx;
    fn mul(self, rhs: usize) -> Idx {
        Idx::from(self) * rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> LoopVar {
        LoopVar::for_tests(id)
    }

    #[test]
    fn builds_row_major_index() {
        let (i, j) = (v(0), v(1));
        let idx = i * 16 + j;
        assert_eq!(idx.coeff(i), 16);
        assert_eq!(idx.coeff(j), 1);
        assert_eq!(idx.constant(), 0);
    }

    #[test]
    fn merges_duplicate_terms() {
        let i = v(0);
        let idx = i * 3 + i; // 4*i
        assert_eq!(idx.coeff(i), 4);
        assert_eq!(idx.terms().count(), 1);
    }

    #[test]
    fn cancelling_terms_disappear() {
        let i = v(0);
        let zero = usize::from(false);
        let idx = (i * 2 + Idx::zero()) + (Idx::from(i) * zero);
        assert_eq!(idx.coeff(i), 2);
        let neg = Idx {
            terms: vec![(i, -2)],
            constant: 0,
        };
        let sum = idx + neg;
        assert_eq!(sum.coeff(i), 0);
        assert_eq!(sum.terms().count(), 0);
    }

    #[test]
    fn scaling_distributes() {
        let (i, j) = (v(0), v(1));
        let idx = (i + j + 5usize) * 4;
        assert_eq!(idx.coeff(i), 4);
        assert_eq!(idx.coeff(j), 4);
        assert_eq!(idx.constant(), 20);
    }

    #[test]
    fn eval_substitutes() {
        let (i, j) = (v(0), v(1));
        let idx = i * 8 + j + 2usize;
        let val = idx.eval(|var| if var == i { 3 } else { 5 });
        assert_eq!(val, 8 * 3 + 5 + 2);
    }

    #[test]
    fn replace_var_affine_rewrites_terms() {
        let (i, j, u) = (v(0), v(1), v(9));
        let idx = i * 8 + j + 2usize;
        // i -> 4u + 3: coefficient 8 becomes 32 on u, constant gains 24.
        let out = idx.replace_var_affine(i, Some(u), 4, 3);
        assert_eq!(out.coeff(u), 32);
        assert_eq!(out.coeff(j), 1);
        assert_eq!(out.coeff(i), 0);
        assert_eq!(out.constant(), 2 + 24);
        // i -> constant 5.
        let fixed = idx.replace_var_affine(i, None, 0, 5);
        assert_eq!(fixed.coeff(i), 0);
        assert_eq!(fixed.constant(), 2 + 40);
    }

    #[test]
    fn subtraction_of_constants() {
        let i = v(0);
        let idx = i - 1;
        assert_eq!(idx.constant(), -1);
        assert_eq!(idx.coeff(i), 1);
    }
}

//! Simulation-based labelling — steps (B)–(E) of the paper's workflow.
//!
//! Each dataset sample is simulated with every team size from 1 to 8; the
//! Table-I energy model assigns each run an energy; the arg-min team size
//! becomes the sample's class label.

use kernel_ir::{lower, Kernel, LowerError};
use pulp_energy_model::{energy_of, DynamicFeatures, EnergyModel};
use pulp_obs::Recorder;
use pulp_sim::{simulate, ClusterConfig, SimError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of classes (team sizes 1..=8 on the paper's cluster).
pub const NUM_CLASSES: usize = 8;

/// Errors produced while measuring a sample.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureError {
    /// Lowering failed.
    Lower(LowerError),
    /// Simulation failed.
    Sim(SimError),
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lower(e) => write!(f, "lowering failed: {e}"),
            Self::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for MeasureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Lower(e) => Some(e),
            Self::Sim(e) => Some(e),
        }
    }
}

impl From<LowerError> for MeasureError {
    fn from(e: LowerError) -> Self {
        Self::Lower(e)
    }
}

impl From<SimError> for MeasureError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

/// Energy measurements of one kernel across all team sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyProfile {
    /// Total energy (fJ) per team size; index `t` = `t + 1` cores.
    pub energy: [f64; NUM_CLASSES],
    /// Kernel cycles per team size.
    pub cycles: [u64; NUM_CLASSES],
    /// Table-III dynamic features per team size.
    pub dynamic: Vec<DynamicFeatures>,
}

impl EnergyProfile {
    /// The minimum-energy class (0-based; class `c` means `c + 1` cores).
    pub fn label(&self) -> usize {
        self.energy
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite energies"))
            .map(|(i, _)| i)
            .expect("non-empty energies")
    }

    /// Fractional energy wasted by running with class `c` instead of the
    /// optimum.
    pub fn waste(&self, c: usize) -> f64 {
        let min = self.energy[self.label()];
        (self.energy[c] - min) / min
    }

    /// Parallel speed-up of class `c` relative to one core.
    pub fn speedup(&self, c: usize) -> f64 {
        self.cycles[0] as f64 / self.cycles[c] as f64
    }
}

/// Simulates `kernel` at every team size and assembles its energy profile.
///
/// # Errors
///
/// Propagates lowering or simulation failures (neither is expected for
/// validated dataset kernels).
pub fn measure_kernel(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
) -> Result<EnergyProfile, MeasureError> {
    let mut energy = [0.0; NUM_CLASSES];
    let mut cycles = [0u64; NUM_CLASSES];
    let mut dynamic = Vec::with_capacity(NUM_CLASSES);
    for team in 1..=NUM_CLASSES.min(config.num_cores) {
        let lowered = lower(kernel, team, config)?;
        let stats = simulate(config, &lowered.program)?;
        energy[team - 1] = energy_of(&stats, model, config).total();
        cycles[team - 1] = stats.cycles;
        dynamic.push(DynamicFeatures::extract(&stats));
    }
    Ok(EnergyProfile {
        energy,
        cycles,
        dynamic,
    })
}

/// [`measure_kernel`] with stage telemetry: each team-size simulation gets
/// a `simulate` span annotated with its cycle count and energy.
///
/// # Errors
///
/// See [`measure_kernel`].
pub fn measure_kernel_instrumented(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
    rec: &mut Recorder,
) -> Result<EnergyProfile, MeasureError> {
    let mut energy = [0.0; NUM_CLASSES];
    let mut cycles = [0u64; NUM_CLASSES];
    let mut dynamic = Vec::with_capacity(NUM_CLASSES);
    for team in 1..=NUM_CLASSES.min(config.num_cores) {
        let span = rec.start_cat(&format!("simulate t{team}"), "simulate");
        let result = (|| -> Result<_, MeasureError> {
            let lowered = lower(kernel, team, config)?;
            let stats = simulate(config, &lowered.program)?;
            Ok(stats)
        })();
        let stats = match result {
            Ok(stats) => stats,
            Err(e) => {
                rec.annotate(span, "error", &e);
                rec.end(span);
                return Err(e);
            }
        };
        let fj = energy_of(&stats, model, config).total();
        rec.annotate(span, "cycles", stats.cycles);
        rec.annotate(span, "energy_uj", format!("{:.4}", fj * 1e-9));
        rec.end(span);
        energy[team - 1] = fj;
        cycles[team - 1] = stats.cycles;
        dynamic.push(DynamicFeatures::extract(&stats));
    }
    Ok(EnergyProfile {
        energy,
        cycles,
        dynamic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::{DType, KernelBuilder, Suite};

    fn measure(kernel: &Kernel) -> EnergyProfile {
        measure_kernel(kernel, &ClusterConfig::default(), &EnergyModel::table1()).expect("measure")
    }

    fn compute_kernel(n: usize) -> Kernel {
        let mut b = KernelBuilder::new("c", Suite::Custom, DType::I32, n * 4);
        let x = b.array("x", n);
        b.par_for(n as u64, |b, i| {
            b.load(x, i);
            b.alu(16);
            b.store(x, i);
        });
        b.build().expect("valid")
    }

    #[test]
    fn profile_has_all_team_sizes() {
        let p = measure(&compute_kernel(256));
        assert!(p.energy.iter().all(|&e| e > 0.0));
        assert!(p.cycles.iter().all(|&c| c > 0));
        assert_eq!(p.dynamic.len(), 8);
    }

    #[test]
    fn scalable_compute_prefers_many_cores() {
        let p = measure(&compute_kernel(2048));
        assert!(
            p.label() >= 5,
            "dense compute should favour large teams, got {} cores (energies {:?})",
            p.label() + 1,
            p.energy
        );
        assert!(p.speedup(7) > 4.0, "speed-up at 8 cores: {}", p.speedup(7));
    }

    #[test]
    fn serialised_kernel_prefers_few_cores() {
        // Critical section around every iteration: no parallel benefit.
        let n = 512usize;
        let mut b = KernelBuilder::new("ser", Suite::Custom, DType::I32, n * 4);
        let x = b.array("x", n);
        let acc = b.array("acc", 4);
        b.par_for(n as u64, |b, i| {
            b.load(x, i);
            b.critical(|b| {
                b.load(acc, 0);
                b.alu(4);
                b.store(acc, 0);
            });
        });
        let k = b.build().expect("valid");
        let p = measure(&k);
        assert!(
            p.label() <= 2,
            "serialised kernel should favour small teams, got {} cores (energies {:?})",
            p.label() + 1,
            p.energy
        );
    }

    #[test]
    fn waste_is_zero_at_the_label() {
        let p = measure(&compute_kernel(512));
        assert_eq!(p.waste(p.label()), 0.0);
        for c in 0..NUM_CLASSES {
            assert!(p.waste(c) >= 0.0);
        }
    }
}

//! Simulation-based labelling — steps (B)–(E) of the paper's workflow.
//!
//! Each dataset sample is simulated with every team size from 1 to 8; the
//! Table-I energy model assigns each run an energy; the arg-min team size
//! becomes the sample's class label.

use crate::cache::SweepCache;
use kernel_ir::{lower, Kernel, LowerError};
use pulp_energy_model::{energy_of, DynamicFeatures, EnergyModel, EnergySummary};
use pulp_obs::Recorder;
use pulp_sim::{
    simulate_opts, ClusterConfig, NoTelemetry, NullSink, SimError, SimOptions, SimScratch,
    DEFAULT_MAX_CYCLES,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of classes (team sizes 1..=8 on the paper's cluster).
pub const NUM_CLASSES: usize = 8;

/// Errors produced while measuring a sample.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureError {
    /// Lowering failed.
    Lower(LowerError),
    /// Simulation failed.
    Sim(SimError),
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lower(e) => write!(f, "lowering failed: {e}"),
            Self::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for MeasureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Lower(e) => Some(e),
            Self::Sim(e) => Some(e),
        }
    }
}

impl From<LowerError> for MeasureError {
    fn from(e: LowerError) -> Self {
        Self::Lower(e)
    }
}

impl From<SimError> for MeasureError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

/// Energy measurements of one kernel across all team sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyProfile {
    /// Total energy (fJ) per team size; index `t` = `t + 1` cores.
    pub energy: [f64; NUM_CLASSES],
    /// Kernel cycles per team size.
    pub cycles: [u64; NUM_CLASSES],
    /// Table-III dynamic features per team size.
    pub dynamic: Vec<DynamicFeatures>,
}

impl EnergyProfile {
    /// The minimum-energy class (0-based; class `c` means `c + 1` cores).
    ///
    /// Non-finite energies (NaN/∞ from a degenerate energy model, e.g.
    /// during ablation sweeps) are skipped with a warning instead of
    /// panicking the whole dataset build. Ties are broken deterministically
    /// in favour of the **fewest cores** — the cheaper configuration when
    /// energies are equal. If *no* energy is finite the profile degrades to
    /// class 0 (one core), again with a warning.
    pub fn label(&self) -> usize {
        let mut best: Option<(usize, f64)> = None;
        let mut skipped = 0usize;
        for (i, &e) in self.energy.iter().enumerate() {
            if !e.is_finite() {
                skipped += 1;
                continue;
            }
            // Strict `<` keeps the earlier (fewest-cores) index on ties.
            if best.is_none_or(|(_, b)| e < b) {
                best = Some((i, e));
            }
        }
        if skipped > 0 {
            eprintln!("[labeling] warning: {skipped} non-finite energies skipped in arg-min");
        }
        match best {
            Some((i, _)) => i,
            None => {
                eprintln!("[labeling] warning: no finite energy in profile; defaulting to class 0");
                0
            }
        }
    }

    /// Fractional energy wasted by running with class `c` instead of the
    /// optimum.
    pub fn waste(&self, c: usize) -> f64 {
        let min = self.energy[self.label()];
        (self.energy[c] - min) / min
    }

    /// Parallel speed-up of class `c` relative to one core.
    pub fn speedup(&self, c: usize) -> f64 {
        self.cycles[0] as f64 / self.cycles[c] as f64
    }

    /// The profile as per-core-count [`EnergySummary`] rows — the sweep
    /// cache's value type. Only the team sizes actually measured (one per
    /// [`DynamicFeatures`] entry) are emitted.
    pub fn summaries(&self) -> Vec<EnergySummary> {
        self.dynamic
            .iter()
            .enumerate()
            .map(|(t, dynamic)| EnergySummary {
                cores: t + 1,
                energy_fj: self.energy[t],
                cycles: self.cycles[t],
                dynamic: *dynamic,
            })
            .collect()
    }

    /// Reassembles a profile from cached [`EnergySummary`] rows
    /// (the inverse of [`summaries`](Self::summaries)).
    pub fn from_summaries(summaries: &[EnergySummary]) -> Self {
        let mut energy = [0.0; NUM_CLASSES];
        let mut cycles = [0u64; NUM_CLASSES];
        let mut dynamic = Vec::with_capacity(summaries.len());
        for s in summaries {
            energy[s.cores - 1] = s.energy_fj;
            cycles[s.cores - 1] = s.cycles;
            dynamic.push(s.dynamic);
        }
        Self {
            energy,
            cycles,
            dynamic,
        }
    }
}

/// Simulates `kernel` at every team size and assembles its energy profile.
///
/// # Errors
///
/// Propagates lowering or simulation failures (neither is expected for
/// validated dataset kernels).
pub fn measure_kernel(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
) -> Result<EnergyProfile, MeasureError> {
    measure_kernel_budgeted(kernel, config, model, DEFAULT_MAX_CYCLES)
}

/// [`measure_kernel`] with an explicit per-run cycle budget
/// (`--max-cycles` on the dataset binaries).
///
/// The 8 per-team-size simulations share one [`SimScratch`], so the sweep
/// allocates its per-core state vectors once instead of once per run.
///
/// # Errors
///
/// See [`measure_kernel`]; additionally fails with
/// [`pulp_sim::SimError::CycleLimit`] when a run exceeds `max_cycles`.
pub fn measure_kernel_budgeted(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
    max_cycles: u64,
) -> Result<EnergyProfile, MeasureError> {
    measure_kernel_scratch(kernel, config, model, max_cycles, &mut SimScratch::new())
}

/// [`measure_kernel_budgeted`] with a caller-provided [`SimScratch`].
///
/// The sharded sweep driver ([`measure_kernels_sharded`]) hands each worker
/// thread one scratch that is reused across *all* its kernels and team
/// sizes, so a multi-thousand-sample labelling run performs a handful of
/// scratch allocations instead of one per sample.
///
/// # Errors
///
/// See [`measure_kernel_budgeted`].
pub fn measure_kernel_scratch(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
    max_cycles: u64,
    scratch: &mut SimScratch,
) -> Result<EnergyProfile, MeasureError> {
    let mut energy = [0.0; NUM_CLASSES];
    let mut cycles = [0u64; NUM_CLASSES];
    let mut dynamic = Vec::with_capacity(NUM_CLASSES);
    let opts = SimOptions::default().with_max_cycles(max_cycles);
    for team in 1..=NUM_CLASSES.min(config.num_cores) {
        let lowered = lower(kernel, team, config)?;
        let stats = simulate_opts(
            config,
            &lowered.program,
            &opts,
            &mut NullSink,
            &mut NoTelemetry,
            scratch,
        )?;
        energy[team - 1] = energy_of(&stats, model, config).total();
        cycles[team - 1] = stats.cycles;
        dynamic.push(DynamicFeatures::extract(&stats));
    }
    Ok(EnergyProfile {
        energy,
        cycles,
        dynamic,
    })
}

/// [`measure_kernel`] with stage telemetry: each team-size simulation gets
/// a `simulate` span annotated with its cycle count and energy.
///
/// # Errors
///
/// See [`measure_kernel`].
pub fn measure_kernel_instrumented(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
    max_cycles: u64,
    rec: &mut Recorder,
) -> Result<EnergyProfile, MeasureError> {
    measure_kernel_instrumented_scratch(
        kernel,
        config,
        model,
        max_cycles,
        rec,
        &mut SimScratch::new(),
    )
}

/// [`measure_kernel_instrumented`] with a caller-provided [`SimScratch`]
/// (see [`measure_kernel_scratch`] for why sweeps thread one through).
///
/// # Errors
///
/// See [`measure_kernel`].
pub fn measure_kernel_instrumented_scratch(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
    max_cycles: u64,
    rec: &mut Recorder,
    scratch: &mut SimScratch,
) -> Result<EnergyProfile, MeasureError> {
    let mut energy = [0.0; NUM_CLASSES];
    let mut cycles = [0u64; NUM_CLASSES];
    let mut dynamic = Vec::with_capacity(NUM_CLASSES);
    let opts = SimOptions::default().with_max_cycles(max_cycles);
    for team in 1..=NUM_CLASSES.min(config.num_cores) {
        let span = rec.start_cat(&format!("simulate t{team}"), "simulate");
        let result = (|| -> Result<_, MeasureError> {
            let lowered = lower(kernel, team, config)?;
            let stats = simulate_opts(
                config,
                &lowered.program,
                &opts,
                &mut NullSink,
                &mut NoTelemetry,
                scratch,
            )?;
            Ok(stats)
        })();
        let stats = match result {
            Ok(stats) => stats,
            Err(e) => {
                rec.annotate(span, "error", &e);
                rec.end(span);
                return Err(e);
            }
        };
        let fj = energy_of(&stats, model, config).total();
        rec.annotate(span, "cycles", stats.cycles);
        rec.annotate(span, "energy_uj", format!("{:.4}", fj * 1e-9));
        rec.end(span);
        energy[team - 1] = fj;
        cycles[team - 1] = stats.cycles;
        dynamic.push(DynamicFeatures::extract(&stats));
    }
    Ok(EnergyProfile {
        energy,
        cycles,
        dynamic,
    })
}

/// [`measure_kernel_instrumented`] behind the content-addressed sweep
/// cache: a valid cached sweep short-circuits all 1..=8 simulator
/// invocations; a miss (or stale/corrupt entry) recomputes and stores the
/// fresh sweep atomically.
///
/// # Errors
///
/// See [`measure_kernel`]. Cache I/O never fails the measurement — a bad
/// entry simply falls back to recomputing.
pub fn measure_kernel_cached(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
    max_cycles: u64,
    cache: &SweepCache,
    rec: &mut Recorder,
) -> Result<EnergyProfile, MeasureError> {
    measure_kernel_cached_scratch(
        kernel,
        config,
        model,
        max_cycles,
        cache,
        rec,
        &mut SimScratch::new(),
    )
}

/// [`measure_kernel_cached`] with a caller-provided [`SimScratch`]
/// (see [`measure_kernel_scratch`]; the scratch is only touched on a miss).
///
/// # Errors
///
/// See [`measure_kernel`].
pub fn measure_kernel_cached_scratch(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
    max_cycles: u64,
    cache: &SweepCache,
    rec: &mut Recorder,
    scratch: &mut SimScratch,
) -> Result<EnergyProfile, MeasureError> {
    let sample = kernel.sample_id();
    let key = cache.key(&sample, config, model);
    let expected_teams = NUM_CLASSES.min(config.num_cores);
    if let Some(summaries) = cache.lookup(&key) {
        let shape_ok = summaries.len() == expected_teams
            && summaries.iter().enumerate().all(|(i, s)| s.cores == i + 1);
        if shape_ok {
            let span = rec.start_cat(&format!("cache hit {sample}"), "cache");
            rec.end(span);
            return Ok(EnergyProfile::from_summaries(&summaries));
        }
        // A hash collision or foreign entry of the wrong shape: ignore it
        // and recompute (the store below overwrites it).
    }
    let profile =
        measure_kernel_instrumented_scratch(kernel, config, model, max_cycles, rec, scratch)?;
    cache.store(&key, &profile.summaries());
    Ok(profile)
}

/// Sweeps a batch of independent kernels across a scoped worker pool.
///
/// Labelling is embarrassingly parallel per sample: each kernel's 1..=8
/// team-size sweep touches no shared state. Workers claim kernels by
/// round-robin striding (worker `t` measures indices `t, t + threads, ...`),
/// each reusing one [`SimScratch`] across every run it performs, and the
/// profiles land in input order — the result is **bit-identical to
/// sequential measurement at any thread count**, which the unit tests pin
/// at 1/2/8 threads.
///
/// `threads == 0` uses all available cores; the count is clamped to the
/// batch size.
///
/// # Errors
///
/// If any kernels fail, returns the error of the **lowest-indexed** failing
/// kernel (independent of thread interleaving), as sequential measurement
/// would.
pub fn measure_kernels_sharded(
    kernels: &[Kernel],
    config: &ClusterConfig,
    model: &EnergyModel,
    max_cycles: u64,
    threads: usize,
) -> Result<Vec<EnergyProfile>, MeasureError> {
    if kernels.is_empty() {
        return Ok(Vec::new());
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
    .min(kernels.len());
    if threads == 1 {
        let mut scratch = SimScratch::new();
        return kernels
            .iter()
            .map(|k| measure_kernel_scratch(k, config, model, max_cycles, &mut scratch))
            .collect();
    }

    let mut profiles: Vec<Option<EnergyProfile>> = vec![None; kernels.len()];
    let mut first_error: Option<(usize, MeasureError)> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            handles.push(scope.spawn(move || {
                let mut scratch = SimScratch::new();
                let mut out = Vec::new();
                let mut i = t;
                while i < kernels.len() {
                    out.push((
                        i,
                        measure_kernel_scratch(
                            &kernels[i],
                            config,
                            model,
                            max_cycles,
                            &mut scratch,
                        ),
                    ));
                    i += threads;
                }
                out
            }));
        }
        for h in handles {
            for (i, res) in h.join().expect("sharded sweep worker panicked") {
                match res {
                    Ok(p) => profiles[i] = Some(p),
                    Err(e) => {
                        if first_error.as_ref().is_none_or(|(j, _)| i < *j) {
                            first_error = Some((i, e));
                        }
                    }
                }
            }
        }
    });
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    Ok(profiles
        .into_iter()
        .map(|p| p.expect("all kernels measured"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::{DType, KernelBuilder, Suite};

    fn measure(kernel: &Kernel) -> EnergyProfile {
        measure_kernel(kernel, &ClusterConfig::default(), &EnergyModel::table1()).expect("measure")
    }

    fn compute_kernel(n: usize) -> Kernel {
        let mut b = KernelBuilder::new("c", Suite::Custom, DType::I32, n * 4);
        let x = b.array("x", n);
        b.par_for(n as u64, |b, i| {
            b.load(x, i);
            b.alu(16);
            b.store(x, i);
        });
        b.build().expect("valid")
    }

    #[test]
    fn profile_has_all_team_sizes() {
        let p = measure(&compute_kernel(256));
        assert!(p.energy.iter().all(|&e| e > 0.0));
        assert!(p.cycles.iter().all(|&c| c > 0));
        assert_eq!(p.dynamic.len(), 8);
    }

    #[test]
    fn scalable_compute_prefers_many_cores() {
        let p = measure(&compute_kernel(2048));
        assert!(
            p.label() >= 5,
            "dense compute should favour large teams, got {} cores (energies {:?})",
            p.label() + 1,
            p.energy
        );
        assert!(p.speedup(7) > 4.0, "speed-up at 8 cores: {}", p.speedup(7));
    }

    #[test]
    fn serialised_kernel_prefers_few_cores() {
        // Critical section around every iteration: no parallel benefit.
        let n = 512usize;
        let mut b = KernelBuilder::new("ser", Suite::Custom, DType::I32, n * 4);
        let x = b.array("x", n);
        let acc = b.array("acc", 4);
        b.par_for(n as u64, |b, i| {
            b.load(x, i);
            b.critical(|b| {
                b.load(acc, 0);
                b.alu(4);
                b.store(acc, 0);
            });
        });
        let k = b.build().expect("valid");
        let p = measure(&k);
        assert!(
            p.label() <= 2,
            "serialised kernel should favour small teams, got {} cores (energies {:?})",
            p.label() + 1,
            p.energy
        );
    }

    #[test]
    fn waste_is_zero_at_the_label() {
        let p = measure(&compute_kernel(512));
        assert_eq!(p.waste(p.label()), 0.0);
        for c in 0..NUM_CLASSES {
            assert!(p.waste(c) >= 0.0);
        }
    }

    fn profile_with_energy(energy: [f64; NUM_CLASSES]) -> EnergyProfile {
        EnergyProfile {
            energy,
            cycles: [100; NUM_CLASSES],
            dynamic: Vec::new(),
        }
    }

    #[test]
    fn label_skips_nan_energies_instead_of_panicking() {
        // Regression: `partial_cmp(..).expect("finite energies")` used to
        // panic the whole dataset build on a single NaN.
        let mut energy = [10.0; NUM_CLASSES];
        energy[0] = f64::NAN;
        energy[3] = 2.0;
        energy[5] = f64::INFINITY;
        assert_eq!(profile_with_energy(energy).label(), 3);
    }

    #[test]
    fn label_ties_prefer_fewest_cores() {
        let mut energy = [5.0; NUM_CLASSES];
        energy[2] = 1.0;
        energy[6] = 1.0; // exact tie with class 2 → class 2 (fewer cores) wins
        assert_eq!(profile_with_energy(energy).label(), 2);
        assert_eq!(profile_with_energy([7.0; NUM_CLASSES]).label(), 0);
    }

    #[test]
    fn all_nan_profile_degrades_to_class_zero() {
        assert_eq!(profile_with_energy([f64::NAN; NUM_CLASSES]).label(), 0);
    }

    #[test]
    fn summaries_round_trip_through_the_cache_value_type() {
        let p = measure(&compute_kernel(256));
        let summaries = p.summaries();
        assert_eq!(summaries.len(), 8);
        assert!(summaries.iter().enumerate().all(|(i, s)| s.cores == i + 1));
        assert_eq!(EnergyProfile::from_summaries(&summaries), p);
    }

    #[test]
    fn sharded_sweep_is_bit_identical_to_sequential_at_1_2_8_threads() {
        let config = ClusterConfig::default();
        let model = EnergyModel::table1();
        let kernels: Vec<Kernel> = [64usize, 128, 192, 256, 96, 160, 224, 80, 144, 208]
            .iter()
            .map(|&n| compute_kernel(n))
            .collect();
        let sequential: Vec<EnergyProfile> = kernels
            .iter()
            .map(|k| measure_kernel(k, &config, &model).expect("sequential"))
            .collect();
        for threads in [1usize, 2, 8] {
            let sharded =
                measure_kernels_sharded(&kernels, &config, &model, DEFAULT_MAX_CYCLES, threads)
                    .expect("sharded");
            assert_eq!(
                sharded, sequential,
                "sharding across {threads} threads must not change any profile"
            );
        }
        assert!(
            measure_kernels_sharded(&[], &config, &model, DEFAULT_MAX_CYCLES, 4)
                .expect("empty batch")
                .is_empty()
        );
    }

    #[test]
    fn sharded_sweep_reports_the_lowest_indexed_error() {
        // A 1-cycle budget fails every kernel; the reported error must be
        // kernel 0's regardless of which worker hits an error first.
        let config = ClusterConfig::default();
        let model = EnergyModel::table1();
        let kernels: Vec<Kernel> = (0..6).map(|i| compute_kernel(64 + i * 32)).collect();
        let err = measure_kernels_sharded(&kernels, &config, &model, 1, 3)
            .expect_err("1-cycle budget must fail");
        let seq_err = measure_kernel_budgeted(&kernels[0], &config, &model, 1)
            .expect_err("sequential fails too");
        assert_eq!(format!("{err}"), format!("{seq_err}"));
    }

    #[test]
    fn cached_measurement_is_identical_and_skips_the_simulator() {
        let dir = std::env::temp_dir().join(format!(
            "pulp-labeling-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = SweepCache::new(&dir).expect("create cache");
        let config = ClusterConfig::default();
        let model = EnergyModel::table1();
        let kernel = compute_kernel(256);

        let mut rec = Recorder::new();
        let cold = measure_kernel_cached(
            &kernel,
            &config,
            &model,
            DEFAULT_MAX_CYCLES,
            &cache,
            &mut rec,
        )
        .expect("cold run");
        let mut rec = Recorder::new();
        let warm = measure_kernel_cached(
            &kernel,
            &config,
            &model,
            DEFAULT_MAX_CYCLES,
            &cache,
            &mut rec,
        )
        .expect("warm run");
        assert_eq!(cold, warm, "cache round-trip must be bit-identical");
        assert!(
            rec.spans().iter().all(|s| s.cat != "simulate"),
            "warm run must not invoke the simulator"
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

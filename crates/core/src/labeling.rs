//! Simulation-based labelling — steps (B)–(E) of the paper's workflow.
//!
//! Each dataset sample is simulated with every team size from 1 to 8; the
//! Table-I energy model assigns each run an energy; the arg-min team size
//! becomes the sample's class label.

use crate::cache::SweepCache;
use kernel_ir::{lower, Kernel, LowerError};
use pulp_energy_model::{energy_of, DynamicFeatures, EnergyModel, EnergySummary};
use pulp_obs::{JournalEvent, JournalWriter, Logger, Recorder};
use pulp_sim::{
    simulate_opts, ClusterConfig, NoTelemetry, NullSink, SimError, SimOptions, SimScratch,
    DEFAULT_MAX_CYCLES,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of classes (team sizes 1..=8 on the paper's cluster).
pub const NUM_CLASSES: usize = 8;

/// Errors produced while measuring a sample.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureError {
    /// Lowering failed.
    Lower(LowerError),
    /// Simulation failed.
    Sim(SimError),
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Lower(e) => write!(f, "lowering failed: {e}"),
            Self::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for MeasureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Lower(e) => Some(e),
            Self::Sim(e) => Some(e),
        }
    }
}

impl From<LowerError> for MeasureError {
    fn from(e: LowerError) -> Self {
        Self::Lower(e)
    }
}

impl From<SimError> for MeasureError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

/// Energy measurements of one kernel across all team sizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyProfile {
    /// Total energy (fJ) per team size; index `t` = `t + 1` cores.
    pub energy: [f64; NUM_CLASSES],
    /// Kernel cycles per team size.
    pub cycles: [u64; NUM_CLASSES],
    /// Table-III dynamic features per team size.
    pub dynamic: Vec<DynamicFeatures>,
}

impl EnergyProfile {
    /// The minimum-energy class (0-based; class `c` means `c + 1` cores).
    ///
    /// Non-finite energies (NaN/∞ from a degenerate energy model, e.g.
    /// during ablation sweeps) are skipped with a warning instead of
    /// panicking the whole dataset build. Ties are broken deterministically
    /// in favour of the **fewest cores** — the cheaper configuration when
    /// energies are equal. If *no* energy is finite the profile degrades to
    /// class 0 (one core), again with a warning.
    pub fn label(&self) -> usize {
        let mut best: Option<(usize, f64)> = None;
        let mut skipped = 0usize;
        for (i, &e) in self.energy.iter().enumerate() {
            if !e.is_finite() {
                skipped += 1;
                continue;
            }
            // Strict `<` keeps the earlier (fewest-cores) index on ties.
            if best.is_none_or(|(_, b)| e < b) {
                best = Some((i, e));
            }
        }
        if skipped > 0 {
            eprintln!("[labeling] warning: {skipped} non-finite energies skipped in arg-min");
        }
        match best {
            Some((i, _)) => i,
            None => {
                eprintln!("[labeling] warning: no finite energy in profile; defaulting to class 0");
                0
            }
        }
    }

    /// Fractional energy wasted by running with class `c` instead of the
    /// optimum.
    pub fn waste(&self, c: usize) -> f64 {
        let min = self.energy[self.label()];
        (self.energy[c] - min) / min
    }

    /// Parallel speed-up of class `c` relative to one core.
    pub fn speedup(&self, c: usize) -> f64 {
        self.cycles[0] as f64 / self.cycles[c] as f64
    }

    /// The profile as per-core-count [`EnergySummary`] rows — the sweep
    /// cache's value type. Only the team sizes actually measured (one per
    /// [`DynamicFeatures`] entry) are emitted.
    pub fn summaries(&self) -> Vec<EnergySummary> {
        self.dynamic
            .iter()
            .enumerate()
            .map(|(t, dynamic)| EnergySummary {
                cores: t + 1,
                energy_fj: self.energy[t],
                cycles: self.cycles[t],
                dynamic: *dynamic,
            })
            .collect()
    }

    /// Reassembles a profile from cached [`EnergySummary`] rows
    /// (the inverse of [`summaries`](Self::summaries)).
    pub fn from_summaries(summaries: &[EnergySummary]) -> Self {
        let mut energy = [0.0; NUM_CLASSES];
        let mut cycles = [0u64; NUM_CLASSES];
        let mut dynamic = Vec::with_capacity(summaries.len());
        for s in summaries {
            energy[s.cores - 1] = s.energy_fj;
            cycles[s.cores - 1] = s.cycles;
            dynamic.push(s.dynamic);
        }
        Self {
            energy,
            cycles,
            dynamic,
        }
    }
}

/// Simulates `kernel` at every team size and assembles its energy profile.
///
/// # Errors
///
/// Propagates lowering or simulation failures (neither is expected for
/// validated dataset kernels).
pub fn measure_kernel(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
) -> Result<EnergyProfile, MeasureError> {
    measure_kernel_budgeted(kernel, config, model, DEFAULT_MAX_CYCLES)
}

/// [`measure_kernel`] with an explicit per-run cycle budget
/// (`--max-cycles` on the dataset binaries).
///
/// The 8 per-team-size simulations share one [`SimScratch`], so the sweep
/// allocates its per-core state vectors once instead of once per run.
///
/// # Errors
///
/// See [`measure_kernel`]; additionally fails with
/// [`pulp_sim::SimError::CycleLimit`] when a run exceeds `max_cycles`.
pub fn measure_kernel_budgeted(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
    max_cycles: u64,
) -> Result<EnergyProfile, MeasureError> {
    measure_kernel_scratch(kernel, config, model, max_cycles, &mut SimScratch::new())
}

/// [`measure_kernel_budgeted`] with a caller-provided [`SimScratch`].
///
/// The sharded sweep driver ([`measure_kernels_sharded`]) hands each worker
/// thread one scratch that is reused across *all* its kernels and team
/// sizes, so a multi-thousand-sample labelling run performs a handful of
/// scratch allocations instead of one per sample.
///
/// # Errors
///
/// See [`measure_kernel_budgeted`].
pub fn measure_kernel_scratch(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
    max_cycles: u64,
    scratch: &mut SimScratch,
) -> Result<EnergyProfile, MeasureError> {
    let mut energy = [0.0; NUM_CLASSES];
    let mut cycles = [0u64; NUM_CLASSES];
    let mut dynamic = Vec::with_capacity(NUM_CLASSES);
    let opts = SimOptions::default().with_max_cycles(max_cycles);
    for team in 1..=NUM_CLASSES.min(config.num_cores) {
        let lowered = lower(kernel, team, config)?;
        let stats = simulate_opts(
            config,
            &lowered.program,
            &opts,
            &mut NullSink,
            &mut NoTelemetry,
            scratch,
        )?;
        energy[team - 1] = energy_of(&stats, model, config).total();
        cycles[team - 1] = stats.cycles;
        dynamic.push(DynamicFeatures::extract(&stats));
    }
    Ok(EnergyProfile {
        energy,
        cycles,
        dynamic,
    })
}

/// [`measure_kernel`] with stage telemetry: each team-size simulation gets
/// a `simulate` span annotated with its cycle count and energy.
///
/// # Errors
///
/// See [`measure_kernel`].
pub fn measure_kernel_instrumented(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
    max_cycles: u64,
    rec: &mut Recorder,
) -> Result<EnergyProfile, MeasureError> {
    measure_kernel_instrumented_scratch(
        kernel,
        config,
        model,
        max_cycles,
        rec,
        &mut SimScratch::new(),
    )
}

/// [`measure_kernel_instrumented`] with a caller-provided [`SimScratch`]
/// (see [`measure_kernel_scratch`] for why sweeps thread one through).
///
/// # Errors
///
/// See [`measure_kernel`].
pub fn measure_kernel_instrumented_scratch(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
    max_cycles: u64,
    rec: &mut Recorder,
    scratch: &mut SimScratch,
) -> Result<EnergyProfile, MeasureError> {
    let mut energy = [0.0; NUM_CLASSES];
    let mut cycles = [0u64; NUM_CLASSES];
    let mut dynamic = Vec::with_capacity(NUM_CLASSES);
    let opts = SimOptions::default().with_max_cycles(max_cycles);
    for team in 1..=NUM_CLASSES.min(config.num_cores) {
        let span = rec.start_cat(&format!("simulate t{team}"), "simulate");
        let result = (|| -> Result<_, MeasureError> {
            let lowered = lower(kernel, team, config)?;
            let stats = simulate_opts(
                config,
                &lowered.program,
                &opts,
                &mut NullSink,
                &mut NoTelemetry,
                scratch,
            )?;
            Ok(stats)
        })();
        let stats = match result {
            Ok(stats) => stats,
            Err(e) => {
                rec.annotate(span, "error", &e);
                rec.end(span);
                return Err(e);
            }
        };
        let fj = energy_of(&stats, model, config).total();
        rec.annotate(span, "cycles", stats.cycles);
        rec.annotate(span, "energy_uj", format!("{:.4}", fj * 1e-9));
        rec.end(span);
        energy[team - 1] = fj;
        cycles[team - 1] = stats.cycles;
        dynamic.push(DynamicFeatures::extract(&stats));
    }
    Ok(EnergyProfile {
        energy,
        cycles,
        dynamic,
    })
}

/// [`measure_kernel_instrumented`] behind the content-addressed sweep
/// cache: a valid cached sweep short-circuits all 1..=8 simulator
/// invocations; a miss (or stale/corrupt entry) recomputes and stores the
/// fresh sweep atomically.
///
/// # Errors
///
/// See [`measure_kernel`]. Cache I/O never fails the measurement — a bad
/// entry simply falls back to recomputing.
pub fn measure_kernel_cached(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
    max_cycles: u64,
    cache: &SweepCache,
    rec: &mut Recorder,
) -> Result<EnergyProfile, MeasureError> {
    measure_kernel_cached_scratch(
        kernel,
        config,
        model,
        max_cycles,
        cache,
        rec,
        &mut SimScratch::new(),
    )
}

/// [`measure_kernel_cached`] with a caller-provided [`SimScratch`]
/// (see [`measure_kernel_scratch`]; the scratch is only touched on a miss).
///
/// # Errors
///
/// See [`measure_kernel`].
pub fn measure_kernel_cached_scratch(
    kernel: &Kernel,
    config: &ClusterConfig,
    model: &EnergyModel,
    max_cycles: u64,
    cache: &SweepCache,
    rec: &mut Recorder,
    scratch: &mut SimScratch,
) -> Result<EnergyProfile, MeasureError> {
    let sample = kernel.sample_id();
    let key = cache.key(&sample, config, model);
    let expected_teams = NUM_CLASSES.min(config.num_cores);
    if let Some(summaries) = cache.lookup(&key) {
        let shape_ok = summaries.len() == expected_teams
            && summaries.iter().enumerate().all(|(i, s)| s.cores == i + 1);
        if shape_ok {
            let span = rec.start_cat(&format!("cache hit {sample}"), "cache");
            rec.end(span);
            return Ok(EnergyProfile::from_summaries(&summaries));
        }
        // A hash collision or foreign entry of the wrong shape: ignore it
        // and recompute (the store below overwrites it).
    }
    let profile =
        measure_kernel_instrumented_scratch(kernel, config, model, max_cycles, rec, scratch)?;
    cache.store(&key, &profile.summaries());
    Ok(profile)
}

/// Live progress state for a sharded sweep: one lock-free counter per
/// shard, bumped by the worker after each kernel. Snapshots are cheap
/// (relaxed loads) and drive both the `--progress` line and the journal
/// heartbeats without any lock on the hot measurement loop.
#[derive(Debug)]
pub struct SweepProgress {
    total: u64,
    start: Instant,
    shard_done: Vec<AtomicU64>,
}

impl SweepProgress {
    /// A fresh aggregator for `total` kernels across `shards` workers.
    pub fn new(total: usize, shards: usize) -> Self {
        Self {
            total: total as u64,
            start: Instant::now(),
            shard_done: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one finished kernel on `shard`.
    pub fn record(&self, shard: usize) {
        self.shard_done[shard].fetch_add(1, Ordering::Relaxed);
    }

    /// Total kernels in the sweep.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Milliseconds since the sweep started.
    pub fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> SweepSnapshot {
        SweepSnapshot {
            total: self.total,
            shard_done: self
                .shard_done
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            elapsed_s: self.start.elapsed().as_secs_f64(),
        }
    }
}

/// A point-in-time view of a [`SweepProgress`]. Plain data — the derived
/// quantities (rate, ETA, stragglers) are pure functions of the fields,
/// so the unit tests exercise them without any timing dependence.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSnapshot {
    /// Total kernels in the sweep.
    pub total: u64,
    /// Kernels finished per shard.
    pub shard_done: Vec<u64>,
    /// Seconds since the sweep started.
    pub elapsed_s: f64,
}

impl SweepSnapshot {
    /// Kernels finished across all shards.
    pub fn done(&self) -> u64 {
        self.shard_done.iter().sum()
    }

    /// Aggregate throughput so far (kernels per second).
    pub fn rate(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.done() as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// Estimated seconds to completion at the current rate
    /// (`f64::INFINITY` before any kernel finishes).
    pub fn eta_s(&self) -> f64 {
        let remaining = self.total.saturating_sub(self.done()) as f64;
        let rate = self.rate();
        if remaining == 0.0 {
            0.0
        } else if rate > 0.0 {
            remaining / rate
        } else {
            f64::INFINITY
        }
    }

    /// Shards more than 2× the median behind: shard `s` is a straggler
    /// when its remaining work exceeds twice the (lower) median remaining
    /// across all shards. `assigned[s]` is the kernel count shard `s`
    /// owns.
    pub fn stragglers(&self, assigned: &[u64]) -> Vec<usize> {
        let remaining: Vec<u64> = assigned
            .iter()
            .zip(&self.shard_done)
            .map(|(a, d)| a.saturating_sub(*d))
            .collect();
        if remaining.is_empty() {
            return Vec::new();
        }
        let mut sorted = remaining.clone();
        sorted.sort_unstable();
        let median = sorted[(sorted.len() - 1) / 2];
        remaining
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > 0 && r > 2 * median)
            .map(|(s, _)| s)
            .collect()
    }

    /// The `--progress` line's key-value fields (percent done, rate, ETA,
    /// straggler shards if any), ready for [`Logger::info`].
    pub fn progress_fields(&self, assigned: &[u64]) -> Vec<(&'static str, String)> {
        let pct = if self.total > 0 {
            self.done() as f64 / self.total as f64 * 100.0
        } else {
            100.0
        };
        let mut fields = vec![
            ("pct", format!("{pct:.1}")),
            ("rate", format!("{:.1}", self.rate())),
            ("eta_s", format!("{:.0}", self.eta_s())),
        ];
        let stragglers = self.stragglers(assigned);
        if !stragglers.is_empty() {
            fields.push(("stragglers", format!("{stragglers:?}")));
        }
        fields
    }
}

/// Observation hooks for [`measure_kernels_sharded_observed`]: an
/// optional journal receiving heartbeats and slow-kernel events, an
/// optional logger for the live progress line, and the heartbeat cadence.
/// [`SweepObserver::disabled`] turns the observed driver back into the
/// bare sweep with no per-kernel timing on the hot loop.
#[derive(Default)]
pub struct SweepObserver<'a> {
    /// Receives per-shard heartbeats and slow-kernel events, buffered in
    /// each worker and merged in shard order after the join (so journal
    /// writes never touch the measurement loop).
    pub journal: Option<&'a mut JournalWriter>,
    /// Sink for the live progress line; `None` with `progress` set falls
    /// back to a plain-text stderr logger.
    pub logger: Option<&'a Logger>,
    /// Emit a throttled `[sweep]` progress line with ETA and straggler
    /// flags while the sweep runs.
    pub progress: bool,
    /// Kernels between heartbeats per shard (`0` = the default of 16).
    pub heartbeat_every: u64,
}

impl SweepObserver<'_> {
    /// No journal, no progress — observation fully off.
    pub fn disabled() -> SweepObserver<'static> {
        SweepObserver::default()
    }
}

/// Slow-kernel entries each shard tracks (the report merges and re-ranks
/// them globally).
const SLOW_PER_SHARD: usize = 4;

/// Sweeps a batch of independent kernels across a scoped worker pool.
///
/// Labelling is embarrassingly parallel per sample: each kernel's 1..=8
/// team-size sweep touches no shared state. Workers claim kernels by
/// round-robin striding (worker `t` measures indices `t, t + threads, ...`),
/// each reusing one [`SimScratch`] across every run it performs, and the
/// profiles land in input order — the result is **bit-identical to
/// sequential measurement at any thread count**, which the unit tests pin
/// at 1/2/8 threads.
///
/// `threads == 0` uses all available cores; the count is clamped to the
/// batch size.
///
/// # Errors
///
/// If any kernels fail, returns the error of the **lowest-indexed** failing
/// kernel (independent of thread interleaving), as sequential measurement
/// would.
pub fn measure_kernels_sharded(
    kernels: &[Kernel],
    config: &ClusterConfig,
    model: &EnergyModel,
    max_cycles: u64,
    threads: usize,
) -> Result<Vec<EnergyProfile>, MeasureError> {
    measure_kernels_sharded_observed(
        kernels,
        config,
        model,
        max_cycles,
        threads,
        SweepObserver::disabled(),
    )
}

/// [`measure_kernels_sharded`] with observation: per-shard journal
/// heartbeats (kernels done, kernels/s), per-shard slow-kernel tracking,
/// and a live throttled progress line with ETA and straggler flags.
///
/// The measured profiles are **bit-identical** to the unobserved sweep at
/// any thread count — observation only adds per-kernel wall timing (and
/// only when a journal is attached), lock-free progress counts, and
/// worker-local event buffers written to the journal in shard order after
/// the join.
///
/// # Errors
///
/// See [`measure_kernels_sharded`]. Journal write failures after the
/// sweep are reported to stderr but do not fail the measurement.
pub fn measure_kernels_sharded_observed(
    kernels: &[Kernel],
    config: &ClusterConfig,
    model: &EnergyModel,
    max_cycles: u64,
    threads: usize,
    obs: SweepObserver<'_>,
) -> Result<Vec<EnergyProfile>, MeasureError> {
    if kernels.is_empty() {
        return Ok(Vec::new());
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
    .min(kernels.len());
    let journaling = obs.journal.is_some();
    if threads == 1 && !journaling && !obs.progress {
        let mut scratch = SimScratch::new();
        return kernels
            .iter()
            .map(|k| measure_kernel_scratch(k, config, model, max_cycles, &mut scratch))
            .collect();
    }

    let heartbeat_every = if obs.heartbeat_every == 0 {
        16
    } else {
        obs.heartbeat_every
    };
    // Shard `t` owns indices `t, t + threads, ...`.
    let assigned: Vec<u64> = (0..threads)
        .map(|t| ((kernels.len() - t).div_ceil(threads)) as u64)
        .collect();
    let progress = SweepProgress::new(kernels.len(), threads);
    let fallback_logger = Logger::new(pulp_obs::LogFormat::Text);
    let logger: Option<&Logger> = if obs.progress {
        Some(obs.logger.unwrap_or(&fallback_logger))
    } else {
        None
    };

    let mut profiles: Vec<Option<EnergyProfile>> = vec![None; kernels.len()];
    let mut first_error: Option<(usize, MeasureError)> = None;
    let mut shard_events: Vec<Vec<JournalEvent>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let progress = &progress;
            handles.push(scope.spawn(move || {
                let mut scratch = SimScratch::new();
                let mut out = Vec::new();
                let mut events: Vec<JournalEvent> = Vec::new();
                let mut slow: Vec<(String, f64, u64)> = Vec::new();
                let mut done = 0u64;
                let shard_total = ((kernels.len() - t).div_ceil(threads)) as u64;
                let mut i = t;
                while i < kernels.len() {
                    let t0 = journaling.then(Instant::now);
                    let res = measure_kernel_scratch(
                        &kernels[i],
                        config,
                        model,
                        max_cycles,
                        &mut scratch,
                    );
                    done += 1;
                    if let Some(t0) = t0 {
                        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                        let cycles = res.as_ref().map_or(0, |p| p.cycles[0]);
                        slow.push((kernels[i].sample_id(), wall_ms, cycles));
                        if slow.len() > SLOW_PER_SHARD {
                            // Keep the SLOW_PER_SHARD largest by wall time.
                            slow.sort_by(|a, b| {
                                b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)
                            });
                            slow.truncate(SLOW_PER_SHARD);
                        }
                        if done.is_multiple_of(heartbeat_every) || done == shard_total {
                            let elapsed_ms = progress.elapsed_ms();
                            let elapsed_s = elapsed_ms as f64 / 1e3;
                            events.push(JournalEvent::Heartbeat {
                                shard: t as u64,
                                done,
                                assigned: shard_total,
                                elapsed_ms,
                                kernels_per_s: if elapsed_s > 0.0 {
                                    done as f64 / elapsed_s
                                } else {
                                    0.0
                                },
                                cache_hits: 0,
                                cache_misses: 0,
                            });
                        }
                    }
                    out.push((i, res));
                    progress.record(t);
                    i += threads;
                }
                slow.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                for (sample, wall_ms, cycles) in slow {
                    events.push(JournalEvent::SlowKernel {
                        sample,
                        wall_ms,
                        cycles,
                    });
                }
                (out, events)
            }));
        }
        let monitor = logger.map(|log| {
            let progress = &progress;
            let assigned = &assigned;
            scope.spawn(move || {
                let mut last = u64::MAX;
                loop {
                    let snap = progress.snapshot();
                    if snap.done() != last {
                        last = snap.done();
                        log.info(
                            "sweep",
                            &format!("measured {}/{}", snap.done(), snap.total),
                            &snap.progress_fields(assigned),
                        );
                    }
                    if snap.done() >= snap.total {
                        break;
                    }
                    // Parked, not slept: the join path unparks us the moment
                    // the last worker finishes, so a short sweep never pays a
                    // full monitor tick of extra wall time. An unpark that
                    // races ahead of the park is stored, not lost.
                    std::thread::park_timeout(std::time::Duration::from_millis(200));
                }
            })
        });
        for h in handles {
            let (results, events) = h.join().expect("sharded sweep worker panicked");
            shard_events.push(events);
            for (i, res) in results {
                match res {
                    Ok(p) => profiles[i] = Some(p),
                    Err(e) => {
                        if first_error.as_ref().is_none_or(|(j, _)| i < *j) {
                            first_error = Some((i, e));
                        }
                    }
                }
            }
        }
        if let Some(m) = &monitor {
            m.thread().unpark();
        }
    });
    if let Some(journal) = obs.journal {
        // Deterministic merge: shard 0's buffer first, then shard 1's, ...
        if let Err(e) = journal.events(shard_events.into_iter().flatten()) {
            eprintln!("[sweep] warning: journal write failed: {e}");
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    Ok(profiles
        .into_iter()
        .map(|p| p.expect("all kernels measured"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::{DType, KernelBuilder, Suite};

    fn measure(kernel: &Kernel) -> EnergyProfile {
        measure_kernel(kernel, &ClusterConfig::default(), &EnergyModel::table1()).expect("measure")
    }

    fn compute_kernel(n: usize) -> Kernel {
        let mut b = KernelBuilder::new("c", Suite::Custom, DType::I32, n * 4);
        let x = b.array("x", n);
        b.par_for(n as u64, |b, i| {
            b.load(x, i);
            b.alu(16);
            b.store(x, i);
        });
        b.build().expect("valid")
    }

    #[test]
    fn profile_has_all_team_sizes() {
        let p = measure(&compute_kernel(256));
        assert!(p.energy.iter().all(|&e| e > 0.0));
        assert!(p.cycles.iter().all(|&c| c > 0));
        assert_eq!(p.dynamic.len(), 8);
    }

    #[test]
    fn scalable_compute_prefers_many_cores() {
        let p = measure(&compute_kernel(2048));
        assert!(
            p.label() >= 5,
            "dense compute should favour large teams, got {} cores (energies {:?})",
            p.label() + 1,
            p.energy
        );
        assert!(p.speedup(7) > 4.0, "speed-up at 8 cores: {}", p.speedup(7));
    }

    #[test]
    fn serialised_kernel_prefers_few_cores() {
        // Critical section around every iteration: no parallel benefit.
        let n = 512usize;
        let mut b = KernelBuilder::new("ser", Suite::Custom, DType::I32, n * 4);
        let x = b.array("x", n);
        let acc = b.array("acc", 4);
        b.par_for(n as u64, |b, i| {
            b.load(x, i);
            b.critical(|b| {
                b.load(acc, 0);
                b.alu(4);
                b.store(acc, 0);
            });
        });
        let k = b.build().expect("valid");
        let p = measure(&k);
        assert!(
            p.label() <= 2,
            "serialised kernel should favour small teams, got {} cores (energies {:?})",
            p.label() + 1,
            p.energy
        );
    }

    #[test]
    fn waste_is_zero_at_the_label() {
        let p = measure(&compute_kernel(512));
        assert_eq!(p.waste(p.label()), 0.0);
        for c in 0..NUM_CLASSES {
            assert!(p.waste(c) >= 0.0);
        }
    }

    fn profile_with_energy(energy: [f64; NUM_CLASSES]) -> EnergyProfile {
        EnergyProfile {
            energy,
            cycles: [100; NUM_CLASSES],
            dynamic: Vec::new(),
        }
    }

    #[test]
    fn label_skips_nan_energies_instead_of_panicking() {
        // Regression: `partial_cmp(..).expect("finite energies")` used to
        // panic the whole dataset build on a single NaN.
        let mut energy = [10.0; NUM_CLASSES];
        energy[0] = f64::NAN;
        energy[3] = 2.0;
        energy[5] = f64::INFINITY;
        assert_eq!(profile_with_energy(energy).label(), 3);
    }

    #[test]
    fn label_ties_prefer_fewest_cores() {
        let mut energy = [5.0; NUM_CLASSES];
        energy[2] = 1.0;
        energy[6] = 1.0; // exact tie with class 2 → class 2 (fewer cores) wins
        assert_eq!(profile_with_energy(energy).label(), 2);
        assert_eq!(profile_with_energy([7.0; NUM_CLASSES]).label(), 0);
    }

    #[test]
    fn all_nan_profile_degrades_to_class_zero() {
        assert_eq!(profile_with_energy([f64::NAN; NUM_CLASSES]).label(), 0);
    }

    #[test]
    fn summaries_round_trip_through_the_cache_value_type() {
        let p = measure(&compute_kernel(256));
        let summaries = p.summaries();
        assert_eq!(summaries.len(), 8);
        assert!(summaries.iter().enumerate().all(|(i, s)| s.cores == i + 1));
        assert_eq!(EnergyProfile::from_summaries(&summaries), p);
    }

    #[test]
    fn sharded_sweep_is_bit_identical_to_sequential_at_1_2_8_threads() {
        let config = ClusterConfig::default();
        let model = EnergyModel::table1();
        let kernels: Vec<Kernel> = [64usize, 128, 192, 256, 96, 160, 224, 80, 144, 208]
            .iter()
            .map(|&n| compute_kernel(n))
            .collect();
        let sequential: Vec<EnergyProfile> = kernels
            .iter()
            .map(|k| measure_kernel(k, &config, &model).expect("sequential"))
            .collect();
        for threads in [1usize, 2, 8] {
            let sharded =
                measure_kernels_sharded(&kernels, &config, &model, DEFAULT_MAX_CYCLES, threads)
                    .expect("sharded");
            assert_eq!(
                sharded, sequential,
                "sharding across {threads} threads must not change any profile"
            );
        }
        assert!(
            measure_kernels_sharded(&[], &config, &model, DEFAULT_MAX_CYCLES, 4)
                .expect("empty batch")
                .is_empty()
        );
    }

    #[test]
    fn observed_sweep_is_bit_identical_and_journals_round_trip_at_1_2_8_threads() {
        use pulp_obs::{validate_journal, JournalReader, JournalWriter};
        let config = ClusterConfig::default();
        let model = EnergyModel::table1();
        let kernels: Vec<Kernel> = [64usize, 128, 192, 256, 96, 160, 224, 80, 144, 208]
            .iter()
            .map(|&n| compute_kernel(n))
            .collect();
        let plain = measure_kernels_sharded(&kernels, &config, &model, DEFAULT_MAX_CYCLES, 2)
            .expect("plain");
        for threads in [1usize, 2, 8] {
            let mut journal = JournalWriter::in_memory("test_sweep", "cafe", 7);
            let observed = measure_kernels_sharded_observed(
                &kernels,
                &config,
                &model,
                DEFAULT_MAX_CYCLES,
                threads,
                SweepObserver {
                    journal: Some(&mut journal),
                    logger: None,
                    progress: false,
                    heartbeat_every: 4,
                },
            )
            .expect("observed");
            assert_eq!(
                observed, plain,
                "observation must not perturb profiles at {threads} threads"
            );
            let text = journal.finalize_to_string().expect("journal text");
            validate_journal(&text).expect("journal validates");
            let parsed = JournalReader::read_str(&text).expect("journal reads");
            // Bit-identical round trip: canonical re-encode == file bytes.
            assert_eq!(
                pulp_obs::render_journal(&parsed),
                text,
                "journal round-trip at {threads} threads"
            );
            // Every shard's final heartbeat covers its full stripe.
            let mut last: Vec<Option<(u64, u64)>> = vec![None; threads];
            for ev in &parsed.events {
                if let pulp_obs::JournalEvent::Heartbeat {
                    shard,
                    done,
                    assigned,
                    ..
                } = ev
                {
                    last[*shard as usize] = Some((*done, *assigned));
                }
            }
            let covered: u64 = last
                .iter()
                .map(|hb| {
                    let (done, assigned) = hb.expect("each shard heartbeats");
                    assert_eq!(done, assigned, "final heartbeat covers the stripe");
                    done
                })
                .sum();
            assert_eq!(covered, kernels.len() as u64);
            assert!(
                parsed
                    .events
                    .iter()
                    .any(|e| matches!(e, pulp_obs::JournalEvent::SlowKernel { .. })),
                "slow-kernel entries recorded"
            );
        }
    }

    #[test]
    fn observed_sweep_progress_lines_reach_the_logger() {
        use pulp_obs::{LogFormat, Logger};
        let config = ClusterConfig::default();
        let model = EnergyModel::table1();
        let kernels: Vec<Kernel> = (0..4).map(|i| compute_kernel(64 + i * 32)).collect();
        let log = Logger::to_sink(LogFormat::Text);
        measure_kernels_sharded_observed(
            &kernels,
            &config,
            &model,
            DEFAULT_MAX_CYCLES,
            2,
            SweepObserver {
                journal: None,
                logger: Some(&log),
                progress: true,
                heartbeat_every: 0,
            },
        )
        .expect("observed");
        let lines = log.take_sink().expect("sink");
        assert!(!lines.is_empty(), "progress lines expected");
        assert!(
            lines.last().unwrap().starts_with("[sweep] measured 4/4"),
            "final line reports completion: {lines:?}"
        );
        assert!(lines.iter().all(|l| l.contains("eta_s=")), "{lines:?}");
    }

    #[test]
    fn snapshot_math_is_pure_and_flags_stragglers() {
        let snap = SweepSnapshot {
            total: 100,
            shard_done: vec![30, 30, 2],
            elapsed_s: 31.0,
        };
        assert_eq!(snap.done(), 62);
        assert!((snap.rate() - 2.0).abs() < 1e-9);
        assert!((snap.eta_s() - 19.0).abs() < 1e-9);
        // Remaining: [4, 4, 31]; median 4 → shard 2 (> 8 behind) straggles.
        assert_eq!(snap.stragglers(&[34, 34, 33]), vec![2]);
        // Even remaining → nobody straggles.
        let even = SweepSnapshot {
            total: 100,
            shard_done: vec![20, 20, 20],
            elapsed_s: 10.0,
        };
        assert!(even.stragglers(&[34, 33, 33]).is_empty());
        // One shard done, one far behind: lower median (0) flags it.
        let tail = SweepSnapshot {
            total: 20,
            shard_done: vec![10, 3],
            elapsed_s: 5.0,
        };
        assert_eq!(tail.stragglers(&[10, 10]), vec![1]);
        let fields = snap.progress_fields(&[34, 34, 33]);
        assert!(fields.iter().any(|(k, v)| *k == "pct" && v == "62.0"));
        assert!(fields.iter().any(|(k, v)| *k == "stragglers" && v == "[2]"));
        // Zero-progress snapshots report an unbounded ETA without panicking.
        let cold = SweepSnapshot {
            total: 10,
            shard_done: vec![0, 0],
            elapsed_s: 0.0,
        };
        assert_eq!(cold.rate(), 0.0);
        assert!(cold.eta_s().is_infinite());
    }

    #[test]
    fn live_progress_aggregator_counts_per_shard() {
        let prog = SweepProgress::new(6, 2);
        assert_eq!(prog.total(), 6);
        prog.record(0);
        prog.record(1);
        prog.record(1);
        let snap = prog.snapshot();
        assert_eq!(snap.shard_done, vec![1, 2]);
        assert_eq!(snap.done(), 3);
    }

    #[test]
    fn sharded_sweep_reports_the_lowest_indexed_error() {
        // A 1-cycle budget fails every kernel; the reported error must be
        // kernel 0's regardless of which worker hits an error first.
        let config = ClusterConfig::default();
        let model = EnergyModel::table1();
        let kernels: Vec<Kernel> = (0..6).map(|i| compute_kernel(64 + i * 32)).collect();
        let err = measure_kernels_sharded(&kernels, &config, &model, 1, 3)
            .expect_err("1-cycle budget must fail");
        let seq_err = measure_kernel_budgeted(&kernels[0], &config, &model, 1)
            .expect_err("sequential fails too");
        assert_eq!(format!("{err}"), format!("{seq_err}"));
    }

    #[test]
    fn cached_measurement_is_identical_and_skips_the_simulator() {
        let dir = std::env::temp_dir().join(format!(
            "pulp-labeling-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = SweepCache::new(&dir).expect("create cache");
        let config = ClusterConfig::default();
        let model = EnergyModel::table1();
        let kernel = compute_kernel(256);

        let mut rec = Recorder::new();
        let cold = measure_kernel_cached(
            &kernel,
            &config,
            &model,
            DEFAULT_MAX_CYCLES,
            &cache,
            &mut rec,
        )
        .expect("cold run");
        let mut rec = Recorder::new();
        let warm = measure_kernel_cached(
            &kernel,
            &config,
            &model,
            DEFAULT_MAX_CYCLES,
            &cache,
            &mut rec,
        )
        .expect("warm run");
        assert_eq!(cold, warm, "cache round-trip must be bit-identical");
        assert!(
            rec.spans().iter().all(|s| s.cat != "simulate"),
            "warm run must not invoke the simulator"
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Content-addressed cache for simulation sweep results.
//!
//! Building the paper's dataset simulates every sample at every team size
//! — 448 × 8 cycle-level runs — and every experiment binary used to redo
//! that work from scratch. [`SweepCache`] persists the per-team-size
//! [`EnergySummary`] of each sample under a key derived from everything
//! that determines the result:
//!
//! * the sample id (`suite/name/dtype/payload` — kernel and parameters),
//! * the full [`ClusterConfig`],
//! * the full [`EnergyModel`] coefficients,
//! * the simulator/energy-model version constants
//!   ([`pulp_sim::SIM_VERSION`], [`pulp_energy_model::MODEL_VERSION`]).
//!
//! The key is a stable 64-bit FNV-1a hash of the deterministic JSON
//! encoding of those inputs, so cache hits are content-addressed: change a
//! latency constant or bump a version and every stale entry misses (and is
//! counted as an *invalidation* when the entry exists with another
//! version). Entries are written atomically (write to a temporary file,
//! then rename), so a crashed or concurrent writer can never leave a
//! half-written entry that parses. Corrupt or truncated entries are
//! treated as invalidations and recomputed — never panics.

use pulp_energy_model::{EnergyModel, EnergySummary};
use pulp_sim::ClusterConfig;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version of the cache file format itself (bump on layout changes).
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// The default version string folded into every cache key: simulator,
/// energy-model and cache-format versions. Bumping any of the three
/// invalidates all previously cached sweeps.
pub fn default_cache_version() -> String {
    format!(
        "sim{}-model{}-fmt{}",
        pulp_sim::SIM_VERSION,
        pulp_energy_model::MODEL_VERSION,
        CACHE_FORMAT_VERSION
    )
}

/// Hex-encoded FNV-1a 64-bit hash of a value's deterministic JSON
/// encoding — the exact keying primitive [`SweepCache::key`] uses, exposed
/// so run manifests can record config/model hashes that are comparable
/// with cache keys (same serialisation, same hash).
pub fn content_hash_hex(value: &impl Serialize) -> String {
    let encoded = serde_json::to_string(&value.to_value()).expect("value serialises");
    format!("{:016x}", fnv1a64(encoded.as_bytes()))
}

/// 64-bit FNV-1a over `bytes` — a small, stable, dependency-free hash.
/// Collisions are tolerable: entries embed the sample id and are verified
/// on load.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A resolved cache key: the content hash plus the sample id it encodes
/// (kept for collision verification and debuggability).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    hash: u64,
    sample: String,
}

impl CacheKey {
    /// The entry's file name inside the cache directory.
    pub fn file_name(&self) -> String {
        format!("{:016x}.json", self.hash)
    }

    /// The sample id this key was derived from.
    pub fn sample(&self) -> &str {
        &self.sample
    }
}

/// Hit/miss/invalidation counts observed by one [`SweepCache`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups with no entry on disk.
    pub misses: u64,
    /// Entries found but rejected (version mismatch, corruption, sample
    /// mismatch) and recomputed.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.invalidations
    }

    /// Hit rate in percent (100.0 when there were no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            100.0
        } else {
            100.0 * self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} invalidations ({:.1}% hit rate)",
            self.hits,
            self.misses,
            self.invalidations,
            self.hit_rate()
        )
    }
}

/// On-disk usage of a cache directory (for `pulp_cli cache stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct CacheDirStats {
    /// Number of `*.json` entries.
    pub entries: u64,
    /// Total size of the entries in bytes.
    pub bytes: u64,
}

/// Content-addressed, thread-safe store of per-sample sweep summaries.
///
/// All methods take `&self`; counters are atomics, so one instance can be
/// shared (e.g. via `Arc`) across the pipeline's worker threads.
#[derive(Debug)]
pub struct SweepCache {
    dir: PathBuf,
    version: String,
    tmp_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl SweepCache {
    /// Opens (creating if needed) a cache rooted at `dir`, keyed with the
    /// [`default_cache_version`].
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::with_version(dir, &default_cache_version())
    }

    /// Opens a cache with an explicit version string — the hook tests (and
    /// forks of the simulator) use to prove that a version bump invalidates
    /// previously written entries.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn with_version(dir: impl Into<PathBuf>, version: &str) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            version: version.to_string(),
            tmp_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Derives the content-addressed key of one sample's sweep.
    pub fn key(&self, sample_id: &str, config: &ClusterConfig, model: &EnergyModel) -> CacheKey {
        // The key payload is serialised with the deterministic vendored
        // serde_json (fixed field order, exact float round-trip), so the
        // hash is stable across processes and platforms.
        let payload = Value::Map(vec![
            ("version".to_string(), self.version.to_value()),
            ("sample".to_string(), sample_id.to_value()),
            ("config".to_string(), config.to_value()),
            ("model".to_string(), model.to_value()),
        ]);
        let encoded = serde_json::to_string(&payload).expect("key serialises");
        CacheKey {
            hash: fnv1a64(encoded.as_bytes()),
            sample: sample_id.to_string(),
        }
    }

    /// Loads the cached sweep for `key`, verifying version and sample id.
    ///
    /// Returns `None` on any kind of failure — missing entry (counted as a
    /// miss), or unreadable/corrupt/stale entry (counted as an
    /// invalidation). Never panics and never propagates I/O errors: the
    /// caller simply recomputes.
    pub fn lookup(&self, key: &CacheKey) -> Option<Vec<EnergySummary>> {
        let path = self.dir.join(key.file_name());
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match Self::parse_entry(&text, &self.version, &key.sample) {
            Some(summaries) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(summaries)
            }
            None => {
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn parse_entry(text: &str, version: &str, sample: &str) -> Option<Vec<EnergySummary>> {
        let value: Value = serde_json::from_str(text).ok()?;
        let entry_version = String::from_value(value.field("version").ok()?).ok()?;
        if entry_version != version {
            return None;
        }
        let entry_sample = String::from_value(value.field("sample").ok()?).ok()?;
        if entry_sample != sample {
            return None;
        }
        let summaries = Vec::<EnergySummary>::from_value(value.field("summaries").ok()?).ok()?;
        if summaries.is_empty() || !summaries.iter().all(EnergySummary::is_plausible) {
            return None;
        }
        Some(summaries)
    }

    /// Persists one sample's sweep under `key`, atomically: the entry is
    /// written to a unique temporary file in the cache directory and then
    /// renamed into place, so readers either see the whole entry or none.
    ///
    /// Best-effort: I/O failures are reported to stderr and swallowed —
    /// a read-only cache directory degrades performance, not correctness.
    pub fn store(&self, key: &CacheKey, summaries: &[EnergySummary]) {
        let entry = Value::Map(vec![
            ("version".to_string(), self.version.to_value()),
            ("sample".to_string(), key.sample.to_value()),
            ("summaries".to_string(), summaries.to_value()),
        ]);
        let text = serde_json::to_string(&entry).expect("entry serialises");
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            "{:016x}.tmp.{}.{}",
            key.hash,
            std::process::id(),
            seq
        ));
        let path = self.dir.join(key.file_name());
        let result = fs::write(&tmp, &text).and_then(|()| fs::rename(&tmp, &path));
        if let Err(e) = result {
            let _ = fs::remove_file(&tmp);
            eprintln!("[cache] warning: cannot write {}: {e}", path.display());
        }
    }

    /// Counters observed by this instance since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Records the hit/miss/invalidation counters into `rec` as the obs
    /// counters `cache/hits`, `cache/misses` and `cache/invalidations`.
    pub fn record(&self, rec: &mut pulp_obs::Recorder) {
        let s = self.stats();
        rec.counter("cache/hits", s.hits as f64);
        rec.counter("cache/misses", s.misses as f64);
        rec.counter("cache/invalidations", s.invalidations as f64);
    }

    /// Sizes the `*.json` entries currently in `dir`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be read.
    pub fn dir_stats(dir: &Path) -> io::Result<CacheDirStats> {
        let mut stats = CacheDirStats::default();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "json") {
                stats.entries += 1;
                stats.bytes += entry.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
        Ok(stats)
    }

    /// Deletes every `*.json` entry in `dir`, returning how many were
    /// removed. Leaves the directory itself (and any foreign files) alone.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered.
    pub fn clear(dir: &Path) -> io::Result<u64> {
        let mut removed = 0;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "json") {
                fs::remove_file(entry.path())?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulp_energy_model::DynamicFeatures;
    use pulp_sim::SimStats;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pulp-sweep-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn summaries() -> Vec<EnergySummary> {
        (1..=4)
            .map(|cores| EnergySummary {
                cores,
                energy_fj: 1000.0 * cores as f64 + 0.125,
                cycles: 10_000 / cores as u64,
                dynamic: DynamicFeatures::extract(&SimStats::default()),
            })
            .collect()
    }

    #[test]
    fn round_trips_summaries() {
        let dir = tmp_dir("roundtrip");
        let cache = SweepCache::new(&dir).expect("create");
        let config = ClusterConfig::default();
        let model = EnergyModel::table1();
        let key = cache.key("custom/k/f32/2048", &config, &model);

        assert_eq!(cache.lookup(&key), None);
        let stored = summaries();
        cache.store(&key, &stored);
        assert_eq!(cache.lookup(&key).as_deref(), Some(&stored[..]));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.invalidations), (1, 1, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_is_content_addressed() {
        let dir = tmp_dir("keys");
        let cache = SweepCache::new(&dir).expect("create");
        let config = ClusterConfig::default();
        let model = EnergyModel::table1();
        let base = cache.key("a/b/f32/512", &config, &model);
        assert_eq!(base, cache.key("a/b/f32/512", &config, &model));
        assert_ne!(base, cache.key("a/b/f32/1024", &config, &model));
        let small = config.clone().with_cores(4);
        assert_ne!(
            base.file_name(),
            cache.key("a/b/f32/512", &small, &model).file_name()
        );
        let mut warm = model;
        warm.pe.alu += 1.0;
        assert_ne!(
            base.file_name(),
            cache.key("a/b/f32/512", &config, &warm).file_name()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_entries_fall_back_to_recompute() {
        let dir = tmp_dir("corrupt");
        let cache = SweepCache::new(&dir).expect("create");
        let key = cache.key(
            "a/b/f32/512",
            &ClusterConfig::default(),
            &EnergyModel::table1(),
        );
        cache.store(&key, &summaries());

        // Truncate the entry mid-JSON.
        let path = dir.join(key.file_name());
        let text = fs::read_to_string(&path).expect("entry exists");
        fs::write(&path, &text[..text.len() / 2]).expect("truncate");
        assert_eq!(cache.lookup(&key), None, "truncated entry must miss");

        // Replace with non-JSON garbage.
        fs::write(&path, "not json at all {{{").expect("garbage");
        assert_eq!(cache.lookup(&key), None, "garbage entry must miss");

        // Valid JSON of the wrong shape.
        fs::write(&path, "{\"unexpected\": true}").expect("wrong shape");
        assert_eq!(cache.lookup(&key), None, "wrong-shape entry must miss");

        // NaN energies smuggled into an otherwise valid entry are refused.
        let mut bad = summaries();
        bad[0].energy_fj = f64::NAN;
        cache.store(&key, &bad);
        assert_eq!(cache.lookup(&key), None, "non-finite entry must miss");

        assert_eq!(cache.stats().invalidations, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_bump_invalidates() {
        let dir = tmp_dir("version");
        let config = ClusterConfig::default();
        let model = EnergyModel::table1();
        let stored = summaries();

        let v1 = SweepCache::with_version(&dir, "v1").expect("create");
        let key_v1 = v1.key("a/b/f32/512", &config, &model);
        v1.store(&key_v1, &stored);
        assert!(v1.lookup(&key_v1).is_some());

        // A bumped version hashes to a different key — the old entry is
        // simply never found (a miss, then a fresh store).
        let v2 = SweepCache::with_version(&dir, "v2").expect("create");
        let key_v2 = v2.key("a/b/f32/512", &config, &model);
        assert_ne!(key_v1.file_name(), key_v2.file_name());
        assert_eq!(v2.lookup(&key_v2), None);

        // Even a forged hash collision (entry bytes from another version
        // under the new key's file name) is rejected via the embedded
        // version field, counted as an invalidation.
        fs::copy(dir.join(key_v1.file_name()), dir.join(key_v2.file_name()))
            .expect("forge collision");
        assert_eq!(v2.lookup(&key_v2), None);
        assert_eq!(v2.stats().invalidations, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_and_dir_stats_agree() {
        let dir = tmp_dir("clear");
        let cache = SweepCache::new(&dir).expect("create");
        let config = ClusterConfig::default();
        let model = EnergyModel::table1();
        for i in 0..3 {
            let key = cache.key(&format!("a/b/f32/{i}"), &config, &model);
            cache.store(&key, &summaries());
        }
        let stats = SweepCache::dir_stats(&dir).expect("stats");
        assert_eq!(stats.entries, 3);
        assert!(stats.bytes > 0);
        assert_eq!(SweepCache::clear(&dir).expect("clear"), 3);
        assert_eq!(SweepCache::dir_stats(&dir).expect("stats").entries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_render_cleanly() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            invalidations: 0,
        };
        assert_eq!(s.lookups(), 4);
        assert_eq!(
            s.to_string(),
            "3 hits, 1 misses, 0 invalidations (75.0% hit rate)"
        );
        assert_eq!(CacheStats::default().hit_rate(), 100.0);
    }
}

//! Run manifests: machine-readable provenance for every experiment output.
//!
//! A [`RunManifest`] records everything needed to reproduce (or audit) one
//! bench-binary run: crate and simulator/energy-model versions, FNV-1a
//! content hashes of the exact [`ClusterConfig`] and [`EnergyModel`] used
//! (the *same* hashing as the sweep-cache key, via
//! [`content_hash_hex`](crate::cache::content_hash_hex), so a manifest's
//! `config_hash` is directly comparable with cache keying inputs), the CV
//! protocol and seed, cache hit/miss counters and wall time. Bench
//! binaries write it as `manifest.json` next to their output.
//!
//! Determinism contract: two runs with identical inputs produce
//! byte-identical manifests except for the wall-time field, and
//! [`RunManifest::manifest_hash`] hashes the manifest with wall time
//! zeroed and the protocol's CV thread count canonicalised (the fan-out
//! is bit-identical at any width), so equal hashes ⇔ equal provenance.
//!
//! # Examples
//!
//! ```
//! use pulp_energy::manifest::RunManifest;
//! use pulp_energy_model::EnergyModel;
//! use pulp_sim::ClusterConfig;
//!
//! let m = RunManifest::new("headline", &ClusterConfig::default(), &EnergyModel::table1())
//!     .with_seed(42)
//!     .with_wall_time_ms(1234);
//! let again = RunManifest::new("headline", &ClusterConfig::default(), &EnergyModel::table1())
//!     .with_seed(42)
//!     .with_wall_time_ms(9999);
//! assert_eq!(m.manifest_hash(), again.manifest_hash()); // wall time excluded
//! ```

use crate::cache::{content_hash_hex, default_cache_version, CacheStats, CACHE_FORMAT_VERSION};
use crate::evaluation::Protocol;
use pulp_energy_model::EnergyModel;
use pulp_sim::ClusterConfig;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Provenance record for one bench-binary run. Field order is the JSON
/// field order (the vendored serde serialises structs in declaration
/// order), so keep `wall_time_ms` last: everything above it is
/// deterministic for identical inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Name of the binary (or logical tool) that produced the output.
    pub tool: String,
    /// Workspace crate version (`CARGO_PKG_VERSION` of pulp-core).
    pub crate_version: String,
    /// [`pulp_sim::SIM_VERSION`] at build time.
    pub sim_version: u32,
    /// [`pulp_energy_model::MODEL_VERSION`] at build time.
    pub model_version: u32,
    /// [`CACHE_FORMAT_VERSION`] at build time.
    pub cache_format_version: u32,
    /// The combined cache version string
    /// ([`default_cache_version`]) — what the sweep cache folds into keys.
    pub cache_version: String,
    /// FNV-1a hex hash of the [`ClusterConfig`]'s deterministic JSON.
    pub config_hash: String,
    /// FNV-1a hex hash of the [`EnergyModel`]'s deterministic JSON.
    pub model_hash: String,
    /// RNG seed for the evaluation protocol (0 when no CV was run).
    pub seed: u64,
    /// The cross-validation protocol, when the run evaluated a model.
    pub protocol: Option<Protocol>,
    /// Sweep-cache counters observed by this run, when caching was on.
    pub cache_stats: Option<CacheStats>,
    /// Free-form, tool-specific key/value provenance (sorted by key for
    /// deterministic encoding regardless of insertion order).
    pub extra: Vec<(String, String)>,
    /// Wall-clock duration of the run in milliseconds. Excluded from
    /// [`manifest_hash`](Self::manifest_hash); keep this field last.
    pub wall_time_ms: u64,
}

impl RunManifest {
    /// Builds a manifest for `tool` run against `config` and `model`,
    /// hashing both with the sweep-cache keying primitive.
    pub fn new(tool: &str, config: &ClusterConfig, model: &EnergyModel) -> Self {
        Self {
            tool: tool.to_string(),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            sim_version: pulp_sim::SIM_VERSION,
            model_version: pulp_energy_model::MODEL_VERSION,
            cache_format_version: CACHE_FORMAT_VERSION,
            cache_version: default_cache_version(),
            config_hash: content_hash_hex(config),
            model_hash: content_hash_hex(model),
            seed: 0,
            protocol: None,
            cache_stats: None,
            extra: Vec::new(),
            wall_time_ms: 0,
        }
    }

    /// Sets the evaluation seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Records the CV protocol (also copies its seed).
    #[must_use]
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.seed = protocol.seed;
        self.protocol = Some(protocol);
        self
    }

    /// Records sweep-cache counters.
    #[must_use]
    pub fn with_cache_stats(mut self, stats: CacheStats) -> Self {
        self.cache_stats = Some(stats);
        self
    }

    /// Appends one tool-specific provenance pair, keeping `extra` sorted.
    #[must_use]
    pub fn with_extra(mut self, key: &str, value: impl ToString) -> Self {
        self.extra.push((key.to_string(), value.to_string()));
        self.extra.sort();
        self
    }

    /// Records the wall-clock duration.
    #[must_use]
    pub fn with_wall_time_ms(mut self, ms: u64) -> Self {
        self.wall_time_ms = ms;
        self
    }

    /// FNV-1a hex hash of the manifest with wall time zeroed and the
    /// protocol's `cv_threads` canonicalised to 0: equal hashes mean the
    /// runs had identical provenance, however long they took and however
    /// many worker threads fanned the CV out (predictions are bit-identical
    /// at any `cv_threads`, so thread count is execution detail, not
    /// provenance).
    pub fn manifest_hash(&self) -> String {
        let mut canonical = self.clone();
        canonical.wall_time_ms = 0;
        if let Some(p) = canonical.protocol.as_mut() {
            p.cv_threads = 0;
        }
        content_hash_hex(&canonical)
    }

    /// Pretty JSON encoding (deterministic field order).
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialises")
    }

    /// Writes `manifest.json`-style output at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_json_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> RunManifest {
        RunManifest::new("test", &ClusterConfig::default(), &EnergyModel::table1())
    }

    #[test]
    fn identical_inputs_give_byte_identical_manifests_modulo_wall_time() {
        let a = manifest().with_seed(7).with_wall_time_ms(10);
        let b = manifest().with_seed(7).with_wall_time_ms(9999);
        let strip = |m: &RunManifest| {
            m.to_json_pretty()
                .lines()
                .filter(|l| !l.contains("wall_time_ms"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&a), strip(&b));
        assert_eq!(a.manifest_hash(), b.manifest_hash());
        assert_ne!(
            a.manifest_hash(),
            manifest().with_seed(8).manifest_hash(),
            "seed participates in the hash"
        );
    }

    #[test]
    fn config_hash_matches_cache_keying_inputs() {
        let config = ClusterConfig::default();
        let m = RunManifest::new("t", &config, &EnergyModel::table1());
        assert_eq!(m.config_hash, content_hash_hex(&config));
        let other = config.clone().with_cores(4);
        let m2 = RunManifest::new("t", &other, &EnergyModel::table1());
        assert_ne!(m.config_hash, m2.config_hash);
        assert_eq!(m.model_hash, m2.model_hash);
    }

    #[test]
    fn round_trips_through_json() {
        let m = manifest()
            .with_protocol(Protocol::default())
            .with_cache_stats(CacheStats {
                hits: 3,
                misses: 1,
                invalidations: 0,
            })
            .with_extra("accuracy", "0.875")
            .with_wall_time_ms(12);
        let back: RunManifest = serde_json::from_str(&m.to_json_pretty()).expect("manifest parses");
        assert_eq!(m, back);
    }

    #[test]
    fn extra_is_sorted_regardless_of_insertion_order() {
        let a = manifest().with_extra("b", 2).with_extra("a", 1);
        let b = manifest().with_extra("a", 1).with_extra("b", 2);
        assert_eq!(a.to_json_pretty(), b.to_json_pretty());
    }

    #[test]
    fn manifest_hash_ignores_cv_thread_count() {
        // The CV fan-out is bit-identical at any thread count, so two runs
        // differing only in `cv_threads` have the same provenance — and the
        // same hash (also what keeps `bench models` records byte-identical
        // across `--cv-threads`).
        let at = |threads: usize| {
            manifest().with_protocol(Protocol {
                cv_threads: threads,
                ..Protocol::default()
            })
        };
        assert_eq!(at(1).manifest_hash(), at(4).manifest_hash());
        assert_ne!(at(1).to_json_pretty(), at(4).to_json_pretty());
    }

    #[test]
    fn manifest_hash_golden_value_is_stable() {
        // Golden pin: the hash of a fully deterministic manifest (default
        // config/model, fixed seed, no wall time). This only moves when
        // something that *should* invalidate provenance moves — a version
        // constant, the config/model encoding, or the hash itself. Update
        // the constant deliberately when one of those changes.
        let m = manifest().with_seed(42).with_extra("quick", false);
        // Moved with MODEL_VERSION 1 → 2 (model-zoo/flat-inference release).
        assert_eq!(m.manifest_hash(), "43871660d1e98262");
        // Wall time must not move the golden value.
        assert_eq!(
            m.clone().with_wall_time_ms(123_456).manifest_hash(),
            m.manifest_hash()
        );
    }

    #[test]
    fn versions_reflect_build_constants() {
        let m = manifest();
        assert_eq!(m.sim_version, pulp_sim::SIM_VERSION);
        assert_eq!(m.model_version, pulp_energy_model::MODEL_VERSION);
        assert!(m
            .cache_version
            .contains(&format!("fmt{CACHE_FORMAT_VERSION}")));
    }
}

//! The deployable predictor — the paper's end product.
//!
//! [`EnergyPredictor`] packages a trained decision tree together with the
//! feature recipe it was trained on, so a compiler or build system can
//! pick the minimum-energy core count of a new kernel **at compile time**
//! ("automatic system configuration for energy minimisation", as the
//! abstract puts it). Predictors serialise to JSON for embedding in a
//! toolchain.

use crate::features::{static_feature_vector, StaticFeatureSet};
use crate::labeling::NUM_CLASSES;
use crate::pipeline::LabeledDataset;
use kernel_ir::Kernel;
use pulp_ml::{DatasetError, DecisionTree, FlatModel, TreeParams};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced when building or loading a predictor.
#[derive(Debug)]
pub enum PredictorError {
    /// The training data could not be assembled.
    Dataset(DatasetError),
    /// A serialised predictor could not be parsed.
    Parse(serde_json::Error),
    /// A caller-supplied feature vector has the wrong width.
    FeatureWidth {
        /// Width the predictor was trained against (full static vector).
        expected: usize,
        /// Width the caller supplied.
        got: usize,
    },
}

impl fmt::Display for PredictorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Dataset(e) => write!(f, "training data: {e}"),
            Self::Parse(e) => write!(f, "predictor deserialisation: {e}"),
            Self::FeatureWidth { expected, got } => write!(
                f,
                "feature vector has {got} dims, expected the full static vector ({expected})"
            ),
        }
    }
}

impl std::error::Error for PredictorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Dataset(e) => Some(e),
            Self::Parse(e) => Some(e),
            Self::FeatureWidth { .. } => None,
        }
    }
}

impl From<DatasetError> for PredictorError {
    fn from(e: DatasetError) -> Self {
        Self::Dataset(e)
    }
}

/// Descriptive metadata of a trained [`EnergyPredictor`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorMetadata {
    /// Feature family name (`RAW`, `AGG`, `MCA`, `RAW+AGG`, `ALL`).
    pub feature_set: String,
    /// Number of input features after column selection.
    pub n_features: usize,
    /// Number of output classes (core counts).
    pub n_classes: usize,
    /// Fitted tree depth.
    pub tree_depth: usize,
    /// Fitted tree node count.
    pub tree_nodes: usize,
    /// Configured depth cap.
    pub max_depth: usize,
}

/// A trained, serialisable minimum-energy-configuration predictor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyPredictor {
    tree: DecisionTree,
    feature_set: StaticFeatureSet,
    /// Columns of the full static vector this predictor consumes (after
    /// optional importance pruning).
    columns: Vec<usize>,
    feature_names: Vec<String>,
    /// Quantized flat compilation of `tree` — derived state, rebuilt
    /// deterministically from the tree on load so the two can never
    /// drift. The batch path walks this instead of the boxed float tree.
    flat: FlatModel,
}

impl EnergyPredictor {
    /// Trains a predictor on a measured dataset using one static feature
    /// family.
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset's feature matrices are
    /// inconsistent.
    pub fn train(
        data: &LabeledDataset,
        feature_set: StaticFeatureSet,
        params: TreeParams,
    ) -> Result<Self, PredictorError> {
        Self::train_on_columns(data, feature_set, feature_set.columns(), params)
    }

    /// Trains on an explicit column subset of the full static vector (the
    /// paper's "optimised" pruned classifier).
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset's feature matrices are
    /// inconsistent.
    ///
    /// # Panics
    ///
    /// Panics if a column index exceeds the full static vector width.
    pub fn train_on_columns(
        data: &LabeledDataset,
        feature_set: StaticFeatureSet,
        columns: Vec<usize>,
        params: TreeParams,
    ) -> Result<Self, PredictorError> {
        let full = data.static_dataset_all()?;
        let projected = full.select_features(&columns);
        let mut tree = DecisionTree::new(params);
        tree.fit(&projected);
        let flat = FlatModel::from_tree(&tree);
        Ok(Self {
            tree,
            feature_set,
            feature_names: projected.feature_names().to_vec(),
            columns,
            flat,
        })
    }

    /// Predicts the minimum-energy core count (1..=8) of `kernel` from
    /// its static features only — no simulation involved.
    pub fn predict_cores(&self, kernel: &Kernel) -> usize {
        let full = static_feature_vector(kernel);
        self.predict_cores_from_static(&full)
            .expect("static_feature_vector width matches training")
    }

    /// Predicts the minimum-energy core count (1..=8) from a caller-built
    /// **full** static feature vector (the 20-dim layout of
    /// [`static_feature_vector`]) — the single-sample path the prediction
    /// service uses when features arrive over the wire rather than from a
    /// [`Kernel`].
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::FeatureWidth`] when `full` does not cover
    /// every column this predictor was trained on.
    pub fn predict_cores_from_static(&self, full: &[f64]) -> Result<usize, PredictorError> {
        let width = crate::features::static_feature_names().len();
        if full.len() != width {
            return Err(PredictorError::FeatureWidth {
                expected: width,
                got: full.len(),
            });
        }
        let projected: Vec<f64> = self.columns.iter().map(|&c| full[c]).collect();
        Ok(self.tree.predict(&projected) + 1)
    }

    /// Predicts the minimum-energy core count (1..=8) for a batch of
    /// caller-built **full** static feature vectors — the `/predict/batch`
    /// path of the prediction service. The whole batch is validated up
    /// front, then every row walks the **quantized flat compilation** of
    /// the tree ([`pulp_ml::FlatModel`]): contiguous breadth-first node
    /// arrays with integer compares, reusing one projection and one
    /// quantization scratch buffer across rows.
    ///
    /// Flat decisions are bit-exact against the float tree for any input
    /// on the quantization grid (see `pulp_ml::flat`), which covers every
    /// feature vector the pipeline produces; the dataset-wide equality is
    /// pinned by tests and by `bench models`' mismatch gate.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::FeatureWidth`] naming the first row whose
    /// width does not cover every trained column; no row is predicted
    /// until all widths check out.
    pub fn predict_cores_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<usize>, PredictorError> {
        let width = crate::features::static_feature_names().len();
        if let Some(bad) = rows.iter().find(|r| r.len() != width) {
            return Err(PredictorError::FeatureWidth {
                expected: width,
                got: bad.len(),
            });
        }
        let mut projected = vec![0.0; self.columns.len()];
        let mut scratch = Vec::with_capacity(self.columns.len());
        Ok(rows
            .iter()
            .map(|full| {
                for (dst, &c) in projected.iter_mut().zip(&self.columns) {
                    *dst = full[c];
                }
                self.flat.predict_with(&mut scratch, &projected) + 1
            })
            .collect())
    }

    /// [`predict_cores_batch`](Self::predict_cores_batch) through the
    /// float reference tree instead of the flat compilation — the
    /// baseline the serve benchmark compares the flat hot path against,
    /// and the oracle for mismatch counting in `bench models`.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::FeatureWidth`] exactly like the flat
    /// path.
    pub fn predict_cores_batch_float(
        &self,
        rows: &[Vec<f64>],
    ) -> Result<Vec<usize>, PredictorError> {
        let width = crate::features::static_feature_names().len();
        if let Some(bad) = rows.iter().find(|r| r.len() != width) {
            return Err(PredictorError::FeatureWidth {
                expected: width,
                got: bad.len(),
            });
        }
        let mut projected = vec![0.0; self.columns.len()];
        Ok(rows
            .iter()
            .map(|full| {
                for (dst, &c) in projected.iter_mut().zip(&self.columns) {
                    *dst = full[c];
                }
                self.tree.predict(&projected) + 1
            })
            .collect())
    }

    /// The quantized flat compilation backing the batch path.
    pub fn flat(&self) -> &FlatModel {
        &self.flat
    }

    /// Serialisable description of the trained model — what a service
    /// exposes as `pulp_model_info` metric labels and what reports embed
    /// as provenance.
    pub fn metadata(&self) -> PredictorMetadata {
        PredictorMetadata {
            feature_set: self.feature_set.name().to_string(),
            n_features: self.columns.len(),
            n_classes: NUM_CLASSES,
            tree_depth: self.tree.depth(),
            tree_nodes: self.tree.node_count(),
            max_depth: self.tree.params().max_depth,
        }
    }

    /// The feature names this predictor consumes.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The learned decision rules, rendered for inspection.
    pub fn rules(&self) -> String {
        self.tree.render(&self.feature_names)
    }

    /// Serialises the predictor to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("predictor is serialisable")
    }

    /// Loads a predictor from its JSON form.
    ///
    /// The flat compilation is rebuilt from the deserialised tree rather
    /// than trusted from the wire: compilation is deterministic, so a
    /// faithful encoding round-trips to an equal predictor, while a
    /// hand-edited `flat` section can never desynchronise the two
    /// prediction paths.
    ///
    /// # Errors
    ///
    /// Returns an error when the JSON does not describe a predictor.
    pub fn from_json(text: &str) -> Result<Self, PredictorError> {
        let mut p: Self = serde_json::from_str(text).map_err(PredictorError::Parse)?;
        p.flat = FlatModel::from_tree(&p.tree);
        Ok(p)
    }

    /// Number of output classes.
    pub fn n_classes(&self) -> usize {
        NUM_CLASSES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineOptions;

    fn data() -> LabeledDataset {
        LabeledDataset::build(&PipelineOptions::quick(&[
            "vec_scale",
            "fpu_storm",
            "bank_hammer",
            "compute_dense",
        ]))
        .expect("dataset")
    }

    fn sample_kernel() -> Kernel {
        pulp_kernels::registry()
            .into_iter()
            .find(|d| d.name == "stream_copy")
            .expect("kernel")
            .build(&pulp_kernels::KernelParams::new(
                kernel_ir::DType::I32,
                2048,
            ))
            .expect("build")
    }

    #[test]
    fn trains_and_predicts_in_range() {
        let p = EnergyPredictor::train(&data(), StaticFeatureSet::All, TreeParams::default())
            .expect("train");
        let cores = p.predict_cores(&sample_kernel());
        assert!((1..=8).contains(&cores), "prediction out of range: {cores}");
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let d = data();
        let p = EnergyPredictor::train(&d, StaticFeatureSet::All, TreeParams::default())
            .expect("train");
        let restored = EnergyPredictor::from_json(&p.to_json()).expect("load");
        assert_eq!(p, restored);
        let k = sample_kernel();
        assert_eq!(p.predict_cores(&k), restored.predict_cores(&k));
    }

    #[test]
    fn pruned_predictor_uses_selected_columns() {
        let d = data();
        let p = EnergyPredictor::train_on_columns(
            &d,
            StaticFeatureSet::All,
            vec![3, 6], // avgws, F4
            TreeParams::default(),
        )
        .expect("train");
        assert_eq!(p.feature_names(), &["avgws".to_string(), "F4".to_string()]);
        let _ = p.predict_cores(&sample_kernel());
    }

    #[test]
    fn rules_mention_trained_features() {
        let d = data();
        let p = EnergyPredictor::train(&d, StaticFeatureSet::Agg, TreeParams::default())
            .expect("train");
        let rules = p.rules();
        assert!(
            rules.contains("F1") || rules.contains("F3") || rules.contains("F4"),
            "rules:\n{rules}"
        );
    }

    #[test]
    fn static_vector_path_matches_kernel_path() {
        let p = EnergyPredictor::train(&data(), StaticFeatureSet::All, TreeParams::default())
            .expect("train");
        let k = sample_kernel();
        let full = static_feature_vector(&k);
        assert_eq!(
            p.predict_cores_from_static(&full).expect("width ok"),
            p.predict_cores(&k)
        );
        let err = p.predict_cores_from_static(&full[..5]).unwrap_err();
        assert!(matches!(
            err,
            PredictorError::FeatureWidth {
                expected: 20,
                got: 5
            }
        ));
    }

    #[test]
    fn batch_prediction_is_bit_identical_to_sequential() {
        let d = data();
        let p = EnergyPredictor::train(&d, StaticFeatureSet::All, TreeParams::default())
            .expect("train");
        // A mix of real kernels and synthetic vectors.
        let mut rows: Vec<Vec<f64>> = vec![static_feature_vector(&sample_kernel())];
        for seed in 0..5 {
            rows.push(
                (0..20)
                    .map(|i| (i as f64) * 1.5 + f64::from(seed))
                    .collect(),
            );
        }
        let batch = p.predict_cores_batch(&rows).expect("batch predicts");
        let sequential: Vec<usize> = rows
            .iter()
            .map(|r| p.predict_cores_from_static(r).expect("row predicts"))
            .collect();
        assert_eq!(batch, sequential);
        // Works for pruned-column predictors too.
        let pruned = EnergyPredictor::train_on_columns(
            &d,
            StaticFeatureSet::All,
            vec![3, 6],
            TreeParams::default(),
        )
        .expect("train");
        assert_eq!(
            pruned.predict_cores_batch(&rows).expect("batch"),
            rows.iter()
                .map(|r| pruned.predict_cores_from_static(r).expect("row"))
                .collect::<Vec<_>>()
        );
        // Empty batches are fine; a bad row fails the whole batch up front.
        assert!(p.predict_cores_batch(&[]).expect("empty").is_empty());
        let bad = vec![vec![1.0; 20], vec![1.0; 3]];
        assert!(matches!(
            p.predict_cores_batch(&bad).unwrap_err(),
            PredictorError::FeatureWidth {
                expected: 20,
                got: 3
            }
        ));
    }

    #[test]
    fn flat_batch_is_bit_exact_vs_float_reference() {
        // The quantized flat path must agree with the float tree on every
        // sample the pipeline produces (the full-dataset version of this
        // check is `bench models`' mismatch gate) and on the kernel path.
        let d = data();
        let p = EnergyPredictor::train(&d, StaticFeatureSet::All, TreeParams::default())
            .expect("train");
        let full = d.static_dataset_all().expect("static dataset");
        let rows: Vec<Vec<f64>> = (0..full.len()).map(|i| full.row(i).to_vec()).collect();
        assert_eq!(
            p.predict_cores_batch(&rows).expect("flat batch"),
            p.predict_cores_batch_float(&rows).expect("float batch"),
            "flat and float paths diverged on pipeline samples"
        );
        assert!(p.flat().n_nodes() >= 1);
        assert_eq!(p.flat().n_trees(), 1);
        // Width validation is shared between the two paths.
        let bad = vec![vec![0.0; 3]];
        assert!(p.predict_cores_batch_float(&bad).is_err());
    }

    #[test]
    fn metadata_describes_the_trained_tree() {
        let p = EnergyPredictor::train(&data(), StaticFeatureSet::Agg, TreeParams::default())
            .expect("train");
        let meta = p.metadata();
        assert_eq!(meta.feature_set, "AGG");
        assert_eq!(meta.n_features, 3);
        assert_eq!(meta.n_classes, 8);
        assert!(meta.tree_nodes >= 1 && meta.tree_depth <= meta.max_depth);
    }

    #[test]
    fn rejects_garbage_json() {
        assert!(EnergyPredictor::from_json("not json").is_err());
        assert!(EnergyPredictor::from_json("{}").is_err());
    }

    #[test]
    fn predictor_matches_feature_set_width() {
        let d = data();
        let p = EnergyPredictor::train(&d, StaticFeatureSet::Agg, TreeParams::default())
            .expect("train");
        assert_eq!(p.feature_names().len(), 3);
        assert_eq!(p.n_classes(), 8);
    }
}

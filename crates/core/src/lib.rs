//! # pulp-energy — source-code classification for energy efficiency
//!
//! End-to-end reproduction of *"Source Code Classification for Energy
//! Efficiency in Parallel Ultra Low-Power Microcontrollers"* (DATE 2021):
//! predicting, from **static source-code features only**, the number of
//! PULP cluster cores (1–8) that minimises a kernel's energy.
//!
//! The crate wires the substrates together:
//!
//! * [`pulp_kernels`] — the 59-kernel Polybench/UTDSP/custom dataset;
//! * [`kernel_ir`] — static RAW/AGG features and OpenMP-style lowering;
//! * [`pulp_mca`] — LLVM-MCA-style static port-pressure features;
//! * [`pulp_sim`] — the cycle-level PULP cluster simulator (GVSOC stand-in);
//! * [`pulp_energy_model`] — the Table-I energy model and dynamic features;
//! * [`pulp_ml`] — decision tree, random forest and the CV protocol.
//!
//! The workflow (paper Figure 1) is: extract static features (A), simulate
//! each sample at 1..=8 cores (B, C), apply the energy model (D), label
//! with the arg-min-energy core count (E) and train/evaluate the decision
//! tree (F). [`LabeledDataset::build`] runs A–E;
//! [`evaluation::tolerance_curve`] runs F under the paper's repeated
//! stratified cross-validation with an energy-waste tolerance sweep.
//!
//! # Examples
//!
//! Label a small kernel subset and evaluate static-feature classification:
//!
//! ```
//! use pulp_energy::{
//!     evaluation::{always_n_curve, tolerance_curve, Protocol},
//!     features::StaticFeatureSet,
//!     pipeline::{LabeledDataset, PipelineOptions},
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = LabeledDataset::build(&PipelineOptions::quick(&[
//!     "vec_scale", "fpu_storm", "bank_hammer",
//! ]))?;
//! let agg = data.static_dataset(StaticFeatureSet::Agg)?;
//! let tolerances = vec![0.0, 0.05];
//! let curve = tolerance_curve("AGG", &agg, &data.energies(), &tolerances, &Protocol::quick());
//! let naive = always_n_curve(8, &data.energies(), &tolerances);
//! assert!(curve.at(0.05).expect("grid") >= 0.0 && naive.at(0.05).expect("grid") <= 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod evaluation;
pub mod features;
pub mod labeling;
pub mod manifest;
pub mod pipeline;
pub mod predictor;
pub mod report;

pub use cache::{content_hash_hex, default_cache_version, CacheDirStats, CacheStats, SweepCache};
pub use evaluation::{
    always_n_curve, default_tolerances, rank_features, tolerance_curve,
    tolerance_curve_instrumented, tolerance_curve_with_metrics, top_feature_columns, Protocol,
    RankedFeature, ToleranceCurve,
};
pub use features::{
    dynamic_feature_names, dynamic_feature_vector, static_feature_names, static_feature_vector,
    StaticFeatureSet,
};
pub use labeling::{
    measure_kernel, measure_kernel_budgeted, measure_kernel_cached, measure_kernel_cached_scratch,
    measure_kernel_instrumented, measure_kernel_instrumented_scratch, measure_kernel_scratch,
    measure_kernels_sharded, measure_kernels_sharded_observed, EnergyProfile, MeasureError,
    SweepObserver, SweepProgress, SweepSnapshot, NUM_CLASSES,
};
pub use manifest::RunManifest;
pub use pipeline::{
    BuildDatasetError, BuildObserver, LabeledDataset, PipelineOptions, SampleRecord,
};
pub use predictor::{EnergyPredictor, PredictorError, PredictorMetadata};

//! Feature-vector assembly for the classifier.
//!
//! Static features concatenate the RAW/AGG family (Table II(a)) with the
//! MCA family (Table II(b)); dynamic features concatenate the Table-III
//! vector across the eight team sizes (Table IV indexes importances by
//! `(feature, PEs)` pairs accordingly).

use crate::labeling::{EnergyProfile, NUM_CLASSES};
use kernel_ir::{AggFeatures, Kernel, RawFeatures};
use pulp_energy_model::DYNAMIC_FEATURE_NAMES;
use pulp_mca::{analyze_kernel, MCA_FEATURE_NAMES};
use serde::{Deserialize, Serialize};

/// Which static feature family feeds the decision tree (the x-axis of the
/// right plot of Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StaticFeatureSet {
    /// RAW counts only (`op`, `tcdm`, `transfer`, `avgws`).
    Raw,
    /// Grewe-style aggregates only (`F1`, `F3`, `F4`).
    Agg,
    /// Machine-code-analyser features only (13 dims).
    Mca,
    /// RAW + AGG.
    RawAgg,
    /// Everything (20 dims).
    All,
}

impl StaticFeatureSet {
    /// All families in presentation order.
    pub const ALL_SETS: [StaticFeatureSet; 5] = [
        StaticFeatureSet::Raw,
        StaticFeatureSet::Agg,
        StaticFeatureSet::Mca,
        StaticFeatureSet::RawAgg,
        StaticFeatureSet::All,
    ];

    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            StaticFeatureSet::Raw => "RAW",
            StaticFeatureSet::Agg => "AGG",
            StaticFeatureSet::Mca => "MCA",
            StaticFeatureSet::RawAgg => "RAW+AGG",
            StaticFeatureSet::All => "ALL",
        }
    }

    /// Column indices of this family within the full static vector.
    pub fn columns(self) -> Vec<usize> {
        match self {
            StaticFeatureSet::Raw => (0..4).collect(),
            StaticFeatureSet::Agg => (4..7).collect(),
            StaticFeatureSet::Mca => (7..20).collect(),
            StaticFeatureSet::RawAgg => (0..7).collect(),
            StaticFeatureSet::All => (0..20).collect(),
        }
    }
}

/// Names of the full 20-dimensional static feature vector.
pub fn static_feature_names() -> Vec<String> {
    let mut names = vec![
        "op".to_string(),
        "tcdm".to_string(),
        "transfer".to_string(),
        "avgws".to_string(),
        "F1".to_string(),
        "F3".to_string(),
        "F4".to_string(),
    ];
    names.extend(MCA_FEATURE_NAMES.iter().map(|s| s.to_string()));
    names
}

/// Extracts the full static vector of one kernel (RAW, AGG, MCA).
pub fn static_feature_vector(kernel: &Kernel) -> Vec<f64> {
    let raw = RawFeatures::extract(kernel);
    let agg = AggFeatures::from_raw(&raw);
    let mca = analyze_kernel(kernel);
    let mut v = vec![
        raw.op as f64,
        raw.tcdm as f64,
        raw.transfer as f64,
        raw.avgws,
        agg.f1,
        agg.f3,
        agg.f4,
    ];
    v.extend(mca.to_vec());
    v
}

/// Names of the 80-dimensional dynamic vector (`<feature>@<PEs>`).
pub fn dynamic_feature_names() -> Vec<String> {
    let mut names = Vec::with_capacity(DYNAMIC_FEATURE_NAMES.len() * NUM_CLASSES);
    for team in 1..=NUM_CLASSES {
        for f in DYNAMIC_FEATURE_NAMES {
            names.push(format!("{f}@{team}"));
        }
    }
    names
}

/// Flattens a sample's per-team dynamic features into one vector aligned
/// with [`dynamic_feature_names`].
pub fn dynamic_feature_vector(profile: &EnergyProfile) -> Vec<f64> {
    let mut v = Vec::with_capacity(DYNAMIC_FEATURE_NAMES.len() * profile.dynamic.len());
    for d in &profile.dynamic {
        v.extend(d.to_vec());
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::{DType, KernelBuilder, Suite};

    fn kernel() -> Kernel {
        let mut b = KernelBuilder::new("k", Suite::Custom, DType::F32, 1024);
        let x = b.array("x", 256);
        b.par_for(256, |b, i| {
            b.load(x, i);
            b.compute(2);
            b.store(x, i);
        });
        b.build().expect("valid")
    }

    #[test]
    fn static_vector_matches_names() {
        let v = static_feature_vector(&kernel());
        assert_eq!(v.len(), static_feature_names().len());
        assert_eq!(v.len(), 20);
    }

    #[test]
    fn feature_set_columns_partition_the_vector() {
        let mut all: Vec<usize> = StaticFeatureSet::Raw
            .columns()
            .into_iter()
            .chain(StaticFeatureSet::Agg.columns())
            .chain(StaticFeatureSet::Mca.columns())
            .collect();
        all.sort_unstable();
        assert_eq!(all, StaticFeatureSet::All.columns());
    }

    #[test]
    fn raw_block_reflects_kernel() {
        let v = static_feature_vector(&kernel());
        // op = 2 fp + 1 region jump; tcdm = 2; transfer = 1024; avgws = 256.
        assert_eq!(v[0], 3.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 1024.0);
        assert_eq!(v[3], 256.0);
    }

    #[test]
    fn dynamic_names_cover_all_team_sizes() {
        let names = dynamic_feature_names();
        assert_eq!(names.len(), 80);
        assert!(names.contains(&"PE_sleep@2".to_string()));
        assert!(names.contains(&"L1_conflicts@8".to_string()));
    }
}

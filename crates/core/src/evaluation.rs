//! The paper's evaluation protocol: repeated stratified cross-validation
//! scored under an energy-waste tolerance sweep (Figure 2), plus feature
//! importance ranking and pruning (Table IV and the "optimised"
//! classifier).

use crate::labeling::NUM_CLASSES;
use pulp_ml::{
    cv::repeated_cross_val_predict_instrumented, mean_std, tolerance_accuracy, Dataset,
    DecisionTree, TreeParams,
};
use serde::{Deserialize, Serialize};

/// Default tolerance grid (0%..=20%), matching Figure 2's x-axis.
pub fn default_tolerances() -> Vec<f64> {
    (0..=20).map(|t| t as f64 / 100.0).collect()
}

/// Accuracy as a function of energy-waste tolerance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToleranceCurve {
    /// Display label (e.g. the feature-set name).
    pub label: String,
    /// Tolerance grid (fractional).
    pub tolerances: Vec<f64>,
    /// Mean accuracy per tolerance across CV repetitions.
    pub mean: Vec<f64>,
    /// Sample standard deviation per tolerance.
    pub std: Vec<f64>,
}

impl ToleranceCurve {
    /// Mean accuracy at the finite tolerance closest to `t`, or `None` for
    /// an empty grid (or one containing only non-finite tolerances).
    ///
    /// Curves built through [`curve_from_predictions`] have their grid
    /// sanitised at construction, so `None` only ever signals a curve that
    /// was empty to begin with — it used to be a panic deep inside an
    /// experiment binary.
    pub fn at(&self, t: f64) -> Option<f64> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &tol) in self.tolerances.iter().enumerate() {
            if !tol.is_finite() {
                continue;
            }
            let d = (tol - t).abs();
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best.and_then(|(i, _)| self.mean.get(i).copied())
    }
}

/// Drops non-finite entries from a tolerance grid, warning when anything
/// is discarded. Called at curve construction so [`ToleranceCurve::at`]
/// and the accuracy sweep only ever see finite thresholds.
fn sanitize_tolerances(tolerances: &[f64]) -> Vec<f64> {
    let finite: Vec<f64> = tolerances
        .iter()
        .copied()
        .filter(|t| t.is_finite())
        .collect();
    if finite.len() < tolerances.len() {
        eprintln!(
            "[evaluation] warning: dropped {} non-finite tolerance(s) from the grid",
            tolerances.len() - finite.len()
        );
    }
    finite
}

/// Evaluation protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Protocol {
    /// Cross-validation folds (paper: 10).
    pub folds: usize,
    /// Seeded repetitions (paper: 100).
    pub repeats: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Tree hyperparameters.
    pub tree: TreeParams,
    /// Worker threads for the repeated-CV fan-out (`0` = all cores;
    /// predictions are bit-identical at any value).
    pub cv_threads: usize,
}

impl Default for Protocol {
    fn default() -> Self {
        Self {
            folds: 10,
            repeats: 100,
            seed: 0,
            tree: TreeParams::default(),
            cv_threads: 0,
        }
    }
}

impl Protocol {
    /// A faster protocol for tests and demos (5 folds × 5 repeats).
    pub fn quick() -> Self {
        Self {
            folds: 5,
            repeats: 5,
            ..Self::default()
        }
    }
}

/// Runs the full protocol on `data`, scoring against `energies` over
/// `tolerances`.
///
/// Out-of-fold predictions are computed once per repetition; every
/// tolerance is then evaluated on the same predictions (exactly how the
/// paper sweeps its threshold).
pub fn tolerance_curve(
    label: impl Into<String>,
    data: &Dataset,
    energies: &[Vec<f64>],
    tolerances: &[f64],
    protocol: &Protocol,
) -> ToleranceCurve {
    let mut rec = pulp_obs::Recorder::new();
    tolerance_curve_instrumented(label, data, energies, tolerances, protocol, &mut rec)
}

/// [`tolerance_curve`] that folds the recorded evaluation telemetry into
/// a [`MetricsRegistry`](pulp_obs::MetricsRegistry) as
/// `pulp_eval_stage_ticks` histograms — the online counterpart of
/// [`tolerance_curve_instrumented`] for services exposing `/metrics`.
pub fn tolerance_curve_with_metrics(
    label: impl Into<String>,
    data: &Dataset,
    energies: &[Vec<f64>],
    tolerances: &[f64],
    protocol: &Protocol,
    metrics: &mut pulp_obs::MetricsRegistry,
) -> ToleranceCurve {
    let mut rec = pulp_obs::Recorder::new();
    let curve = tolerance_curve_instrumented(label, data, energies, tolerances, protocol, &mut rec);
    metrics.observe_recorder("pulp_eval", &rec);
    curve
}

/// [`tolerance_curve`] with stage telemetry: records a `cv_predict` span
/// around the repeated cross-validation and a `score` span around the
/// tolerance sweep.
pub fn tolerance_curve_instrumented(
    label: impl Into<String>,
    data: &Dataset,
    energies: &[Vec<f64>],
    tolerances: &[f64],
    protocol: &Protocol,
    rec: &mut pulp_obs::Recorder,
) -> ToleranceCurve {
    let label = label.into();
    let cv = rec.start_cat(&format!("cv_predict {label}"), "evaluate");
    rec.annotate(cv, "folds", protocol.folds);
    rec.annotate(cv, "repeats", protocol.repeats);
    rec.annotate(cv, "cv_threads", protocol.cv_threads);
    let reps = repeated_cross_val_predict_instrumented(
        data,
        protocol.folds,
        protocol.repeats,
        protocol.seed,
        protocol.cv_threads,
        rec,
        |_seed| DecisionTree::new(protocol.tree),
    );
    rec.end(cv);
    let score = rec.start_cat(&format!("score {label}"), "evaluate");
    rec.annotate(score, "tolerances", tolerances.len());
    let curve = curve_from_predictions(label, &reps, energies, tolerances);
    rec.end(score);
    curve
}

/// Builds a curve from precomputed per-repetition predictions.
pub fn curve_from_predictions(
    label: impl Into<String>,
    reps: &[Vec<usize>],
    energies: &[Vec<f64>],
    tolerances: &[f64],
) -> ToleranceCurve {
    let tolerances = sanitize_tolerances(tolerances);
    let mut mean = Vec::with_capacity(tolerances.len());
    let mut std = Vec::with_capacity(tolerances.len());
    for &t in &tolerances {
        let accs: Vec<f64> = reps
            .iter()
            .map(|preds| tolerance_accuracy(preds, energies, t))
            .collect();
        let (m, s) = mean_std(&accs);
        mean.push(m);
        std.push(s);
    }
    ToleranceCurve {
        label: label.into(),
        tolerances,
        mean,
        std,
    }
}

/// The naive "always-N" policy curve (the paper compares to always-8).
pub fn always_n_curve(cores: usize, energies: &[Vec<f64>], tolerances: &[f64]) -> ToleranceCurve {
    assert!((1..=NUM_CLASSES).contains(&cores), "cores out of range");
    let preds = vec![vec![cores - 1; energies.len()]];
    curve_from_predictions(format!("always-{cores}"), &preds, energies, tolerances)
}

/// One feature with its importance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedFeature {
    /// Feature name.
    pub name: String,
    /// Column in the source dataset.
    pub column: usize,
    /// Normalised importance.
    pub importance: f64,
}

/// Ranks features by decision-tree importance, averaged over `repeats`
/// stratified refits (subsampling via CV folds stabilises the ranking the
/// same way the paper's repeated protocol does).
pub fn rank_features(data: &Dataset, protocol: &Protocol) -> Vec<RankedFeature> {
    let mut total = vec![0.0f64; data.n_features()];
    let repeats = protocol.repeats.max(1);
    for r in 0..repeats {
        let folds =
            pulp_ml::stratified_folds(data.labels(), protocol.folds, protocol.seed + r as u64);
        // Train on all but the first fold — a (k-1)/k subsample per seed.
        let rows: Vec<usize> = folds.iter().skip(1).flatten().copied().collect();
        if rows.is_empty() {
            continue;
        }
        let mut tree = DecisionTree::new(protocol.tree);
        tree.fit_rows(data, &rows);
        for (c, imp) in tree.feature_importances().iter().enumerate() {
            total[c] += imp;
        }
    }
    let norm: f64 = total.iter().sum();
    let mut ranked: Vec<RankedFeature> = total
        .into_iter()
        .enumerate()
        .map(|(column, imp)| RankedFeature {
            name: data.feature_names()[column].clone(),
            column,
            importance: if norm > 0.0 { imp / norm } else { 0.0 },
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.importance
            .partial_cmp(&a.importance)
            .expect("finite importances")
    });
    ranked
}

/// Columns of the `n` most important features of `data` (the paper's
/// pruning step producing the "optimised" classifier).
pub fn top_feature_columns(data: &Dataset, n: usize, protocol: &Protocol) -> Vec<usize> {
    rank_features(data, protocol)
        .into_iter()
        .take(n)
        .map(|r| r.column)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic task: label = argmin energy; feature 0 encodes the label
    /// noisily, feature 1 is noise.
    fn synthetic(n: usize) -> (Dataset, Vec<Vec<f64>>) {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        let mut energies = Vec::new();
        for i in 0..n {
            let class = i % 4;
            features.push(vec![
                class as f64 + ((i * 7) % 3) as f64 * 0.1,
                (i % 5) as f64,
            ]);
            labels.push(class);
            // Energy grows with distance from the optimal class.
            let e: Vec<f64> = (0..NUM_CLASSES)
                .map(|c| 10.0 + (c as f64 - class as f64).abs())
                .collect();
            energies.push(e);
        }
        let data = Dataset::new(
            features,
            labels,
            vec!["signal".into(), "noise".into()],
            NUM_CLASSES,
        )
        .expect("dataset");
        (data, energies)
    }

    #[test]
    fn curve_is_monotone_in_tolerance() {
        let (data, energies) = synthetic(120);
        let tol = default_tolerances();
        let c = tolerance_curve("test", &data, &energies, &tol, &Protocol::quick());
        for w in c.mean.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "curve must be non-decreasing: {:?}",
                c.mean
            );
        }
    }

    #[test]
    fn learned_curve_beats_always_8_on_structured_task() {
        let (data, energies) = synthetic(120);
        let tol = vec![0.0, 0.05];
        let learned = tolerance_curve("tree", &data, &energies, &tol, &Protocol::quick());
        let naive = always_n_curve(8, &energies, &tol);
        assert!(learned.at(0.0).expect("grid") > naive.at(0.0).expect("grid"));
    }

    #[test]
    fn always_n_rejects_bad_core_counts() {
        let energies = vec![vec![1.0; NUM_CLASSES]];
        let c = always_n_curve(8, &energies, &[0.0]);
        assert_eq!(c.label, "always-8");
    }

    #[test]
    #[should_panic(expected = "cores out of range")]
    fn always_0_panics() {
        let energies = vec![vec![1.0; NUM_CLASSES]];
        let _ = always_n_curve(0, &energies, &[0.0]);
    }

    #[test]
    fn ranking_puts_signal_first() {
        let (data, _) = synthetic(120);
        let ranked = rank_features(&data, &Protocol::quick());
        assert_eq!(ranked[0].name, "signal");
        assert!(ranked[0].importance > ranked[1].importance);
        let total: f64 = ranked.iter().map(|r| r.importance).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_columns_select_the_best() {
        let (data, _) = synthetic(120);
        assert_eq!(top_feature_columns(&data, 1, &Protocol::quick()), vec![0]);
    }

    #[test]
    fn curve_at_finds_nearest_tolerance() {
        let c = ToleranceCurve {
            label: "x".into(),
            tolerances: vec![0.0, 0.05, 0.10],
            mean: vec![0.5, 0.7, 0.9],
            std: vec![0.0; 3],
        };
        assert_eq!(c.at(0.051), Some(0.7));
        assert_eq!(c.at(1.0), Some(0.9));
    }

    #[test]
    fn curve_at_survives_empty_and_nan_grids() {
        // Regression: both shapes used to panic inside `min_by`.
        let empty = ToleranceCurve {
            label: "empty".into(),
            tolerances: Vec::new(),
            mean: Vec::new(),
            std: Vec::new(),
        };
        assert_eq!(empty.at(0.05), None);

        let nan_grid = ToleranceCurve {
            label: "nan".into(),
            tolerances: vec![f64::NAN, 0.05, f64::INFINITY],
            mean: vec![0.1, 0.7, 0.2],
            std: vec![0.0; 3],
        };
        assert_eq!(
            nan_grid.at(0.0),
            Some(0.7),
            "non-finite entries are skipped"
        );
        let all_nan = ToleranceCurve {
            label: "all-nan".into(),
            tolerances: vec![f64::NAN],
            mean: vec![0.1],
            std: vec![0.0],
        };
        assert_eq!(all_nan.at(0.0), None);
    }

    #[test]
    fn construction_sanitises_non_finite_tolerances() {
        let preds = vec![vec![0usize]];
        let energies = vec![vec![1.0; NUM_CLASSES]];
        let c = curve_from_predictions("s", &preds, &energies, &[f64::NAN, 0.0, f64::INFINITY]);
        assert_eq!(c.tolerances, vec![0.0]);
        assert_eq!(c.mean.len(), 1);
        let none = curve_from_predictions("e", &preds, &energies, &[]);
        assert!(none.tolerances.is_empty() && none.at(0.0).is_none());
    }

    #[test]
    fn cv_threads_do_not_change_the_curve() {
        let (data, energies) = synthetic(80);
        let tol = vec![0.0, 0.05, 0.10];
        let serial = Protocol {
            cv_threads: 1,
            ..Protocol::quick()
        };
        let parallel = Protocol {
            cv_threads: 4,
            ..Protocol::quick()
        };
        let c1 = tolerance_curve("t", &data, &energies, &tol, &serial);
        let c4 = tolerance_curve("t", &data, &energies, &tol, &parallel);
        assert_eq!(c1, c4, "curves must be bit-identical at any thread count");
    }
}

//! End-to-end dataset construction — the paper's Figure-1 workflow.
//!
//! [`LabeledDataset::build`] enumerates the 448 samples, extracts static
//! features (step A), simulates each sample at every team size (steps
//! B–C), applies the energy model (step D), labels each sample with its
//! minimum-energy class (step E) and collects everything into trainable
//! datasets (step F).

use crate::cache::SweepCache;
use crate::features::{
    dynamic_feature_names, dynamic_feature_vector, static_feature_names, static_feature_vector,
    StaticFeatureSet,
};
use crate::labeling::{
    measure_kernel_cached_scratch, measure_kernel_instrumented_scratch, MeasureError, NUM_CLASSES,
};
use kernel_ir::{DType, Suite, ValidateKernelError};
use pulp_energy_model::EnergyModel;
use pulp_kernels::{all_samples, registry, KernelDef, SampleSpec, PAYLOAD_SIZES};
use pulp_ml::{Dataset, DatasetError};
use pulp_obs::Recorder;
use pulp_sim::{ClusterConfig, SimScratch};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Options controlling dataset construction.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Cluster to simulate (ablation experiments swap this).
    pub config: ClusterConfig,
    /// Energy model applied to the runs.
    pub model: EnergyModel,
    /// Payload sizes to instantiate (defaults to the paper's four).
    pub payload_sizes: Vec<usize>,
    /// Restrict to kernels whose name appears here (`None` = all 59).
    pub kernel_filter: Option<Vec<String>>,
    /// Worker threads for the simulation sweep (`0` = all cores).
    pub threads: usize,
    /// Print measurement progress to stderr (`--progress` on the dataset
    /// binaries).
    pub progress: bool,
    /// Content-addressed sweep cache (`--cache-dir` on the binaries);
    /// `None` simulates every sample from scratch. Shared across the
    /// worker threads.
    pub cache: Option<Arc<SweepCache>>,
    /// Per-run simulation cycle budget (`--max-cycles` on the binaries);
    /// a sample exceeding it fails the build with a `CycleLimit` error
    /// instead of spinning.
    pub max_cycles: u64,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self {
            config: ClusterConfig::default(),
            model: EnergyModel::table1(),
            payload_sizes: PAYLOAD_SIZES.to_vec(),
            kernel_filter: None,
            threads: 0,
            progress: false,
            cache: None,
            max_cycles: pulp_sim::DEFAULT_MAX_CYCLES,
        }
    }
}

impl PipelineOptions {
    /// A reduced configuration for tests and quick demos: a kernel-name
    /// subset at two payload sizes.
    pub fn quick(kernels: &[&str]) -> Self {
        Self {
            kernel_filter: Some(kernels.iter().map(|s| s.to_string()).collect()),
            payload_sizes: vec![512, 2048],
            ..Self::default()
        }
    }
}

/// Errors produced while building the dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildDatasetError {
    /// A kernel failed to instantiate.
    Kernel {
        /// Sample id (`suite/name/dtype/payload`).
        sample: String,
        /// The underlying validation error.
        source: ValidateKernelError,
    },
    /// A sample failed to simulate.
    Measure {
        /// Sample id.
        sample: String,
        /// The underlying measurement error.
        source: MeasureError,
    },
    /// The assembled matrices were inconsistent.
    Dataset(DatasetError),
    /// The filter matched no kernels.
    EmptySelection,
}

impl fmt::Display for BuildDatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Kernel { sample, source } => write!(f, "{sample}: {source}"),
            Self::Measure { sample, source } => write!(f, "{sample}: {source}"),
            Self::Dataset(e) => write!(f, "dataset assembly: {e}"),
            Self::EmptySelection => write!(f, "kernel filter selected nothing"),
        }
    }
}

impl std::error::Error for BuildDatasetError {}

impl From<DatasetError> for BuildDatasetError {
    fn from(e: DatasetError) -> Self {
        Self::Dataset(e)
    }
}

/// One fully-measured dataset sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleRecord {
    /// `suite/name/dtype/payload` identifier.
    pub id: String,
    /// Kernel name.
    pub kernel: String,
    /// Originating suite.
    pub suite: Suite,
    /// Element type.
    pub dtype: DType,
    /// Payload bytes.
    pub payload_bytes: usize,
    /// Minimum-energy class (0-based; class `c` = `c + 1` cores).
    pub label: usize,
    /// Total energy (fJ) per class.
    pub energy: Vec<f64>,
    /// Kernel cycles per class.
    pub cycles: Vec<u64>,
    /// Static feature vector (20 dims).
    pub static_x: Vec<f64>,
    /// Dynamic feature vector (80 dims).
    pub dynamic_x: Vec<f64>,
}

/// The measured, labelled dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledDataset {
    /// All measured samples, in enumeration order.
    pub samples: Vec<SampleRecord>,
}

impl LabeledDataset {
    /// Builds the dataset per `opts`. This runs
    /// `samples × 8` cycle-level simulations; with default options expect
    /// minutes of CPU time (it parallelises over `opts.threads`).
    ///
    /// # Errors
    ///
    /// Propagates kernel-instantiation and simulation failures, tagged
    /// with the offending sample id.
    pub fn build(opts: &PipelineOptions) -> Result<Self, BuildDatasetError> {
        let mut rec = Recorder::new();
        Self::build_instrumented(opts, &mut rec)
    }

    /// [`build`](Self::build) that folds the recorded stage telemetry into
    /// a [`MetricsRegistry`](pulp_obs::MetricsRegistry) as
    /// `pulp_pipeline_stage_ticks{stage=...}` latency histograms and
    /// `pulp_pipeline_counter{name=...}` gauges — the online aggregate
    /// view of the same spans [`build_instrumented`](Self::build_instrumented)
    /// records offline. The prediction service uses this to expose
    /// startup-training latencies on `/metrics`.
    ///
    /// # Errors
    ///
    /// See [`build`](Self::build).
    pub fn build_with_metrics(
        opts: &PipelineOptions,
        metrics: &mut pulp_obs::MetricsRegistry,
    ) -> Result<Self, BuildDatasetError> {
        let mut rec = Recorder::new();
        let built = Self::build_instrumented(opts, &mut rec);
        metrics.observe_recorder("pulp_pipeline", &rec);
        built
    }

    /// [`build`](Self::build) with stage telemetry: records `enumerate`,
    /// `measure` and `assemble` stage spans plus one span per sample
    /// (nesting the per-team-size `simulate` spans) into `rec`. Worker
    /// threads record into private [`Recorder`]s that are merged, one
    /// track per worker, after the sweep joins.
    ///
    /// # Errors
    ///
    /// See [`build`](Self::build).
    pub fn build_instrumented(
        opts: &PipelineOptions,
        rec: &mut Recorder,
    ) -> Result<Self, BuildDatasetError> {
        let enumerate = rec.start_cat("enumerate", "stage");
        let defs = registry();
        let specs: Vec<SampleSpec> = all_samples()
            .into_iter()
            .filter(|s| {
                opts.payload_sizes.contains(&s.payload_bytes)
                    && opts
                        .kernel_filter
                        .as_ref()
                        .is_none_or(|f| f.iter().any(|n| n == defs[s.kernel_index].name))
            })
            .collect();
        rec.annotate(enumerate, "samples", specs.len());
        rec.end(enumerate);
        if specs.is_empty() {
            return Err(BuildDatasetError::EmptySelection);
        }

        let threads = if opts.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            opts.threads
        }
        .min(specs.len());

        let measure = rec.start_cat("measure", "stage");
        rec.annotate(measure, "threads", threads);
        let done = AtomicUsize::new(0);
        let total = specs.len();
        let mut samples: Vec<Option<SampleRecord>> = vec![None; specs.len()];
        let mut first_error: Option<BuildDatasetError> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let specs = &specs;
                let defs = &defs;
                let opts_ref = &*opts;
                let done = &done;
                handles.push(scope.spawn(move || {
                    let mut worker_rec = Recorder::new();
                    // One simulator scratch per worker, reused across every
                    // sample and team size this worker measures.
                    let mut scratch = SimScratch::new();
                    let mut out = Vec::new();
                    let mut i = t;
                    while i < specs.len() {
                        out.push((
                            i,
                            measure_one_instrumented(
                                &specs[i],
                                &defs[specs[i].kernel_index],
                                opts_ref,
                                &mut worker_rec,
                                &mut scratch,
                            ),
                        ));
                        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                        if opts_ref.progress {
                            eprintln!(
                                "[pipeline] measured {n}/{total} {}",
                                defs[specs[i].kernel_index].name
                            );
                        }
                        i += threads;
                    }
                    (out, worker_rec)
                }));
            }
            for h in handles {
                let (results, worker_rec) = h.join().expect("worker panicked");
                rec.merge(worker_rec);
                for (i, res) in results {
                    match res {
                        Ok(record) => samples[i] = Some(record),
                        Err(e) => {
                            if first_error.is_none() {
                                first_error = Some(e);
                            }
                        }
                    }
                }
            }
        });
        rec.counter("pipeline/samples", done.load(Ordering::Relaxed) as f64);
        if let Some(cache) = &opts.cache {
            cache.record(rec);
        }
        rec.end(measure);
        if let Some(e) = first_error {
            return Err(e);
        }
        let assemble = rec.start_cat("assemble", "stage");
        let out = Self {
            samples: samples
                .into_iter()
                .map(|s| s.expect("all filled"))
                .collect(),
        };
        rec.end(assemble);
        Ok(out)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples were measured.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Class labels, aligned with `samples`.
    pub fn labels(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Per-sample energies by class (input to the tolerance metric).
    pub fn energies(&self) -> Vec<Vec<f64>> {
        self.samples.iter().map(|s| s.energy.clone()).collect()
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> [usize; NUM_CLASSES] {
        let mut counts = [0usize; NUM_CLASSES];
        for s in &self.samples {
            counts[s.label] += 1;
        }
        counts
    }

    /// Trainable dataset over one static feature family.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrices are inconsistent (a bug).
    pub fn static_dataset(&self, set: StaticFeatureSet) -> Result<Dataset, DatasetError> {
        let full = self.static_dataset_all()?;
        Ok(full.select_features(&set.columns()))
    }

    /// Trainable dataset over the full 20-dimensional static vector.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrices are inconsistent (a bug).
    pub fn static_dataset_all(&self) -> Result<Dataset, DatasetError> {
        Dataset::new(
            self.samples.iter().map(|s| s.static_x.clone()).collect(),
            self.labels(),
            static_feature_names(),
            NUM_CLASSES,
        )
    }

    /// Trainable dataset over the 80-dimensional dynamic vector.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrices are inconsistent (a bug).
    pub fn dynamic_dataset(&self) -> Result<Dataset, DatasetError> {
        Dataset::new(
            self.samples.iter().map(|s| s.dynamic_x.clone()).collect(),
            self.labels(),
            dynamic_feature_names(),
            NUM_CLASSES,
        )
    }
}

fn measure_one_instrumented(
    spec: &SampleSpec,
    def: &KernelDef,
    opts: &PipelineOptions,
    rec: &mut Recorder,
    scratch: &mut SimScratch,
) -> Result<SampleRecord, BuildDatasetError> {
    let params = spec.params();
    let kernel = def
        .build(&params)
        .map_err(|source| BuildDatasetError::Kernel {
            sample: format!(
                "{}/{}/{}/{}",
                def.suite, def.name, spec.dtype, spec.payload_bytes
            ),
            source,
        })?;
    let span = rec.start_cat(&kernel.sample_id(), "sample");
    let measured = match &opts.cache {
        Some(cache) => measure_kernel_cached_scratch(
            &kernel,
            &opts.config,
            &opts.model,
            opts.max_cycles,
            cache,
            rec,
            scratch,
        ),
        None => measure_kernel_instrumented_scratch(
            &kernel,
            &opts.config,
            &opts.model,
            opts.max_cycles,
            rec,
            scratch,
        ),
    };
    let profile = match measured {
        Ok(p) => p,
        Err(source) => {
            rec.annotate(span, "error", &source);
            rec.end(span);
            return Err(BuildDatasetError::Measure {
                sample: kernel.sample_id(),
                source,
            });
        }
    };
    rec.annotate(span, "label", profile.label() + 1);
    rec.end(span);
    Ok(SampleRecord {
        id: kernel.sample_id(),
        kernel: def.name.to_string(),
        suite: def.suite,
        dtype: spec.dtype,
        payload_bytes: spec.payload_bytes,
        label: profile.label(),
        energy: profile.energy.to_vec(),
        cycles: profile.cycles.to_vec(),
        static_x: static_feature_vector(&kernel),
        dynamic_x: dynamic_feature_vector(&profile),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_dataset() -> LabeledDataset {
        LabeledDataset::build(&PipelineOptions::quick(&[
            "vec_scale",
            "fpu_storm",
            "bank_hammer",
            "gemm",
        ]))
        .expect("build")
    }

    #[test]
    fn quick_build_produces_expected_sample_count() {
        let d = quick_dataset();
        // 4 kernels × 2 dtypes × 2 sizes.
        assert_eq!(d.len(), 16);
        assert_eq!(d.class_counts().iter().sum::<usize>(), 16);
    }

    #[test]
    fn datasets_are_trainable_shapes() {
        let d = quick_dataset();
        let s = d.static_dataset(StaticFeatureSet::All).expect("static");
        assert_eq!(s.len(), d.len());
        assert_eq!(s.n_features(), 20);
        let dy = d.dynamic_dataset().expect("dynamic");
        assert_eq!(dy.n_features(), 80);
        let agg = d.static_dataset(StaticFeatureSet::Agg).expect("agg");
        assert_eq!(agg.n_features(), 3);
    }

    #[test]
    fn empty_filter_is_an_error() {
        let err = LabeledDataset::build(&PipelineOptions::quick(&["no_such_kernel"])).unwrap_err();
        assert_eq!(err, BuildDatasetError::EmptySelection);
    }

    #[test]
    fn labels_match_energy_argmin() {
        let d = quick_dataset();
        for s in &d.samples {
            let argmin = s
                .energy
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("nonempty");
            assert_eq!(s.label, argmin, "{}", s.id);
        }
    }

    #[test]
    fn build_is_deterministic_across_thread_counts() {
        let mut opts = PipelineOptions::quick(&["vec_scale", "bank_hammer"]);
        opts.threads = 1;
        let d1 = LabeledDataset::build(&opts).expect("build");
        opts.threads = 4;
        let d4 = LabeledDataset::build(&opts).expect("build");
        assert_eq!(d1, d4);
    }

    #[test]
    fn warm_cache_build_is_identical_and_skips_the_simulator() {
        let dir = std::env::temp_dir().join(format!(
            "pulp-pipeline-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut opts = PipelineOptions::quick(&["vec_scale", "bank_hammer"]);
        opts.cache = Some(Arc::new(SweepCache::new(&dir).expect("cache")));
        let cold = LabeledDataset::build(&opts).expect("cold build");

        // Fresh cache handle so the counters below reflect only the warm run.
        let warm_cache = Arc::new(SweepCache::new(&dir).expect("cache"));
        opts.cache = Some(Arc::clone(&warm_cache));
        let mut rec = pulp_obs::Recorder::new();
        let warm = LabeledDataset::build_instrumented(&opts, &mut rec).expect("warm build");

        assert_eq!(cold, warm, "warm-cache build must be bit-identical");
        let stats = warm_cache.stats();
        assert_eq!(stats.misses, 0, "warm run must not miss: {stats}");
        assert_eq!(
            stats.invalidations, 0,
            "warm run must not invalidate: {stats}"
        );
        assert_eq!(
            stats.hits as usize,
            warm.len(),
            "one hit per sample: {stats}"
        );
        assert!(
            rec.spans().iter().all(|s| s.cat != "simulate"),
            "warm run must not invoke the simulator"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! End-to-end dataset construction — the paper's Figure-1 workflow.
//!
//! [`LabeledDataset::build`] enumerates the 448 samples, extracts static
//! features (step A), simulates each sample at every team size (steps
//! B–C), applies the energy model (step D), labels each sample with its
//! minimum-energy class (step E) and collects everything into trainable
//! datasets (step F).

use crate::cache::SweepCache;
use crate::features::{
    dynamic_feature_names, dynamic_feature_vector, static_feature_names, static_feature_vector,
    StaticFeatureSet,
};
use crate::labeling::{
    measure_kernel_cached_scratch, measure_kernel_instrumented_scratch, MeasureError,
    SweepProgress, NUM_CLASSES,
};
use kernel_ir::{DType, Suite, ValidateKernelError};
use pulp_energy_model::EnergyModel;
use pulp_kernels::{all_samples, registry, KernelDef, SampleSpec, PAYLOAD_SIZES};
use pulp_ml::{Dataset, DatasetError};
use pulp_obs::{JournalEvent, JournalWriter, LogFormat, Logger, Recorder};
use pulp_sim::{ClusterConfig, SimScratch};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Options controlling dataset construction.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Cluster to simulate (ablation experiments swap this).
    pub config: ClusterConfig,
    /// Energy model applied to the runs.
    pub model: EnergyModel,
    /// Payload sizes to instantiate (defaults to the paper's four).
    pub payload_sizes: Vec<usize>,
    /// Restrict to kernels whose name appears here (`None` = all 59).
    pub kernel_filter: Option<Vec<String>>,
    /// Worker threads for the simulation sweep (`0` = all cores).
    pub threads: usize,
    /// Print measurement progress to stderr (`--progress` on the dataset
    /// binaries).
    pub progress: bool,
    /// Content-addressed sweep cache (`--cache-dir` on the binaries);
    /// `None` simulates every sample from scratch. Shared across the
    /// worker threads.
    pub cache: Option<Arc<SweepCache>>,
    /// Per-run simulation cycle budget (`--max-cycles` on the binaries);
    /// a sample exceeding it fails the build with a `CycleLimit` error
    /// instead of spinning.
    pub max_cycles: u64,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self {
            config: ClusterConfig::default(),
            model: EnergyModel::table1(),
            payload_sizes: PAYLOAD_SIZES.to_vec(),
            kernel_filter: None,
            threads: 0,
            progress: false,
            cache: None,
            max_cycles: pulp_sim::DEFAULT_MAX_CYCLES,
        }
    }
}

impl PipelineOptions {
    /// A reduced configuration for tests and quick demos: a kernel-name
    /// subset at two payload sizes.
    pub fn quick(kernels: &[&str]) -> Self {
        Self {
            kernel_filter: Some(kernels.iter().map(|s| s.to_string()).collect()),
            payload_sizes: vec![512, 2048],
            ..Self::default()
        }
    }
}

/// Observation hooks for [`LabeledDataset::build_observed`]: an optional
/// run journal receiving stage/heartbeat/cache/slow-kernel events, and an
/// optional logger for the live `--progress` line. The default observer
/// (no journal, no logger) keeps per-kernel timing off the hot loop
/// entirely.
#[derive(Default)]
pub struct BuildObserver<'a> {
    /// Durable event log for the build (see [`pulp_obs::journal`]).
    pub journal: Option<&'a mut JournalWriter>,
    /// Sink for progress lines; `None` with `opts.progress` set falls
    /// back to a plain-text stderr logger.
    pub logger: Option<&'a Logger>,
}

/// Samples between journal heartbeats per worker.
const PIPELINE_HEARTBEAT_EVERY: u64 = 16;
/// Slow-sample entries each worker tracks for the journal.
const PIPELINE_SLOW_PER_SHARD: usize = 4;

/// Errors produced while building the dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildDatasetError {
    /// A kernel failed to instantiate.
    Kernel {
        /// Sample id (`suite/name/dtype/payload`).
        sample: String,
        /// The underlying validation error.
        source: ValidateKernelError,
    },
    /// A sample failed to simulate.
    Measure {
        /// Sample id.
        sample: String,
        /// The underlying measurement error.
        source: MeasureError,
    },
    /// The assembled matrices were inconsistent.
    Dataset(DatasetError),
    /// The filter matched no kernels.
    EmptySelection,
}

impl fmt::Display for BuildDatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Kernel { sample, source } => write!(f, "{sample}: {source}"),
            Self::Measure { sample, source } => write!(f, "{sample}: {source}"),
            Self::Dataset(e) => write!(f, "dataset assembly: {e}"),
            Self::EmptySelection => write!(f, "kernel filter selected nothing"),
        }
    }
}

impl std::error::Error for BuildDatasetError {}

impl From<DatasetError> for BuildDatasetError {
    fn from(e: DatasetError) -> Self {
        Self::Dataset(e)
    }
}

/// One fully-measured dataset sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleRecord {
    /// `suite/name/dtype/payload` identifier.
    pub id: String,
    /// Kernel name.
    pub kernel: String,
    /// Originating suite.
    pub suite: Suite,
    /// Element type.
    pub dtype: DType,
    /// Payload bytes.
    pub payload_bytes: usize,
    /// Minimum-energy class (0-based; class `c` = `c + 1` cores).
    pub label: usize,
    /// Total energy (fJ) per class.
    pub energy: Vec<f64>,
    /// Kernel cycles per class.
    pub cycles: Vec<u64>,
    /// Static feature vector (20 dims).
    pub static_x: Vec<f64>,
    /// Dynamic feature vector (80 dims).
    pub dynamic_x: Vec<f64>,
}

/// The measured, labelled dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledDataset {
    /// All measured samples, in enumeration order.
    pub samples: Vec<SampleRecord>,
}

impl LabeledDataset {
    /// Builds the dataset per `opts`. This runs
    /// `samples × 8` cycle-level simulations; with default options expect
    /// minutes of CPU time (it parallelises over `opts.threads`).
    ///
    /// # Errors
    ///
    /// Propagates kernel-instantiation and simulation failures, tagged
    /// with the offending sample id.
    pub fn build(opts: &PipelineOptions) -> Result<Self, BuildDatasetError> {
        let mut rec = Recorder::new();
        Self::build_instrumented(opts, &mut rec)
    }

    /// [`build`](Self::build) that folds the recorded stage telemetry into
    /// a [`MetricsRegistry`](pulp_obs::MetricsRegistry) as
    /// `pulp_pipeline_stage_ticks{stage=...}` latency histograms and
    /// `pulp_pipeline_counter{name=...}` gauges — the online aggregate
    /// view of the same spans [`build_instrumented`](Self::build_instrumented)
    /// records offline. The prediction service uses this to expose
    /// startup-training latencies on `/metrics`.
    ///
    /// # Errors
    ///
    /// See [`build`](Self::build).
    pub fn build_with_metrics(
        opts: &PipelineOptions,
        metrics: &mut pulp_obs::MetricsRegistry,
    ) -> Result<Self, BuildDatasetError> {
        let mut rec = Recorder::new();
        let built = Self::build_instrumented(opts, &mut rec);
        metrics.observe_recorder("pulp_pipeline", &rec);
        built
    }

    /// [`build`](Self::build) with stage telemetry: records `enumerate`,
    /// `measure` and `assemble` stage spans plus one span per sample
    /// (nesting the per-team-size `simulate` spans) into `rec`. Worker
    /// threads record into private [`Recorder`]s that are merged, one
    /// track per worker, after the sweep joins.
    ///
    /// # Errors
    ///
    /// See [`build`](Self::build).
    pub fn build_instrumented(
        opts: &PipelineOptions,
        rec: &mut Recorder,
    ) -> Result<Self, BuildDatasetError> {
        Self::build_observed(opts, rec, BuildObserver::default())
    }

    /// [`build_instrumented`](Self::build_instrumented) with durable
    /// observation: stage start/end, per-shard heartbeats (kernels done,
    /// kernels/s, cache hits/misses) and slow-kernel entries go to
    /// `obs.journal`, and `opts.progress` drives a live throttled
    /// `[sweep]` line (ETA + straggler flags) through `obs.logger`.
    ///
    /// Journal events are buffered per worker and appended in shard order
    /// after the join — the hot measurement loop never touches the
    /// writer, and the measured dataset is bit-identical to an unobserved
    /// build at any thread count.
    ///
    /// # Errors
    ///
    /// See [`build`](Self::build). Journal write failures warn on stderr
    /// but never fail the build.
    pub fn build_observed(
        opts: &PipelineOptions,
        rec: &mut Recorder,
        obs: BuildObserver<'_>,
    ) -> Result<Self, BuildDatasetError> {
        let BuildObserver { journal, logger } = obs;
        let mut journal = journal;
        let stage_guard = |journal: &mut Option<&mut JournalWriter>, ev: JournalEvent| {
            if let Some(j) = journal {
                if let Err(e) = j.event(ev) {
                    eprintln!("[pipeline] warning: journal write failed: {e}");
                }
            }
        };

        let stage_t0 = Instant::now();
        stage_guard(
            &mut journal,
            JournalEvent::StageStart {
                stage: "enumerate".into(),
            },
        );
        let enumerate = rec.start_cat("enumerate", "stage");
        let defs = registry();
        let specs: Vec<SampleSpec> = all_samples()
            .into_iter()
            .filter(|s| {
                opts.payload_sizes.contains(&s.payload_bytes)
                    && opts
                        .kernel_filter
                        .as_ref()
                        .is_none_or(|f| f.iter().any(|n| n == defs[s.kernel_index].name))
            })
            .collect();
        rec.annotate(enumerate, "samples", specs.len());
        rec.end(enumerate);
        stage_guard(
            &mut journal,
            JournalEvent::StageEnd {
                stage: "enumerate".into(),
                wall_ms: stage_t0.elapsed().as_secs_f64() * 1e3,
            },
        );
        if specs.is_empty() {
            return Err(BuildDatasetError::EmptySelection);
        }

        let threads = if opts.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            opts.threads
        }
        .min(specs.len());

        let stage_t0 = Instant::now();
        stage_guard(
            &mut journal,
            JournalEvent::StageStart {
                stage: "measure".into(),
            },
        );
        let measure = rec.start_cat("measure", "stage");
        rec.annotate(measure, "threads", threads);
        let total = specs.len();
        let journaling = journal.is_some();
        let caching = opts.cache.is_some();
        // Shard `t` owns indices `t, t + threads, ...`.
        let assigned: Vec<u64> = (0..threads)
            .map(|t| ((total - t).div_ceil(threads)) as u64)
            .collect();
        let progress = SweepProgress::new(total, threads);
        let fallback_logger = Logger::new(LogFormat::Text);
        let progress_logger: Option<&Logger> = if opts.progress {
            Some(logger.unwrap_or(&fallback_logger))
        } else {
            None
        };
        let mut samples: Vec<Option<SampleRecord>> = vec![None; specs.len()];
        let mut first_error: Option<BuildDatasetError> = None;
        let mut shard_events: Vec<Vec<JournalEvent>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let specs = &specs;
                let defs = &defs;
                let opts_ref = &*opts;
                let progress = &progress;
                handles.push(scope.spawn(move || {
                    let mut worker_rec = Recorder::new();
                    // One simulator scratch per worker, reused across every
                    // sample and team size this worker measures.
                    let mut scratch = SimScratch::new();
                    let mut out = Vec::new();
                    let mut events: Vec<JournalEvent> = Vec::new();
                    let mut slow: Vec<(String, f64, u64)> = Vec::new();
                    let mut done = 0u64;
                    let mut cache_hits = 0u64;
                    let shard_total = ((specs.len() - t).div_ceil(threads)) as u64;
                    let mut i = t;
                    while i < specs.len() {
                        let spans_before = worker_rec.spans().len();
                        let t0 = journaling.then(Instant::now);
                        let res = measure_one_instrumented(
                            &specs[i],
                            &defs[specs[i].kernel_index],
                            opts_ref,
                            &mut worker_rec,
                            &mut scratch,
                        );
                        done += 1;
                        if let Some(t0) = t0 {
                            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                            let new_spans = &worker_rec.spans()[spans_before..];
                            if new_spans.iter().any(|s| s.cat == "cache") {
                                cache_hits += 1;
                            }
                            let cycles = res.as_ref().map_or(0, |r| r.cycles[0]);
                            let sample = res.as_ref().map_or_else(
                                |_| defs[specs[i].kernel_index].name.to_string(),
                                |r| r.id.clone(),
                            );
                            slow.push((sample, wall_ms, cycles));
                            if slow.len() > PIPELINE_SLOW_PER_SHARD {
                                slow.sort_by(|a, b| {
                                    b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)
                                });
                                slow.truncate(PIPELINE_SLOW_PER_SHARD);
                            }
                            if done.is_multiple_of(PIPELINE_HEARTBEAT_EVERY) || done == shard_total
                            {
                                let elapsed_ms = progress.elapsed_ms();
                                let elapsed_s = elapsed_ms as f64 / 1e3;
                                events.push(JournalEvent::Heartbeat {
                                    shard: t as u64,
                                    done,
                                    assigned: shard_total,
                                    elapsed_ms,
                                    kernels_per_s: if elapsed_s > 0.0 {
                                        done as f64 / elapsed_s
                                    } else {
                                        0.0
                                    },
                                    cache_hits,
                                    cache_misses: if caching { done - cache_hits } else { 0 },
                                });
                            }
                        }
                        out.push((i, res));
                        progress.record(t);
                        i += threads;
                    }
                    slow.sort_by(|a, b| {
                        b.1.partial_cmp(&a.1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.0.cmp(&b.0))
                    });
                    for (sample, wall_ms, cycles) in slow {
                        events.push(JournalEvent::SlowKernel {
                            sample,
                            wall_ms,
                            cycles,
                        });
                    }
                    (out, events, worker_rec)
                }));
            }
            let monitor = progress_logger.map(|log| {
                let progress = &progress;
                let assigned = &assigned;
                scope.spawn(move || {
                    let mut last = u64::MAX;
                    loop {
                        let snap = progress.snapshot();
                        if snap.done() != last {
                            last = snap.done();
                            log.info(
                                "sweep",
                                &format!("measured {}/{}", snap.done(), snap.total),
                                &snap.progress_fields(assigned),
                            );
                        }
                        if snap.done() >= snap.total {
                            break;
                        }
                        // Parked, not slept: the join path unparks us as soon
                        // as the last worker finishes, so short builds never
                        // pay a full monitor tick of extra wall time.
                        std::thread::park_timeout(std::time::Duration::from_millis(200));
                    }
                })
            });
            for h in handles {
                let (results, events, worker_rec) = h.join().expect("worker panicked");
                rec.merge(worker_rec);
                shard_events.push(events);
                for (i, res) in results {
                    match res {
                        Ok(record) => samples[i] = Some(record),
                        Err(e) => {
                            if first_error.is_none() {
                                first_error = Some(e);
                            }
                        }
                    }
                }
            }
            if let Some(m) = &monitor {
                m.thread().unpark();
            }
        });
        rec.counter("pipeline/samples", progress.snapshot().done() as f64);
        if let Some(j) = &mut journal {
            // Deterministic merge: shard 0's buffer first, then shard 1's.
            if let Err(e) = j.events(shard_events.into_iter().flatten()) {
                eprintln!("[pipeline] warning: journal write failed: {e}");
            }
        }
        if let Some(cache) = &opts.cache {
            cache.record(rec);
            let stats = cache.stats();
            stage_guard(
                &mut journal,
                JournalEvent::Cache {
                    hits: stats.hits,
                    misses: stats.misses,
                    invalidations: stats.invalidations,
                },
            );
        }
        rec.end(measure);
        stage_guard(
            &mut journal,
            JournalEvent::StageEnd {
                stage: "measure".into(),
                wall_ms: stage_t0.elapsed().as_secs_f64() * 1e3,
            },
        );
        if let Some(e) = first_error {
            return Err(e);
        }
        let stage_t0 = Instant::now();
        stage_guard(
            &mut journal,
            JournalEvent::StageStart {
                stage: "assemble".into(),
            },
        );
        let assemble = rec.start_cat("assemble", "stage");
        let out = Self {
            samples: samples
                .into_iter()
                .map(|s| s.expect("all filled"))
                .collect(),
        };
        rec.end(assemble);
        stage_guard(
            &mut journal,
            JournalEvent::StageEnd {
                stage: "assemble".into(),
                wall_ms: stage_t0.elapsed().as_secs_f64() * 1e3,
            },
        );
        Ok(out)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples were measured.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Class labels, aligned with `samples`.
    pub fn labels(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.label).collect()
    }

    /// Per-sample energies by class (input to the tolerance metric).
    pub fn energies(&self) -> Vec<Vec<f64>> {
        self.samples.iter().map(|s| s.energy.clone()).collect()
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> [usize; NUM_CLASSES] {
        let mut counts = [0usize; NUM_CLASSES];
        for s in &self.samples {
            counts[s.label] += 1;
        }
        counts
    }

    /// Trainable dataset over one static feature family.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrices are inconsistent (a bug).
    pub fn static_dataset(&self, set: StaticFeatureSet) -> Result<Dataset, DatasetError> {
        let full = self.static_dataset_all()?;
        Ok(full.select_features(&set.columns()))
    }

    /// Trainable dataset over the full 20-dimensional static vector.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrices are inconsistent (a bug).
    pub fn static_dataset_all(&self) -> Result<Dataset, DatasetError> {
        Dataset::new(
            self.samples.iter().map(|s| s.static_x.clone()).collect(),
            self.labels(),
            static_feature_names(),
            NUM_CLASSES,
        )
    }

    /// The full 20-dimensional static feature vectors, one per sample —
    /// the row shape the [`crate::predictor::EnergyPredictor`] batch
    /// paths consume (`bench models` feeds these to both the flat and
    /// the float path when counting mismatches).
    pub fn static_rows(&self) -> Vec<Vec<f64>> {
        self.samples.iter().map(|s| s.static_x.clone()).collect()
    }

    /// Trainable dataset over the 80-dimensional dynamic vector.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrices are inconsistent (a bug).
    pub fn dynamic_dataset(&self) -> Result<Dataset, DatasetError> {
        Dataset::new(
            self.samples.iter().map(|s| s.dynamic_x.clone()).collect(),
            self.labels(),
            dynamic_feature_names(),
            NUM_CLASSES,
        )
    }
}

fn measure_one_instrumented(
    spec: &SampleSpec,
    def: &KernelDef,
    opts: &PipelineOptions,
    rec: &mut Recorder,
    scratch: &mut SimScratch,
) -> Result<SampleRecord, BuildDatasetError> {
    let params = spec.params();
    let kernel = def
        .build(&params)
        .map_err(|source| BuildDatasetError::Kernel {
            sample: format!(
                "{}/{}/{}/{}",
                def.suite, def.name, spec.dtype, spec.payload_bytes
            ),
            source,
        })?;
    let span = rec.start_cat(&kernel.sample_id(), "sample");
    let measured = match &opts.cache {
        Some(cache) => measure_kernel_cached_scratch(
            &kernel,
            &opts.config,
            &opts.model,
            opts.max_cycles,
            cache,
            rec,
            scratch,
        ),
        None => measure_kernel_instrumented_scratch(
            &kernel,
            &opts.config,
            &opts.model,
            opts.max_cycles,
            rec,
            scratch,
        ),
    };
    let profile = match measured {
        Ok(p) => p,
        Err(source) => {
            rec.annotate(span, "error", &source);
            rec.end(span);
            return Err(BuildDatasetError::Measure {
                sample: kernel.sample_id(),
                source,
            });
        }
    };
    rec.annotate(span, "label", profile.label() + 1);
    rec.end(span);
    Ok(SampleRecord {
        id: kernel.sample_id(),
        kernel: def.name.to_string(),
        suite: def.suite,
        dtype: spec.dtype,
        payload_bytes: spec.payload_bytes,
        label: profile.label(),
        energy: profile.energy.to_vec(),
        cycles: profile.cycles.to_vec(),
        static_x: static_feature_vector(&kernel),
        dynamic_x: dynamic_feature_vector(&profile),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_dataset() -> LabeledDataset {
        LabeledDataset::build(&PipelineOptions::quick(&[
            "vec_scale",
            "fpu_storm",
            "bank_hammer",
            "gemm",
        ]))
        .expect("build")
    }

    #[test]
    fn quick_build_produces_expected_sample_count() {
        let d = quick_dataset();
        // 4 kernels × 2 dtypes × 2 sizes.
        assert_eq!(d.len(), 16);
        assert_eq!(d.class_counts().iter().sum::<usize>(), 16);
    }

    #[test]
    fn datasets_are_trainable_shapes() {
        let d = quick_dataset();
        let s = d.static_dataset(StaticFeatureSet::All).expect("static");
        assert_eq!(s.len(), d.len());
        assert_eq!(s.n_features(), 20);
        let dy = d.dynamic_dataset().expect("dynamic");
        assert_eq!(dy.n_features(), 80);
        let agg = d.static_dataset(StaticFeatureSet::Agg).expect("agg");
        assert_eq!(agg.n_features(), 3);
    }

    #[test]
    fn empty_filter_is_an_error() {
        let err = LabeledDataset::build(&PipelineOptions::quick(&["no_such_kernel"])).unwrap_err();
        assert_eq!(err, BuildDatasetError::EmptySelection);
    }

    #[test]
    fn labels_match_energy_argmin() {
        let d = quick_dataset();
        for s in &d.samples {
            let argmin = s
                .energy
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("nonempty");
            assert_eq!(s.label, argmin, "{}", s.id);
        }
    }

    #[test]
    fn build_is_deterministic_across_thread_counts() {
        let mut opts = PipelineOptions::quick(&["vec_scale", "bank_hammer"]);
        opts.threads = 1;
        let d1 = LabeledDataset::build(&opts).expect("build");
        opts.threads = 4;
        let d4 = LabeledDataset::build(&opts).expect("build");
        assert_eq!(d1, d4);
    }

    #[test]
    fn observed_build_is_identical_and_journals_stages_and_cache() {
        use pulp_obs::{validate_journal, JournalEvent, JournalReader, JournalWriter};
        let dir = std::env::temp_dir().join(format!(
            "pulp-pipeline-journal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = PipelineOptions::quick(&["vec_scale", "bank_hammer"]);
        opts.threads = 2;
        opts.cache = Some(Arc::new(SweepCache::new(&dir).expect("cache")));
        let plain = LabeledDataset::build(&opts).expect("plain build");

        // Warm run with a journal: bit-identical dataset, full cache
        // attribution in the journal.
        opts.cache = Some(Arc::new(SweepCache::new(&dir).expect("cache")));
        let mut journal = JournalWriter::in_memory("pipeline_test", "beef", 3);
        let mut rec = Recorder::new();
        let observed = LabeledDataset::build_observed(
            &opts,
            &mut rec,
            BuildObserver {
                journal: Some(&mut journal),
                logger: None,
            },
        )
        .expect("observed build");
        assert_eq!(observed, plain, "journaling must not perturb the dataset");

        let text = journal.finalize_to_string().expect("text");
        validate_journal(&text).expect("valid journal");
        let parsed = JournalReader::read_str(&text).expect("readable");
        let stages: Vec<&str> = parsed
            .events
            .iter()
            .filter_map(|e| match e {
                JournalEvent::StageEnd { stage, .. } => Some(stage.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(stages, ["enumerate", "measure", "assemble"]);
        let cache_ev = parsed
            .events
            .iter()
            .find_map(|e| match e {
                JournalEvent::Cache { hits, misses, .. } => Some((*hits, *misses)),
                _ => None,
            })
            .expect("cache attribution present");
        assert_eq!(cache_ev, (plain.len() as u64, 0), "warm run: all hits");
        let heartbeat_hits: u64 = parsed
            .events
            .iter()
            .filter_map(|e| match e {
                JournalEvent::Heartbeat {
                    done,
                    assigned,
                    cache_hits,
                    ..
                } if done == assigned => Some(*cache_hits),
                _ => None,
            })
            .sum();
        assert_eq!(
            heartbeat_hits,
            plain.len() as u64,
            "final heartbeats attribute every sample to the cache"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_cache_build_is_identical_and_skips_the_simulator() {
        let dir = std::env::temp_dir().join(format!(
            "pulp-pipeline-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let mut opts = PipelineOptions::quick(&["vec_scale", "bank_hammer"]);
        opts.cache = Some(Arc::new(SweepCache::new(&dir).expect("cache")));
        let cold = LabeledDataset::build(&opts).expect("cold build");

        // Fresh cache handle so the counters below reflect only the warm run.
        let warm_cache = Arc::new(SweepCache::new(&dir).expect("cache"));
        opts.cache = Some(Arc::clone(&warm_cache));
        let mut rec = pulp_obs::Recorder::new();
        let warm = LabeledDataset::build_instrumented(&opts, &mut rec).expect("warm build");

        assert_eq!(cold, warm, "warm-cache build must be bit-identical");
        let stats = warm_cache.stats();
        assert_eq!(stats.misses, 0, "warm run must not miss: {stats}");
        assert_eq!(
            stats.invalidations, 0,
            "warm run must not invalidate: {stats}"
        );
        assert_eq!(
            stats.hits as usize,
            warm.len(),
            "one hit per sample: {stats}"
        );
        assert!(
            rec.spans().iter().all(|s| s.cat != "simulate"),
            "warm run must not invoke the simulator"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Plain-text and JSON rendering of experiment results.
//!
//! The bench binaries print the same rows/series the paper reports; these
//! helpers keep the formatting consistent and dump machine-readable
//! records for EXPERIMENTS.md.

use crate::evaluation::{RankedFeature, ToleranceCurve};
use crate::labeling::NUM_CLASSES;
use serde::Serialize;
use std::fmt::Write as _;

/// Renders a set of tolerance curves as an aligned text table
/// (rows = tolerance, columns = curves).
pub fn render_curves(curves: &[ToleranceCurve]) -> String {
    let mut out = String::new();
    if curves.is_empty() {
        return out;
    }
    let _ = write!(out, "{:>10}", "tol%");
    for c in curves {
        let _ = write!(out, " {:>14}", c.label);
    }
    out.push('\n');
    for (i, &t) in curves[0].tolerances.iter().enumerate() {
        let _ = write!(out, "{:>10.1}", t * 100.0);
        for c in curves {
            let _ = write!(out, " {:>13.1}%", c.mean[i] * 100.0);
        }
        out.push('\n');
    }
    out
}

/// Renders a ranked feature table (top `n`).
pub fn render_importances(title: &str, ranked: &[RankedFeature], n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{:>4} {:<20} {:>10}", "#", "feature", "importance");
    for (i, r) in ranked.iter().take(n).enumerate() {
        let _ = writeln!(
            out,
            "{:>4} {:<20} {:>9.1}%",
            i + 1,
            r.name,
            r.importance * 100.0
        );
    }
    out
}

/// Renders the class distribution of the dataset (§IV-B numbers).
pub fn render_class_distribution(counts: &[usize; NUM_CLASSES]) -> String {
    let total: usize = counts.iter().sum();
    let mut out = String::new();
    let _ = writeln!(out, "{:>6} {:>8} {:>8}", "cores", "count", "share");
    for (c, &n) in counts.iter().enumerate() {
        let share = if total > 0 {
            100.0 * n as f64 / total as f64
        } else {
            0.0
        };
        let _ = writeln!(out, "{:>6} {:>8} {:>7.1}%", c + 1, n, share);
    }
    let _ = writeln!(out, "{:>6} {:>8}", "total", total);
    out
}

/// Renders a confusion matrix (`m[true][predicted]`) with core-count
/// headers.
pub fn render_confusion(m: &[Vec<usize>]) -> String {
    let mut out = String::new();
    let n = m.len();
    let _ = write!(out, "{:>8}", "true\\pred");
    for c in 0..n {
        let _ = write!(out, " {:>5}", c + 1);
    }
    out.push('\n');
    for (t, row) in m.iter().enumerate() {
        let _ = write!(out, "{:>8}", t + 1);
        for &v in row {
            let _ = write!(out, " {:>5}", v);
        }
        out.push('\n');
    }
    out
}

/// Serialises any experiment record to pretty JSON (for EXPERIMENTS.md
/// artefacts).
///
/// # Panics
///
/// Panics if the value cannot be serialised (not expected for the plain
/// data types used by the benches).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("serialisable experiment record")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(label: &str) -> ToleranceCurve {
        ToleranceCurve {
            label: label.into(),
            tolerances: vec![0.0, 0.05],
            mean: vec![0.57, 0.80],
            std: vec![0.01, 0.01],
        }
    }

    #[test]
    fn curves_table_has_header_and_rows() {
        let s = render_curves(&[curve("static"), curve("dynamic")]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("static"));
        assert!(lines[1].contains("57.0%"));
        assert!(lines[2].contains("80.0%"));
    }

    #[test]
    fn empty_curves_render_empty() {
        assert!(render_curves(&[]).is_empty());
    }

    #[test]
    fn importance_table_truncates() {
        let ranked: Vec<RankedFeature> = (0..10)
            .map(|i| RankedFeature {
                name: format!("f{i}"),
                column: i,
                importance: 0.1,
            })
            .collect();
        let s = render_importances("Top", &ranked, 3);
        assert_eq!(s.lines().count(), 2 + 3);
    }

    #[test]
    fn class_distribution_shares_sum() {
        let mut counts = [0usize; NUM_CLASSES];
        counts[7] = 3;
        counts[0] = 1;
        let s = render_class_distribution(&counts);
        assert!(s.contains("75.0%"));
        assert!(s.contains("25.0%"));
    }

    #[test]
    fn confusion_renders_square() {
        let m = vec![vec![3, 1], vec![0, 4]];
        let s = render_confusion(&m);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains('3') && s.contains('4'));
    }

    #[test]
    fn json_round_trips() {
        let c = curve("x");
        let j = to_json(&c);
        let back: ToleranceCurve = serde_json::from_str(&j).expect("parse");
        assert_eq!(back, c);
    }
}

//! CART decision tree — the paper's classifier.
//!
//! The paper deliberately uses a decision tree rather than a deep model
//! because it "supports decisions by checking a sequence of control
//! statements" and allows insight into which features matter (Table IV
//! reports its feature importances).

use crate::dataset::Dataset;
use crate::split::{best_split_with, Criterion, Split};
use serde::{Deserialize, Serialize};

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each leaf.
    pub min_samples_leaf: usize,
    /// Split-quality criterion (the paper uses Gini).
    pub criterion: Criterion,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 16,
            min_samples_split: 2,
            min_samples_leaf: 1,
            criterion: Criterion::Gini,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        class: usize,
    },
    Internal {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A borrowed view of one fitted tree node, for compilation passes (such
/// as [`crate::flat::FlatModel`]) that need to walk the structure without
/// exposing the private storage. Node ids index the tree's internal
/// pre-order array; the root is always id 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeView {
    /// Terminal node predicting `class`.
    Leaf {
        /// Predicted class index.
        class: usize,
    },
    /// Internal test: samples with `x[feature] <= threshold` descend left.
    Internal {
        /// Feature column tested.
        feature: usize,
        /// Split threshold (`<=` goes left).
        threshold: f64,
        /// Node id of the left child.
        left: usize,
        /// Node id of the right child.
        right: usize,
    },
}

/// A fitted CART decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    params: TreeParams,
    nodes: Vec<Node>,
    importances: Vec<f64>,
    n_features: usize,
}

impl DecisionTree {
    /// Creates an unfitted tree with `params`.
    pub fn new(params: TreeParams) -> Self {
        Self {
            params,
            nodes: Vec::new(),
            importances: Vec::new(),
            n_features: 0,
        }
    }

    /// Fits the tree on all rows of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(&mut self, data: &Dataset) {
        let rows: Vec<usize> = (0..data.len()).collect();
        self.fit_rows(data, &rows);
    }

    /// Fits the tree on a row subset (used by cross-validation and
    /// bagging).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn fit_rows(&mut self, data: &Dataset, rows: &[usize]) {
        assert!(!rows.is_empty(), "cannot fit on an empty training set");
        self.nodes.clear();
        self.n_features = data.n_features();
        self.importances = vec![0.0; data.n_features()];
        let all_features: Vec<usize> = (0..data.n_features()).collect();
        let mut rows = rows.to_vec();
        let n_total = rows.len();
        self.grow(data, &mut rows, &all_features, 0, n_total);
        let norm: f64 = self.importances.iter().sum();
        if norm > 0.0 {
            for i in &mut self.importances {
                *i /= norm;
            }
        }
    }

    fn grow(
        &mut self,
        data: &Dataset,
        rows: &mut [usize],
        features: &[usize],
        depth: usize,
        n_total: usize,
    ) -> usize {
        let split = if depth >= self.params.max_depth || rows.len() < self.params.min_samples_split
        {
            None
        } else {
            best_split_with(
                data,
                rows,
                features,
                self.params.min_samples_leaf,
                n_total,
                self.params.criterion,
            )
        };
        match split {
            None => self.push_leaf(data, rows),
            Some(Split {
                feature,
                threshold,
                weighted_decrease,
            }) => {
                self.importances[feature] += weighted_decrease;
                let (mut left_rows, mut right_rows): (Vec<usize>, Vec<usize>) = rows
                    .iter()
                    .partition(|&&r| data.row(r)[feature] <= threshold);
                debug_assert!(!left_rows.is_empty() && !right_rows.is_empty());
                let id = self.nodes.len();
                // Reserve the slot; children are appended after.
                self.nodes.push(Node::Leaf { class: 0 });
                let left = self.grow(data, &mut left_rows, features, depth + 1, n_total);
                let right = self.grow(data, &mut right_rows, features, depth + 1, n_total);
                self.nodes[id] = Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                };
                id
            }
        }
    }

    fn push_leaf(&mut self, data: &Dataset, rows: &[usize]) -> usize {
        let mut counts = vec![0usize; data.n_classes()];
        for &r in rows {
            counts[data.label(r)] += 1;
        }
        let class = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { class });
        id
    }

    /// Predicts the class of one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted or `x` is shorter than the training
    /// feature count.
    pub fn predict(&self, x: &[f64]) -> usize {
        assert!(!self.nodes.is_empty(), "predict called on an unfitted tree");
        let mut id = 0;
        loop {
            match &self.nodes[id] {
                Node::Leaf { class } => return *class,
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Normalised feature importances (mean impurity decrease); sums to 1
    /// for any tree with at least one split.
    pub fn feature_importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// A view of node `id` (`0..node_count()`); the root is id 0.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (including any call on an unfitted
    /// tree, which has no nodes).
    pub fn node(&self, id: usize) -> NodeView {
        match &self.nodes[id] {
            Node::Leaf { class } => NodeView::Leaf { class: *class },
            Node::Internal {
                feature,
                threshold,
                left,
                right,
            } => NodeView::Internal {
                feature: *feature,
                threshold: *threshold,
                left: *left,
                right: *right,
            },
        }
    }

    /// Id of the leaf that `x` falls into (the node-id counterpart of
    /// [`predict`](Self::predict), used for leaf-value fitting in
    /// gradient boosting).
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted or `x` is shorter than the training
    /// feature count.
    pub fn leaf_id(&self, x: &[f64]) -> usize {
        assert!(!self.nodes.is_empty(), "leaf_id called on an unfitted tree");
        let mut id = 0;
        loop {
            match &self.nodes[id] {
                Node::Leaf { .. } => return id,
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    id = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// The hyperparameters this tree was configured with.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    /// Number of features seen at fit time (0 for an unfitted tree).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Renders the fitted tree as indented if/else rules — the
    /// interpretability the paper cites as the reason to prefer trees
    /// over deep models.
    ///
    /// `feature_names` maps column indices to labels; columns beyond the
    /// slice fall back to `f<idx>`.
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted.
    pub fn render(&self, feature_names: &[String]) -> String {
        assert!(!self.nodes.is_empty(), "render called on an unfitted tree");
        fn name(names: &[String], f: usize) -> String {
            names.get(f).cloned().unwrap_or_else(|| format!("f{f}"))
        }
        fn rec(nodes: &[Node], names: &[String], id: usize, indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            match &nodes[id] {
                Node::Leaf { class } => {
                    out.push_str(&format!("{pad}-> class {class}\n"));
                }
                Node::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    out.push_str(&format!(
                        "{pad}if {} <= {threshold:.4} {{\n",
                        name(names, *feature)
                    ));
                    rec(nodes, names, *left, indent + 1, out);
                    out.push_str(&format!("{pad}}} else {{\n"));
                    rec(nodes, names, *right, indent + 1, out);
                    out.push_str(&format!("{pad}}}\n"));
                }
            }
        }
        let mut out = String::new();
        rec(&self.nodes, feature_names, 0, 0, &mut out);
        out
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], id: usize) -> usize {
            match &nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Internal { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> Dataset {
        // XOR needs depth 2.
        Dataset::new(
            vec![
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![1.0, 1.0],
            ],
            vec![0, 1, 1, 0],
            vec!["x".into(), "y".into()],
            2,
        )
        .expect("valid dataset")
    }

    #[test]
    fn learns_xor_perfectly() {
        let d = xor_data();
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        for i in 0..d.len() {
            assert_eq!(t.predict(d.row(i)), d.label(i));
        }
        assert!(t.depth() >= 2);
    }

    #[test]
    fn max_depth_zero_gives_majority_leaf() {
        let d = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![1, 1, 0],
            vec!["x".into()],
            2,
        )
        .expect("valid dataset");
        let mut t = DecisionTree::new(TreeParams {
            max_depth: 0,
            ..TreeParams::default()
        });
        t.fit(&d);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[999.0]), 1);
    }

    #[test]
    fn importances_sum_to_one() {
        let d = xor_data();
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        let sum: f64 = t.feature_importances().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn irrelevant_feature_gets_zero_importance() {
        let d = Dataset::new(
            vec![
                vec![0.0, 7.0],
                vec![1.0, 7.0],
                vec![10.0, 7.0],
                vec![11.0, 7.0],
            ],
            vec![0, 0, 1, 1],
            vec!["signal".into(), "constant".into()],
            2,
        )
        .expect("valid dataset");
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        assert_eq!(t.feature_importances()[1], 0.0);
        assert!((t.feature_importances()[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_rows_ignores_excluded_samples() {
        let d = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![100.0]],
            vec![0, 0, 1],
            vec!["x".into()],
            2,
        )
        .expect("valid dataset");
        let mut t = DecisionTree::new(TreeParams::default());
        // Train without the only class-1 sample: tree must be a pure leaf.
        t.fit_rows(&d, &[0, 1]);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[100.0]), 0);
    }

    #[test]
    #[should_panic(expected = "unfitted")]
    fn predict_requires_fit() {
        let t = DecisionTree::new(TreeParams::default());
        let _ = t.predict(&[0.0]);
    }

    #[test]
    fn render_produces_readable_rules() {
        let d = xor_data();
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        let rules = t.render(&["x".to_string(), "y".to_string()]);
        assert!(rules.contains("if x <=") || rules.contains("if y <="));
        assert!(rules.contains("-> class 0"));
        assert!(rules.contains("-> class 1"));
        // Braces balance: every internal node opens and closes two blocks.
        let opens = rules.matches('{').count();
        let closes = rules.matches('}').count();
        assert_eq!(opens, closes, "unbalanced rules:\n{rules}");
        assert!(opens >= 2, "xor needs at least two splits");
    }

    #[test]
    fn render_falls_back_on_missing_names() {
        let d = xor_data();
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        let rules = t.render(&[]);
        assert!(rules.contains("if f0") || rules.contains("if f1"));
    }

    #[test]
    fn entropy_criterion_also_learns_xor() {
        let d = xor_data();
        let mut t = DecisionTree::new(TreeParams {
            criterion: Criterion::Entropy,
            ..TreeParams::default()
        });
        t.fit(&d);
        for i in 0..d.len() {
            assert_eq!(t.predict(d.row(i)), d.label(i));
        }
    }

    #[test]
    fn node_views_replay_predictions() {
        let d = xor_data();
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        // Walking the public node views must reach the same class as
        // predict, and leaf_id must land on a leaf view.
        for i in 0..d.len() {
            let x = d.row(i);
            let mut id = 0;
            let class = loop {
                match t.node(id) {
                    NodeView::Leaf { class } => break class,
                    NodeView::Internal {
                        feature,
                        threshold,
                        left,
                        right,
                    } => id = if x[feature] <= threshold { left } else { right },
                }
            };
            assert_eq!(class, t.predict(x));
            assert!(matches!(t.node(t.leaf_id(x)), NodeView::Leaf { class: c } if c == class));
        }
    }

    #[test]
    fn deterministic_across_fits() {
        let d = xor_data();
        let mut a = DecisionTree::new(TreeParams::default());
        let mut b = DecisionTree::new(TreeParams::default());
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a, b);
    }
}

//! Classification metrics, including the paper's energy-tolerance accuracy.
//!
//! Plain accuracy treats any misprediction as wrong; the paper argues that
//! "selecting a number of processing elements that leads to a small amount
//! of energy wasted with respect to the theoretical minimum may be
//! acceptable from the engineering point of view" and therefore evaluates
//! accuracy under an increasing tolerance threshold on the wasted energy.

/// Fraction of exact label matches.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Accuracy under an energy-waste tolerance.
///
/// `energy_by_class[i][c]` is the measured energy of sample `i` when run
/// with the configuration of class `c`. A prediction is counted correct
/// when the energy of the predicted configuration wastes at most
/// `tolerance` (fractional, e.g. `0.05` for 5%) over the sample's minimum
/// energy.
///
/// # Panics
///
/// Panics if shapes disagree or a sample has no classes.
pub fn tolerance_accuracy(
    predictions: &[usize],
    energy_by_class: &[Vec<f64>],
    tolerance: f64,
) -> f64 {
    assert_eq!(predictions.len(), energy_by_class.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(energy_by_class)
        .filter(|(&p, energies)| {
            let min = energies.iter().copied().fold(f64::INFINITY, f64::min);
            assert!(min.is_finite(), "sample with no class energies");
            let wasted = (energies[p] - min) / min;
            wasted <= tolerance + 1e-12
        })
        .count();
    correct as f64 / predictions.len() as f64
}

/// Row-major confusion matrix: `m[true][predicted]`.
///
/// # Panics
///
/// Panics if the slices have different lengths or a label exceeds
/// `n_classes`.
pub fn confusion_matrix(
    predictions: &[usize],
    labels: &[usize],
    n_classes: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        m[l][p] += 1;
    }
    m
}

/// Per-class precision, recall and F1 derived from a confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassScore {
    /// Fraction of predictions for this class that were correct.
    pub precision: f64,
    /// Fraction of this class's samples that were found.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Samples of this class in the ground truth.
    pub support: usize,
}

/// Per-class scores from a `m[true][predicted]` confusion matrix.
///
/// Classes with no samples and no predictions score zero across the
/// board.
pub fn class_scores(confusion: &[Vec<usize>]) -> Vec<ClassScore> {
    let n = confusion.len();
    (0..n)
        .map(|c| {
            let tp = confusion[c][c];
            let support: usize = confusion[c].iter().sum();
            let predicted: usize = confusion.iter().map(|row| row[c]).sum();
            let precision = if predicted > 0 {
                tp as f64 / predicted as f64
            } else {
                0.0
            };
            let recall = if support > 0 {
                tp as f64 / support as f64
            } else {
                0.0
            };
            let f1 = if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                0.0
            };
            ClassScore {
                precision,
                recall,
                f1,
                support,
            }
        })
        .collect()
}

/// Mean and sample standard deviation of a series of accuracy values.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn zero_tolerance_requires_argmin() {
        let energies = vec![vec![10.0, 5.0, 20.0], vec![1.0, 2.0, 3.0]];
        // Sample 0: argmin class 1. Sample 1: argmin class 0.
        assert_eq!(tolerance_accuracy(&[1, 0], &energies, 0.0), 1.0);
        assert_eq!(tolerance_accuracy(&[0, 0], &energies, 0.0), 0.5);
    }

    #[test]
    fn tolerance_forgives_near_optimal_predictions() {
        // Class 0 wastes 4% over the class-1 minimum.
        let energies = vec![vec![10.4, 10.0, 20.0]];
        assert_eq!(tolerance_accuracy(&[0], &energies, 0.0), 0.0);
        assert_eq!(tolerance_accuracy(&[0], &energies, 0.05), 1.0);
        assert_eq!(tolerance_accuracy(&[2], &energies, 0.05), 0.0);
    }

    #[test]
    fn tolerance_is_monotone() {
        let energies: Vec<Vec<f64>> = (0..10).map(|i| vec![10.0 + i as f64, 10.0, 30.0]).collect();
        let preds = vec![0usize; 10];
        let mut last = 0.0;
        for t in [0.0, 0.1, 0.2, 0.5, 1.0] {
            let acc = tolerance_accuracy(&preds, &energies, t);
            assert!(acc >= last, "accuracy must grow with tolerance");
            last = acc;
        }
        assert_eq!(last, 1.0);
    }

    #[test]
    fn exact_minimum_always_within_tolerance() {
        let energies = vec![vec![5.0, 7.0]];
        assert_eq!(tolerance_accuracy(&[0], &energies, 0.0), 1.0);
    }

    #[test]
    fn confusion_matrix_shape_and_counts() {
        let m = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][1], 1);
        assert_eq!(m[2][2], 1);
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn class_scores_from_confusion() {
        // class 0: 3 tp, 1 fn; class 1: 4 tp, 1 fp.
        let m = vec![vec![3, 1], vec![0, 4]];
        let s = class_scores(&m);
        assert!((s[0].precision - 1.0).abs() < 1e-12);
        assert!((s[0].recall - 0.75).abs() < 1e-12);
        assert!((s[1].precision - 0.8).abs() < 1e-12);
        assert!((s[1].recall - 1.0).abs() < 1e-12);
        assert_eq!(s[0].support, 4);
        assert!(s[0].f1 > 0.85 && s[0].f1 < 0.86);
    }

    #[test]
    fn empty_class_scores_zero() {
        let m = vec![vec![2, 0, 0], vec![0, 2, 0], vec![0, 0, 0]];
        let s = class_scores(&m);
        assert_eq!(s[2].precision, 0.0);
        assert_eq!(s[2].recall, 0.0);
        assert_eq!(s[2].support, 0);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[5.0]).1, 0.0);
    }
}

//! Stratified cross-validation.
//!
//! The paper evaluates every classifier with "10-fold stratified
//! cross-validation ... repeated 100 times with random seeds, for ensuring
//! to get unbiased accuracy results". This module implements that exact
//! protocol, fanning the seeded repetitions out over a scoped worker pool:
//! each repetition derives its RNG purely from its own seed, so the
//! predictions are bit-identical at any thread count.

use crate::dataset::Dataset;
use pulp_obs::Recorder;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// A model trainable on row subsets — implemented by the decision tree and
/// the random forest.
pub trait Classifier {
    /// Fits on the given training rows of `data`.
    fn fit_rows(&mut self, data: &Dataset, rows: &[usize]);
    /// Predicts the class of one feature vector.
    fn predict(&self, x: &[f64]) -> usize;
}

impl Classifier for crate::tree::DecisionTree {
    fn fit_rows(&mut self, data: &Dataset, rows: &[usize]) {
        crate::tree::DecisionTree::fit_rows(self, data, rows);
    }
    fn predict(&self, x: &[f64]) -> usize {
        crate::tree::DecisionTree::predict(self, x)
    }
}

impl Classifier for crate::forest::RandomForest {
    fn fit_rows(&mut self, data: &Dataset, rows: &[usize]) {
        crate::forest::RandomForest::fit_rows(self, data, rows);
    }
    fn predict(&self, x: &[f64]) -> usize {
        crate::forest::RandomForest::predict(self, x)
    }
}

/// Splits sample indices into `k` stratified folds.
///
/// Each class's samples are shuffled and dealt round-robin, so every fold
/// approximates the global class distribution and fold sizes differ by at
/// most one.
///
/// Edge cases are handled without panicking:
///
/// * **Empty input** returns `k` empty folds.
/// * **Classes with fewer than `k` samples** are dealt into distinct
///   consecutive folds; with fewer than `k` samples overall some folds are
///   (necessarily) empty — callers such as [`cross_val_predict`] skip
///   them.
/// * **Gaps in the label space** (e.g. labels `{0, 7, 1_000_000}`) are
///   fine: classes are bucketed by value, never used as a dense index, so
///   a large label cannot blow up allocation. Classes are processed in
///   ascending label order, keeping the output identical to the historical
///   dense-indexing behaviour for gapless label sets.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn stratified_folds(labels: &[usize], k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k > 0, "need at least one fold");
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    if labels.is_empty() {
        return folds;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut per_class: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, &l) in labels.iter().enumerate() {
        per_class.entry(l).or_default().push(i);
    }
    let mut next = 0usize;
    for class_rows in per_class.values_mut() {
        class_rows.shuffle(&mut rng);
        for &row in class_rows.iter() {
            folds[next % k].push(row);
            next += 1;
        }
    }
    folds
}

/// Out-of-fold predictions for every sample under k-fold CV.
///
/// `make` builds a fresh classifier per fold (keeping folds independent).
/// Returns one predicted label per sample, aligned with `data` rows.
pub fn cross_val_predict<C: Classifier>(
    data: &Dataset,
    k: usize,
    seed: u64,
    mut make: impl FnMut() -> C,
) -> Vec<usize> {
    let folds = stratified_folds(data.labels(), k, seed);
    let mut predictions = vec![0usize; data.len()];
    for test_fold in &folds {
        if test_fold.is_empty() {
            continue;
        }
        let train: Vec<usize> = folds
            .iter()
            .filter(|f| !std::ptr::eq(*f, test_fold))
            .flatten()
            .copied()
            .collect();
        if train.is_empty() {
            continue;
        }
        let mut model = make();
        model.fit_rows(data, &train);
        for &row in test_fold {
            predictions[row] = model.predict(data.row(row));
        }
    }
    predictions
}

/// Picks the worker count for `jobs` independent jobs: `0` means all
/// available cores, and the result never exceeds the job count.
fn resolve_threads(requested: usize, jobs: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    t.clamp(1, jobs.max(1))
}

/// Runs [`cross_val_predict`] `repeats` times with seeds `0..repeats`
/// (offset by `base_seed`) fanned out over `threads` workers (`0` = all
/// cores), returning each repetition's predictions in repetition order.
///
/// `make` receives the repetition's seed, so classifiers needing their own
/// randomness (e.g. a random forest) stay a pure function of the
/// repetition — predictions are **bit-identical at any thread count**.
pub fn repeated_cross_val_predict<C: Classifier>(
    data: &Dataset,
    k: usize,
    repeats: usize,
    base_seed: u64,
    threads: usize,
    make: impl Fn(u64) -> C + Sync,
) -> Vec<Vec<usize>> {
    let mut rec = Recorder::new();
    repeated_cross_val_predict_instrumented(data, k, repeats, base_seed, threads, &mut rec, make)
}

/// [`repeated_cross_val_predict`] with stage telemetry: one `cv rep N`
/// span per repetition (annotated with its seed), recorded into private
/// per-worker [`Recorder`]s that are merged — one track per worker — after
/// the pool joins, plus a final `cv/repetitions` counter.
pub fn repeated_cross_val_predict_instrumented<C: Classifier>(
    data: &Dataset,
    k: usize,
    repeats: usize,
    base_seed: u64,
    threads: usize,
    rec: &mut Recorder,
    make: impl Fn(u64) -> C + Sync,
) -> Vec<Vec<usize>> {
    if repeats == 0 {
        return Vec::new();
    }
    let threads = resolve_threads(threads, repeats);
    let run_rep = |r: usize, worker_rec: &mut Recorder| {
        let seed = base_seed + r as u64;
        let span = worker_rec.start_cat(&format!("cv rep {r}"), "cv");
        worker_rec.annotate(span, "seed", seed);
        let preds = cross_val_predict(data, k, seed, || make(seed));
        worker_rec.end(span);
        preds
    };
    let mut out: Vec<Option<Vec<usize>>> = vec![None; repeats];
    if threads == 1 {
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = Some(run_rep(r, rec));
        }
    } else {
        let run_rep = &run_rep;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                handles.push(scope.spawn(move || {
                    let mut worker_rec = Recorder::new();
                    let mut results = Vec::new();
                    let mut r = t;
                    while r < repeats {
                        results.push((r, run_rep(r, &mut worker_rec)));
                        r += threads;
                    }
                    (results, worker_rec)
                }));
            }
            for h in handles {
                let (results, worker_rec) = h.join().expect("CV worker panicked");
                rec.merge(worker_rec);
                for (r, preds) in results {
                    out[r] = Some(preds);
                }
            }
        });
    }
    rec.counter("cv/repetitions", repeats as f64);
    out.into_iter()
        .map(|p| p.expect("all repetitions filled"))
        .collect()
}

/// Fans `n` independent seeded jobs out over `threads` workers (`0` = all
/// cores), returning `f(0), f(1), ..., f(n - 1)` in index order.
///
/// The same round-robin scoped-pool pattern [`repeated_cross_val_predict`]
/// uses, exposed for experiment loops (e.g. the learning-curve harness)
/// whose per-seed work does not fit the [`Classifier`] shape. `f` must
/// derive all randomness from its index argument to stay deterministic
/// across thread counts.
pub fn parallel_seeds<T: Send>(n: usize, threads: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = resolve_threads(threads, n);
    if n == 0 {
        return Vec::new();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if threads == 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = Some(f(i));
        }
    } else {
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                handles.push(scope.spawn(move || {
                    let mut results = Vec::new();
                    let mut i = t;
                    while i < n {
                        results.push((i, f(i)));
                        i += threads;
                    }
                    results
                }));
            }
            for h in handles {
                for (i, v) in h.join().expect("seed worker panicked") {
                    out[i] = Some(v);
                }
            }
        });
    }
    out.into_iter()
        .map(|v| v.expect("all jobs filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DecisionTree, TreeParams};

    #[test]
    fn folds_partition_the_dataset() {
        let labels: Vec<usize> = (0..100).map(|i| i % 3).collect();
        let folds = stratified_folds(&labels, 10, 7);
        assert_eq!(folds.len(), 10);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn folds_are_stratified() {
        // 80 of class 0, 20 of class 1 → every fold of 10 gets 2 ones.
        let labels: Vec<usize> = std::iter::repeat_n(0, 80)
            .chain(std::iter::repeat_n(1, 20))
            .collect();
        let folds = stratified_folds(&labels, 10, 3);
        for f in &folds {
            let ones = f.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(ones, 2, "fold with {ones} minority samples");
        }
    }

    #[test]
    fn folds_differ_by_seed_but_not_within() {
        let labels: Vec<usize> = (0..60).map(|i| i % 2).collect();
        assert_eq!(
            stratified_folds(&labels, 5, 1),
            stratified_folds(&labels, 5, 1)
        );
        assert_ne!(
            stratified_folds(&labels, 5, 1),
            stratified_folds(&labels, 5, 2)
        );
    }

    #[test]
    fn empty_labels_give_empty_folds() {
        let folds = stratified_folds(&[], 4, 0);
        assert_eq!(folds.len(), 4);
        assert!(folds.iter().all(Vec::is_empty));
    }

    #[test]
    fn class_smaller_than_k_lands_in_distinct_folds() {
        // 3 samples of class 1, k = 5: each lands in its own fold and the
        // partition stays complete.
        let labels = vec![0, 0, 0, 0, 0, 0, 0, 1, 1, 1];
        let folds = stratified_folds(&labels, 5, 11);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        for f in &folds {
            let minority = f.iter().filter(|&&i| labels[i] == 1).count();
            assert!(minority <= 1, "minority class bunched into one fold");
        }
    }

    #[test]
    fn fewer_samples_than_folds_leaves_empty_folds_but_partitions() {
        let labels = vec![0, 1, 0];
        let folds = stratified_folds(&labels, 10, 0);
        assert_eq!(folds.len(), 10);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn gaps_in_the_label_space_are_handled() {
        // Labels are values, not indices: a huge label must not allocate a
        // dense class table (the old implementation indexed `Vec` by label
        // and would try to allocate ~1e9 buckets here).
        let labels = vec![0, 7, 7, 1_000_000_007, 0, 7];
        let folds = stratified_folds(&labels, 3, 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..6).collect::<Vec<_>>());
        // Fold sizes stay balanced to within one sample.
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn dense_labels_match_historical_dealing_order() {
        // The BTreeMap bucketing must keep the exact output the old
        // dense-indexed implementation produced for gapless labels (other
        // tests pin downstream results to it).
        let labels: Vec<usize> = (0..40).map(|i| (i * 7) % 4).collect();
        let folds = stratified_folds(&labels, 5, 9);
        // Class 0 is shuffled first, then classes 1..=3 continue the same
        // round-robin counter.
        let mut expected_sizes = vec![8usize; 5];
        expected_sizes.sort_unstable();
        let mut sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, expected_sizes);
    }

    #[test]
    fn cross_val_predict_learns_separable_data() {
        // Class = x > 5, plenty of samples.
        let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let labels: Vec<usize> = (0..100).map(|i| usize::from(i >= 50)).collect();
        let data = Dataset::new(features, labels.clone(), vec!["x".into()], 2).expect("dataset");
        let preds = cross_val_predict(&data, 10, 0, || DecisionTree::new(TreeParams::default()));
        let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        assert!(correct >= 98, "cv accuracy too low: {correct}/100");
    }

    #[test]
    fn repeated_cv_produces_independent_repetitions() {
        let features: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 7) as f64, i as f64]).collect();
        let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let data =
            Dataset::new(features, labels, vec!["a".into(), "b".into()], 2).expect("dataset");
        let reps = repeated_cross_val_predict(&data, 5, 3, 0, 1, |_| {
            DecisionTree::new(TreeParams::default())
        });
        assert_eq!(reps.len(), 3);
        assert_eq!(reps[0].len(), 40);
    }

    #[test]
    fn repeated_cv_is_bit_identical_across_thread_counts() {
        let features: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 9) as f64, (i % 4) as f64, i as f64 * 0.25])
            .collect();
        let labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let data = Dataset::new(
            features,
            labels,
            vec!["a".into(), "b".into(), "c".into()],
            3,
        )
        .expect("dataset");
        let make = |_seed: u64| DecisionTree::new(TreeParams::default());
        let serial = repeated_cross_val_predict(&data, 5, 8, 42, 1, make);
        let four = repeated_cross_val_predict(&data, 5, 8, 42, 4, make);
        let odd = repeated_cross_val_predict(&data, 5, 8, 42, 3, make);
        let auto = repeated_cross_val_predict(&data, 5, 8, 42, 0, make);
        assert_eq!(serial, four, "1 vs 4 threads diverged");
        assert_eq!(serial, odd, "1 vs 3 threads diverged");
        assert_eq!(serial, auto, "1 vs auto threads diverged");
    }

    #[test]
    fn zoo_models_are_bit_identical_across_thread_counts() {
        // The acceptance bar for the model zoo: forest and GBT runs under
        // repeated CV must not depend on --cv-threads. The forest derives
        // all randomness from the per-repetition seed; the GBT fit is
        // deterministic outright.
        use crate::forest::{ForestParams, RandomForest};
        use crate::gbt::{Gbt, GbtParams};
        let features: Vec<Vec<f64>> = (0..48)
            .map(|i| vec![(i % 8) as f64, (i % 5) as f64 * 0.5, i as f64])
            .collect();
        let labels: Vec<usize> = (0..48).map(|i| i % 3).collect();
        let data = Dataset::new(
            features,
            labels,
            vec!["a".into(), "b".into(), "c".into()],
            3,
        )
        .expect("dataset");

        let make_forest = |seed: u64| {
            RandomForest::new(ForestParams {
                n_trees: 7,
                seed: seed + 1,
                ..ForestParams::default()
            })
        };
        assert_eq!(
            repeated_cross_val_predict(&data, 4, 4, 0, 1, make_forest),
            repeated_cross_val_predict(&data, 4, 4, 0, 4, make_forest),
            "forest diverged across thread counts"
        );

        let make_gbt = |seed: u64| {
            Gbt::new(GbtParams {
                n_rounds: 6,
                seed,
                ..GbtParams::default()
            })
        };
        assert_eq!(
            repeated_cross_val_predict(&data, 4, 4, 0, 1, make_gbt),
            repeated_cross_val_predict(&data, 4, 4, 0, 4, make_gbt),
            "gbt diverged across thread counts"
        );
    }

    #[test]
    fn instrumented_cv_records_one_span_per_repetition() {
        let features: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..30).map(|i| i % 2).collect();
        let data = Dataset::new(features, labels, vec!["x".into()], 2).expect("dataset");
        let mut rec = Recorder::new();
        let reps = repeated_cross_val_predict_instrumented(&data, 3, 6, 0, 2, &mut rec, |_| {
            DecisionTree::new(TreeParams::default())
        });
        assert_eq!(reps.len(), 6);
        let cv_spans = rec.spans().iter().filter(|s| s.cat == "cv").count();
        assert_eq!(cv_spans, 6);
        let last = rec.counters()["cv/repetitions"].last().expect("counter");
        assert_eq!(last.value, 6.0);
    }

    #[test]
    fn parallel_seeds_preserves_index_order() {
        let out = parallel_seeds(17, 4, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(parallel_seeds(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_seeds(3, 0, |i| i), vec![0, 1, 2]);
    }
}

//! Stratified cross-validation.
//!
//! The paper evaluates every classifier with "10-fold stratified
//! cross-validation ... repeated 100 times with random seeds, for ensuring
//! to get unbiased accuracy results". This module implements that exact
//! protocol.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A model trainable on row subsets — implemented by the decision tree and
/// the random forest.
pub trait Classifier {
    /// Fits on the given training rows of `data`.
    fn fit_rows(&mut self, data: &Dataset, rows: &[usize]);
    /// Predicts the class of one feature vector.
    fn predict(&self, x: &[f64]) -> usize;
}

impl Classifier for crate::tree::DecisionTree {
    fn fit_rows(&mut self, data: &Dataset, rows: &[usize]) {
        crate::tree::DecisionTree::fit_rows(self, data, rows);
    }
    fn predict(&self, x: &[f64]) -> usize {
        crate::tree::DecisionTree::predict(self, x)
    }
}

impl Classifier for crate::forest::RandomForest {
    fn fit_rows(&mut self, data: &Dataset, rows: &[usize]) {
        crate::forest::RandomForest::fit_rows(self, data, rows);
    }
    fn predict(&self, x: &[f64]) -> usize {
        crate::forest::RandomForest::predict(self, x)
    }
}

/// Splits sample indices into `k` stratified folds.
///
/// Each class's samples are shuffled and dealt round-robin, so every fold
/// approximates the global class distribution.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn stratified_folds(labels: &[usize], k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k > 0, "need at least one fold");
    let mut rng = StdRng::seed_from_u64(seed);
    let n_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &l) in labels.iter().enumerate() {
        per_class[l].push(i);
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut next = 0usize;
    for class_rows in &mut per_class {
        class_rows.shuffle(&mut rng);
        for &row in class_rows.iter() {
            folds[next % k].push(row);
            next += 1;
        }
    }
    folds
}

/// Out-of-fold predictions for every sample under k-fold CV.
///
/// `make` builds a fresh classifier per fold (keeping folds independent).
/// Returns one predicted label per sample, aligned with `data` rows.
pub fn cross_val_predict<C: Classifier>(
    data: &Dataset,
    k: usize,
    seed: u64,
    mut make: impl FnMut() -> C,
) -> Vec<usize> {
    let folds = stratified_folds(data.labels(), k, seed);
    let mut predictions = vec![0usize; data.len()];
    for test_fold in &folds {
        if test_fold.is_empty() {
            continue;
        }
        let train: Vec<usize> = folds
            .iter()
            .filter(|f| !std::ptr::eq(*f, test_fold))
            .flatten()
            .copied()
            .collect();
        if train.is_empty() {
            continue;
        }
        let mut model = make();
        model.fit_rows(data, &train);
        for &row in test_fold {
            predictions[row] = model.predict(data.row(row));
        }
    }
    predictions
}

/// Runs [`cross_val_predict`] `repeats` times with seeds `0..repeats`
/// (offset by `base_seed`), returning each repetition's predictions.
pub fn repeated_cross_val_predict<C: Classifier>(
    data: &Dataset,
    k: usize,
    repeats: usize,
    base_seed: u64,
    mut make: impl FnMut() -> C,
) -> Vec<Vec<usize>> {
    (0..repeats)
        .map(|r| cross_val_predict(data, k, base_seed + r as u64, &mut make))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DecisionTree, TreeParams};

    #[test]
    fn folds_partition_the_dataset() {
        let labels: Vec<usize> = (0..100).map(|i| i % 3).collect();
        let folds = stratified_folds(&labels, 10, 7);
        assert_eq!(folds.len(), 10);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn folds_are_stratified() {
        // 80 of class 0, 20 of class 1 → every fold of 10 gets 2 ones.
        let labels: Vec<usize> = std::iter::repeat_n(0, 80)
            .chain(std::iter::repeat_n(1, 20))
            .collect();
        let folds = stratified_folds(&labels, 10, 3);
        for f in &folds {
            let ones = f.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(ones, 2, "fold with {ones} minority samples");
        }
    }

    #[test]
    fn folds_differ_by_seed_but_not_within() {
        let labels: Vec<usize> = (0..60).map(|i| i % 2).collect();
        assert_eq!(
            stratified_folds(&labels, 5, 1),
            stratified_folds(&labels, 5, 1)
        );
        assert_ne!(
            stratified_folds(&labels, 5, 1),
            stratified_folds(&labels, 5, 2)
        );
    }

    #[test]
    fn cross_val_predict_learns_separable_data() {
        // Class = x > 5, plenty of samples.
        let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let labels: Vec<usize> = (0..100).map(|i| usize::from(i >= 50)).collect();
        let data = Dataset::new(features, labels.clone(), vec!["x".into()], 2).expect("dataset");
        let preds = cross_val_predict(&data, 10, 0, || DecisionTree::new(TreeParams::default()));
        let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        assert!(correct >= 98, "cv accuracy too low: {correct}/100");
    }

    #[test]
    fn repeated_cv_produces_independent_repetitions() {
        let features: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 7) as f64, i as f64]).collect();
        let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let data =
            Dataset::new(features, labels, vec!["a".into(), "b".into()], 2).expect("dataset");
        let reps =
            repeated_cross_val_predict(&data, 5, 3, 0, || DecisionTree::new(TreeParams::default()));
        assert_eq!(reps.len(), 3);
        assert_eq!(reps[0].len(), 40);
    }
}

//! Flat, quantized compilation of zoo models for the serving hot path.
//!
//! Every zoo model (single [`DecisionTree`], [`RandomForest`],
//! [`Gbt`]) lowers to one contiguous structure-of-arrays arena:
//!
//! * `feat`   — `u16` feature id per node (`u16::MAX` marks a leaf);
//! * `thresh` — `i32` fixed-point threshold per node;
//! * `left`   — `u32` left-child index per internal node (breadth-first
//!   layout makes siblings adjacent, so the right child is `left + 1`);
//!   for leaves this slot holds the payload (class id, or an index into
//!   the additive-value table).
//!
//! Nodes are laid out **breadth-first per tree**, trees back-to-back, so
//! the top of every tree — the levels every single prediction walks —
//! occupies one dense cache-line-friendly prefix instead of the
//! pointer-chasing pre-order the trainer produces. A node costs 10 bytes
//! across the three arrays versus ~48 for the boxed float enum.
//!
//! # Quantization scale
//!
//! Thresholds are stored as `floor(t · 2^k)` with a **per-feature** scale
//! `2^k`; incoming features are quantized once per prediction as
//! `ceil(x · 2^k)`. `k` is the largest value `<= MAX_SCALE_BITS` (20, ≈
//! six decimal digits of resolution) for which every threshold on that
//! feature still fits in `i32`. Per-feature scales matter because the
//! static feature space mixes large instruction counts with sub-unit
//! ratio features: a shared scale wide enough for the counts would
//! destroy the ratios' resolution.
//!
//! The rounding pair (`ceil` input, `floor` threshold) is chosen so the
//! integer compare is *exactly* the float compare on the quantization
//! grid: scaling by a power of two is lossless in f64, and for any real
//! `r` and integer `q`, `r <= q ⟺ ceil(r) <= q`. Hence for every input
//! `x`,
//!
//! ```text
//! flat.predict(x) == float.predict(snap(x)),   snap(x) = ceil(x·2^k)/2^k
//! ```
//!
//! bit-exactly — including `NaN`, which quantizes to `i64::MAX` and takes
//! the right branch exactly as a float `NaN <= t` comparison does. Inputs
//! already on the grid (in particular any value with `<= k` fractional
//! bits) satisfy `snap(x) == x`, so for them the flat decision equals the
//! float reference on the raw input. The proptest below proves both
//! properties on randomized models and vectors; the dataset-level
//! bit-exactness check lives with `EnergyPredictor` in `pulp-energy`.

use crate::forest::RandomForest;
use crate::gbt::Gbt;
use crate::tree::{DecisionTree, NodeView};
use serde::{Deserialize, Serialize};

/// Upper bound on the per-feature fixed-point scale exponent.
pub const MAX_SCALE_BITS: u32 = 20;

/// Leaf sentinel in the `feat` array.
const LEAF: u16 = u16::MAX;

/// How a compiled model turns per-tree leaf payloads into a class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum FlatKind {
    /// One tree; the leaf payload is the class.
    Single,
    /// Majority vote over trees; ties resolve to the lowest class
    /// (matching [`RandomForest::predict`]).
    Vote,
    /// Additive scores: leaf payloads index `values`; tree `i` belongs to
    /// class `i / rounds`. Sums accumulate in the same order as
    /// [`Gbt::scores`], so they are bit-identical f64s.
    Additive {
        rounds: usize,
        base: Vec<f64>,
        values: Vec<f64>,
    },
}

/// A zoo model compiled to contiguous quantized node arrays.
///
/// Build one with [`FlatModel::from_tree`], [`FlatModel::from_forest`] or
/// [`FlatModel::from_gbt`]; compilation is deterministic, so compiling
/// the same fitted model twice yields equal `FlatModel`s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatModel {
    n_features: usize,
    n_classes: usize,
    /// Per-feature scale exponents: feature `f` is quantized by `2^scale_bits[f]`.
    scale_bits: Vec<u32>,
    /// Feature id per node; [`LEAF`] marks leaves.
    feat: Vec<u16>,
    /// `floor(threshold · 2^k)` per internal node; 0 for leaves.
    thresh: Vec<i32>,
    /// Left-child index per internal node (right child = left + 1);
    /// payload for leaves.
    left: Vec<u32>,
    /// First node of each tree.
    roots: Vec<u32>,
    kind: FlatKind,
}

/// Quantizes one input feature: exact power-of-two scaling then `ceil`.
/// `NaN` maps to `i64::MAX` so it takes the right branch, exactly like a
/// float `NaN <= t` comparison; the `as` cast saturates at the type
/// bounds for overflowing magnitudes.
#[inline]
fn quantize(x: f64, scale: f64) -> i64 {
    let q = (x * scale).ceil();
    if q.is_nan() {
        i64::MAX
    } else {
        q as i64
    }
}

fn quantize_threshold(t: f64, scale: f64) -> i32 {
    // In range by scale selection for any |t| < 2^31; clamp keeps the
    // cast defined beyond the supported feature magnitude.
    (t * scale).floor().clamp(i32::MIN as f64, i32::MAX as f64) as i32
}

fn threshold_fits(t: f64, bits: u32) -> bool {
    let q = (t * (1u64 << bits) as f64).floor();
    (i32::MIN as f64..=i32::MAX as f64).contains(&q)
}

/// Walks a float tree collecting `(global feature, threshold)` pairs and
/// the max leaf class.
fn scan_tree(
    tree: &DecisionTree,
    columns: Option<&[usize]>,
    thresholds: &mut Vec<(usize, f64)>,
    max_class: &mut usize,
) {
    for id in 0..tree.node_count() {
        match tree.node(id) {
            NodeView::Leaf { class } => *max_class = (*max_class).max(class),
            NodeView::Internal {
                feature, threshold, ..
            } => {
                let global = columns.map_or(feature, |c| c[feature]);
                thresholds.push((global, threshold));
            }
        }
    }
}

impl FlatModel {
    /// Compiles a fitted single decision tree.
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted.
    pub fn from_tree(tree: &DecisionTree) -> Self {
        assert!(tree.node_count() > 0, "cannot compile an unfitted tree");
        let mut b = Builder::new(tree.n_features());
        b.scan(tree, None);
        b.finish_scales();
        b.lower(tree, None, |_, class| class as u32);
        b.build(FlatKind::Single)
    }

    /// Compiles a fitted random forest (majority vote, ties to the
    /// lowest class — identical to [`RandomForest::predict`]).
    ///
    /// # Panics
    ///
    /// Panics if the forest is unfitted.
    pub fn from_forest(forest: &RandomForest) -> Self {
        assert!(!forest.is_empty(), "cannot compile an unfitted forest");
        let mut b = Builder::new(forest.n_features());
        for (tree, columns) in forest.trees() {
            b.scan(tree, Some(columns));
        }
        b.finish_scales();
        for (tree, columns) in forest.trees() {
            b.lower(tree, Some(columns), |_, class| class as u32);
        }
        b.build(FlatKind::Vote)
    }

    /// Compiles a fitted gradient-boosted ensemble. Leaf values are kept
    /// as exact f64s and summed in [`Gbt::scores`] order, so the additive
    /// scores (and therefore the argmax) are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if the model is unfitted.
    pub fn from_gbt(gbt: &Gbt) -> Self {
        assert!(gbt.n_classes() > 0, "cannot compile an unfitted model");
        let mut b = Builder::new(gbt.n_features());
        for c in 0..gbt.n_classes() {
            for (tree, _) in gbt.stages(c) {
                b.scan(tree, None);
            }
        }
        b.finish_scales();
        let mut values = Vec::new();
        for c in 0..gbt.n_classes() {
            for (tree, leaf_values) in gbt.stages(c) {
                b.lower(tree, None, |node_id, _| {
                    values.push(leaf_values[node_id]);
                    (values.len() - 1) as u32
                });
            }
        }
        let rounds = gbt.n_trees() / gbt.n_classes();
        let mut model = b.build(FlatKind::Additive {
            rounds,
            base: gbt.base_scores().to_vec(),
            values,
        });
        model.n_classes = gbt.n_classes();
        model
    }

    /// Predicts the class of one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than the compiled feature count.
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut scratch = Vec::with_capacity(self.n_features);
        self.predict_with(&mut scratch, x)
    }

    /// [`predict`](Self::predict) with a caller-owned quantization
    /// scratch buffer — the batch hot path's allocation-free entry.
    pub fn predict_with(&self, scratch: &mut Vec<i64>, x: &[f64]) -> usize {
        assert!(
            x.len() >= self.n_features,
            "feature vector too short: {} < {}",
            x.len(),
            self.n_features
        );
        scratch.clear();
        scratch.extend(
            x.iter()
                .take(self.n_features)
                .zip(&self.scale_bits)
                .map(|(&v, &bits)| quantize(v, (1u64 << bits) as f64)),
        );
        match &self.kind {
            FlatKind::Single => self.walk(self.roots[0] as usize, scratch) as usize,
            FlatKind::Vote => {
                let mut votes = vec![0u32; self.n_classes];
                for &root in &self.roots {
                    votes[self.walk(root as usize, scratch) as usize] += 1;
                }
                argmax_first(votes.iter().map(|&v| v as f64))
            }
            FlatKind::Additive {
                rounds,
                base,
                values,
            } => {
                let mut scores = base.clone();
                for (i, &root) in self.roots.iter().enumerate() {
                    scores[i / rounds] += values[self.walk(root as usize, scratch) as usize];
                }
                argmax_first(scores.iter().copied())
            }
        }
    }

    #[inline]
    fn walk(&self, mut id: usize, qx: &[i64]) -> u32 {
        loop {
            let f = self.feat[id];
            if f == LEAF {
                return self.left[id];
            }
            let l = self.left[id] as usize;
            id = if qx[f as usize] <= self.thresh[id] as i64 {
                l
            } else {
                l + 1
            };
        }
    }

    /// Grid representative of `x`: the input the integer path effectively
    /// classifies, `snap(x)[f] = ceil(x[f]·2^k_f)/2^k_f`. The compiled
    /// model satisfies `flat.predict(x) == float.predict(&flat.snap(x))`
    /// for every `x` (see the module docs for why).
    pub fn snap(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .take(self.n_features)
            .zip(&self.scale_bits)
            .map(|(&v, &bits)| {
                let s = (1u64 << bits) as f64;
                (v * s).ceil() / s
            })
            .collect()
    }

    /// Number of features the model was compiled for.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes the model can emit.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total node count across all compiled trees.
    pub fn n_nodes(&self) -> usize {
        self.feat.len()
    }

    /// Number of compiled trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Per-feature quantization scale exponents (`2^k` scales).
    pub fn scale_bits(&self) -> &[u32] {
        &self.scale_bits
    }
}

/// First-wins argmax: strictly greater replaces, so ties keep the lowest
/// index — the shared tie rule of the forest vote and the GBT argmax.
fn argmax_first(scores: impl Iterator<Item = f64>) -> usize {
    let mut best = 0;
    let mut best_score = f64::NEG_INFINITY;
    for (i, s) in scores.enumerate() {
        if s > best_score {
            best = i;
            best_score = s;
        }
    }
    best
}

struct Builder {
    n_features: usize,
    thresholds: Vec<(usize, f64)>,
    max_class: usize,
    scale_bits: Vec<u32>,
    feat: Vec<u16>,
    thresh: Vec<i32>,
    left: Vec<u32>,
    roots: Vec<u32>,
}

impl Builder {
    fn new(n_features: usize) -> Self {
        assert!(
            n_features < LEAF as usize,
            "feature space too wide for u16 ids"
        );
        Self {
            n_features,
            thresholds: Vec::new(),
            max_class: 0,
            scale_bits: Vec::new(),
            feat: Vec::new(),
            thresh: Vec::new(),
            left: Vec::new(),
            roots: Vec::new(),
        }
    }

    fn scan(&mut self, tree: &DecisionTree, columns: Option<&[usize]>) {
        scan_tree(tree, columns, &mut self.thresholds, &mut self.max_class);
    }

    /// Fixes each feature's scale to the largest exponent under which all
    /// of its thresholds still fit in `i32`.
    fn finish_scales(&mut self) {
        let mut bits = vec![MAX_SCALE_BITS; self.n_features];
        for &(f, t) in &self.thresholds {
            while bits[f] > 0 && !threshold_fits(t, bits[f]) {
                bits[f] -= 1;
            }
        }
        self.scale_bits = bits;
    }

    /// Appends `tree` in breadth-first order. `payload` maps a leaf's
    /// original node id and class to the `u32` stored in its `left` slot.
    fn lower(
        &mut self,
        tree: &DecisionTree,
        columns: Option<&[usize]>,
        mut payload: impl FnMut(usize, usize) -> u32,
    ) {
        let base = self.feat.len();
        self.roots.push(base as u32);
        // BFS queue of original node ids; slot i of this tree's region
        // receives queue element i, so children enqueue in adjacent pairs.
        let mut queue = std::collections::VecDeque::from([0usize]);
        let mut next_slot = base + 1;
        while let Some(src) = queue.pop_front() {
            match tree.node(src) {
                NodeView::Leaf { class } => {
                    self.feat.push(LEAF);
                    self.thresh.push(0);
                    self.left.push(payload(src, class));
                }
                NodeView::Internal {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let global = columns.map_or(feature, |c| c[feature]);
                    let scale = (1u64 << self.scale_bits[global]) as f64;
                    self.feat.push(global as u16);
                    self.thresh.push(quantize_threshold(threshold, scale));
                    self.left.push(next_slot as u32);
                    next_slot += 2;
                    queue.push_back(left);
                    queue.push_back(right);
                }
            }
        }
        debug_assert_eq!(self.feat.len(), next_slot);
    }

    fn build(self, kind: FlatKind) -> FlatModel {
        FlatModel {
            n_features: self.n_features,
            n_classes: self.max_class + 1,
            scale_bits: self.scale_bits,
            feat: self.feat,
            thresh: self.thresh,
            left: self.left,
            roots: self.roots,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::ForestParams;
    use crate::gbt::GbtParams;
    use crate::tree::TreeParams;

    fn data(rows: Vec<Vec<f64>>, labels: Vec<usize>, n_classes: usize) -> Dataset {
        let width = rows[0].len();
        let names = (0..width).map(|i| format!("f{i}")).collect();
        Dataset::new(rows, labels, names, n_classes).expect("valid dataset")
    }

    fn blobs() -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (c, centre) in [0.0, 7.25, 19.5].iter().enumerate() {
            for i in 0..10 {
                rows.push(vec![centre + i as f64 * 0.125, (i % 3) as f64, 1000.5]);
                labels.push(c);
            }
        }
        data(rows, labels, 3)
    }

    #[test]
    fn tree_compiles_bit_exact_on_grid_inputs() {
        let d = blobs();
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        let flat = FlatModel::from_tree(&t);
        // Training features have <= 3 fractional bits — far inside the
        // grid — so flat must equal float on the raw inputs.
        for i in 0..d.len() {
            assert_eq!(flat.predict(d.row(i)), t.predict(d.row(i)), "row {i}");
        }
        assert_eq!(flat.n_trees(), 1);
        assert_eq!(flat.n_nodes(), t.node_count());
    }

    #[test]
    fn forest_compiles_bit_exact_on_grid_inputs() {
        let d = blobs();
        let mut f = RandomForest::new(ForestParams {
            n_trees: 17,
            max_features: Some(2),
            ..ForestParams::default()
        });
        f.fit(&d);
        let flat = FlatModel::from_forest(&f);
        for i in 0..d.len() {
            assert_eq!(flat.predict(d.row(i)), f.predict(d.row(i)), "row {i}");
        }
        assert_eq!(flat.n_trees(), 17);
    }

    #[test]
    fn gbt_compiles_bit_exact_on_grid_inputs() {
        let d = blobs();
        let mut g = Gbt::new(GbtParams::default());
        g.fit(&d);
        let flat = FlatModel::from_gbt(&g);
        for i in 0..d.len() {
            assert_eq!(flat.predict(d.row(i)), g.predict(d.row(i)), "row {i}");
        }
        assert_eq!(flat.n_classes(), 3);
        assert_eq!(flat.n_trees(), g.n_trees());
    }

    #[test]
    fn layout_is_breadth_first_with_adjacent_siblings() {
        let d = blobs();
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        let flat = FlatModel::from_tree(&t);
        // Every internal node's children sit later in the arena, in an
        // adjacent pair, and child indices increase monotonically across
        // the scan — the defining property of BFS layout.
        let mut last_child = 0;
        for id in 0..flat.n_nodes() {
            if flat.feat[id] != LEAF {
                let l = flat.left[id] as usize;
                assert!(l > id, "child {l} before parent {id}");
                assert!(l > last_child);
                last_child = l;
                assert!(l + 1 < flat.n_nodes());
            }
        }
    }

    #[test]
    fn large_magnitude_features_lower_their_scale_only() {
        // Feature 0 is a constant ratio; feature 1 is a count of millions,
        // which cannot carry 20 fractional bits in an i32. The split must
        // land on the count, dropping only that feature's scale.
        let d = data(
            vec![
                vec![0.125, 2_000_000.0],
                vec![0.125, 2_000_001.0],
                vec![0.125, 3_000_000.0],
                vec![0.125, 3_000_100.0],
            ],
            vec![0, 0, 1, 1],
            2,
        );
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        let flat = FlatModel::from_tree(&t);
        for i in 0..d.len() {
            assert_eq!(flat.predict(d.row(i)), t.predict(d.row(i)));
        }
        // The split threshold is 2_500_000.5; its scale dropped to fit
        // i32 while the unused ratio feature keeps full resolution.
        assert!(flat.scale_bits()[1] < MAX_SCALE_BITS);
        assert!(threshold_fits(2_500_000.5, flat.scale_bits()[1]));
        assert_eq!(flat.scale_bits()[0], MAX_SCALE_BITS);
    }

    #[test]
    fn nan_input_takes_the_right_branch_like_float() {
        let d = blobs();
        let mut t = DecisionTree::new(TreeParams::default());
        t.fit(&d);
        let flat = FlatModel::from_tree(&t);
        let x = vec![f64::NAN, f64::NAN, f64::NAN];
        assert_eq!(flat.predict(&x), t.predict(&x));
    }

    #[test]
    fn compilation_is_deterministic_and_round_trips_serde() {
        let d = blobs();
        let mut g = Gbt::new(GbtParams::default());
        g.fit(&d);
        let a = FlatModel::from_gbt(&g);
        let b = FlatModel::from_gbt(&g);
        assert_eq!(a, b);
        let json = serde_json::to_string(&a).expect("serialises");
        let back: FlatModel = serde_json::from_str(&json).expect("parses");
        assert_eq!(a, back);
        for i in 0..d.len() {
            assert_eq!(a.predict(d.row(i)), back.predict(d.row(i)));
        }
    }

    #[test]
    fn predict_with_reuses_scratch_identically() {
        let d = blobs();
        let mut f = RandomForest::new(ForestParams {
            n_trees: 9,
            ..ForestParams::default()
        });
        f.fit(&d);
        let flat = FlatModel::from_forest(&f);
        let mut scratch = Vec::new();
        for i in 0..d.len() {
            assert_eq!(
                flat.predict_with(&mut scratch, d.row(i)),
                flat.predict(d.row(i))
            );
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::ForestParams;
    use crate::gbt::GbtParams;
    use crate::tree::TreeParams;
    use proptest::prelude::*;

    /// A random small classification dataset: 3 features, up to 4
    /// classes, feature magnitudes spanning ratios to thousands.
    fn arb_dataset() -> impl Strategy<Value = Dataset> {
        (prop::collection::vec(
            (-10.0f64..10.0, 0.0f64..2000.0, -1.0f64..1.0, 0usize..4),
            8..40,
        ),)
            .prop_map(|(rows,)| {
                let labels: Vec<usize> = rows.iter().map(|r| r.3).collect();
                let feats: Vec<Vec<f64>> = rows.into_iter().map(|r| vec![r.0, r.1, r.2]).collect();
                Dataset::new(feats, labels, vec!["a".into(), "b".into(), "c".into()], 4)
                    .expect("valid dataset")
            })
    }

    fn arb_x() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-3000.0f64..3000.0, 3)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The universal exactness contract: for ANY input, the quantized
        /// flat walk decides exactly like the float model on the input's
        /// grid representative — for the tree, the forest and the GBT.
        #[test]
        fn flat_matches_float_on_snapped_inputs(d in arb_dataset(), x in arb_x()) {
            let mut tree = DecisionTree::new(TreeParams::default());
            tree.fit(&d);
            let flat = FlatModel::from_tree(&tree);
            prop_assert_eq!(flat.predict(&x), tree.predict(&flat.snap(&x)));

            let mut forest = RandomForest::new(ForestParams {
                n_trees: 7,
                max_features: Some(2),
                ..ForestParams::default()
            });
            forest.fit(&d);
            let flat = FlatModel::from_forest(&forest);
            prop_assert_eq!(flat.predict(&x), forest.predict(&flat.snap(&x)));

            let mut gbt = Gbt::new(GbtParams { n_rounds: 5, ..GbtParams::default() });
            gbt.fit(&d);
            let flat = FlatModel::from_gbt(&gbt);
            prop_assert_eq!(flat.predict(&x), gbt.predict(&flat.snap(&x)));
        }

        /// Grid-aligned inputs are their own representative, so the flat
        /// decision equals the float reference on the RAW vector.
        #[test]
        fn flat_matches_float_bit_exactly_on_grid_inputs(
            d in arb_dataset(),
            xq in prop::collection::vec(-2_000_000i64..2_000_000, 3),
            bits in 0u32..10,
        ) {
            // Any value with <= 10 fractional bits is on every feature's
            // grid (scales never drop below 2^10 for these magnitudes).
            let x: Vec<f64> = xq.iter().map(|&q| q as f64 / (1u64 << bits) as f64 / 1024.0).collect();
            let mut tree = DecisionTree::new(TreeParams::default());
            tree.fit(&d);
            let flat = FlatModel::from_tree(&tree);
            prop_assert!(flat.scale_bits().iter().all(|&b| b >= bits + 10));
            prop_assert_eq!(flat.predict(&x), tree.predict(&x));

            let mut gbt = Gbt::new(GbtParams { n_rounds: 4, ..GbtParams::default() });
            gbt.fit(&d);
            let flat = FlatModel::from_gbt(&gbt);
            prop_assert_eq!(flat.predict(&x), gbt.predict(&x));
        }
    }
}

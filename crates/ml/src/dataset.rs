//! Tabular datasets for the classification task.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced when assembling a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Feature matrix and label vector lengths differ.
    LengthMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A row has the wrong number of features.
    RaggedRow {
        /// Index of the offending row.
        row: usize,
        /// Its length.
        len: usize,
        /// Expected length.
        expected: usize,
    },
    /// A label is outside `0..n_classes`.
    LabelOutOfRange {
        /// Index of the offending sample.
        row: usize,
        /// The label value.
        label: usize,
        /// Number of classes.
        n_classes: usize,
    },
    /// Feature-name count disagrees with the matrix width.
    NameMismatch {
        /// Number of names provided.
        names: usize,
        /// Matrix width.
        width: usize,
    },
    /// A feature value is NaN.
    NanFeature {
        /// Row index.
        row: usize,
        /// Column index.
        col: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LengthMismatch { rows, labels } => {
                write!(f, "{rows} feature rows but {labels} labels")
            }
            Self::RaggedRow { row, len, expected } => {
                write!(f, "row {row} has {len} features, expected {expected}")
            }
            Self::LabelOutOfRange {
                row,
                label,
                n_classes,
            } => {
                write!(f, "row {row}: label {label} outside 0..{n_classes}")
            }
            Self::NameMismatch { names, width } => {
                write!(f, "{names} feature names for a width-{width} matrix")
            }
            Self::NanFeature { row, col } => write!(f, "NaN feature at ({row}, {col})"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// A labelled feature matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    feature_names: Vec<String>,
    n_classes: usize,
}

impl Dataset {
    /// Assembles and checks a dataset.
    ///
    /// # Errors
    ///
    /// Returns an error for shape mismatches, out-of-range labels or NaN
    /// features.
    pub fn new(
        features: Vec<Vec<f64>>,
        labels: Vec<usize>,
        feature_names: Vec<String>,
        n_classes: usize,
    ) -> Result<Self, DatasetError> {
        if features.len() != labels.len() {
            return Err(DatasetError::LengthMismatch {
                rows: features.len(),
                labels: labels.len(),
            });
        }
        let width = features.first().map_or(feature_names.len(), Vec::len);
        if feature_names.len() != width {
            return Err(DatasetError::NameMismatch {
                names: feature_names.len(),
                width,
            });
        }
        for (i, row) in features.iter().enumerate() {
            if row.len() != width {
                return Err(DatasetError::RaggedRow {
                    row: i,
                    len: row.len(),
                    expected: width,
                });
            }
            for (j, v) in row.iter().enumerate() {
                if v.is_nan() {
                    return Err(DatasetError::NanFeature { row: i, col: j });
                }
            }
        }
        for (i, &l) in labels.iter().enumerate() {
            if l >= n_classes {
                return Err(DatasetError::LabelOutOfRange {
                    row: i,
                    label: l,
                    n_classes,
                });
            }
        }
        Ok(Self {
            features,
            labels,
            feature_names,
            n_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` for an empty dataset.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.features[i]
    }

    /// Label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Projects the dataset onto a subset of feature columns (used for the
    /// paper's feature-pruning experiments).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select_features(&self, columns: &[usize]) -> Dataset {
        let features = self
            .features
            .iter()
            .map(|row| columns.iter().map(|&c| row[c]).collect())
            .collect();
        let feature_names = columns
            .iter()
            .map(|&c| self.feature_names[c].clone())
            .collect();
        Dataset {
            features,
            labels: self.labels.clone(),
            feature_names,
            n_classes: self.n_classes,
        }
    }

    /// Looks up feature columns by name.
    ///
    /// Returns `None` if any name is missing.
    pub fn columns_named(&self, names: &[&str]) -> Option<Vec<usize>> {
        names
            .iter()
            .map(|n| self.feature_names.iter().position(|f| f == n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::new(
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            vec![0, 1, 1],
            vec!["a".into(), "b".into()],
            2,
        )
        .expect("valid dataset")
    }

    #[test]
    fn accessors_work() {
        let d = small();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert_eq!(d.label(2), 1);
        assert_eq!(d.class_counts(), vec![1, 2]);
    }

    #[test]
    fn rejects_shape_mismatches() {
        assert!(matches!(
            Dataset::new(vec![vec![1.0]], vec![0, 1], vec!["a".into()], 2),
            Err(DatasetError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Dataset::new(
                vec![vec![1.0], vec![1.0, 2.0]],
                vec![0, 1],
                vec!["a".into()],
                2
            ),
            Err(DatasetError::RaggedRow { row: 1, .. })
        ));
        assert!(matches!(
            Dataset::new(vec![vec![1.0]], vec![5], vec!["a".into()], 2),
            Err(DatasetError::LabelOutOfRange { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![vec![f64::NAN]], vec![0], vec!["a".into()], 2),
            Err(DatasetError::NanFeature { .. })
        ));
        assert!(matches!(
            Dataset::new(vec![vec![1.0]], vec![0], vec![], 2),
            Err(DatasetError::NameMismatch { .. })
        ));
    }

    #[test]
    fn select_features_projects_columns() {
        let d = small().select_features(&[1]);
        assert_eq!(d.n_features(), 1);
        assert_eq!(d.row(0), &[2.0]);
        assert_eq!(d.feature_names(), &["b".to_string()]);
    }

    #[test]
    fn columns_named_resolves() {
        let d = small();
        assert_eq!(d.columns_named(&["b", "a"]), Some(vec![1, 0]));
        assert_eq!(d.columns_named(&["zzz"]), None);
    }
}

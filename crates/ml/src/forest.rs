//! Random forest — bagged trees with feature subsampling.
//!
//! The paper's related work uses random forests for energy prediction
//! (Benedict et al.), and its future work calls for stronger models than
//! a single tree; the `pulp_cli bench models` zoo compares both on the same
//! protocol.

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeParams};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters.
    pub tree: TreeParams,
    /// Features sampled per tree; `None` = `sqrt(n_features)`.
    pub max_features: Option<usize>,
    /// RNG seed for bootstrap and feature sampling.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self {
            n_trees: 50,
            tree: TreeParams::default(),
            max_features: None,
            seed: 0,
        }
    }
}

struct ForestTree {
    tree: DecisionTree,
    /// Columns (into the full feature space) this tree was trained on.
    columns: Vec<usize>,
}

/// A fitted random forest.
pub struct RandomForest {
    params: ForestParams,
    trees: Vec<ForestTree>,
    n_features: usize,
}

impl RandomForest {
    /// Creates an unfitted forest.
    pub fn new(params: ForestParams) -> Self {
        Self {
            params,
            trees: Vec::new(),
            n_features: 0,
        }
    }

    /// Fits on a row subset of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn fit_rows(&mut self, data: &Dataset, rows: &[usize]) {
        assert!(!rows.is_empty(), "cannot fit on an empty training set");
        self.trees.clear();
        self.n_features = data.n_features();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let m = self
            .params
            .max_features
            .unwrap_or_else(|| (data.n_features() as f64).sqrt().ceil() as usize)
            .clamp(1, data.n_features());
        let mut all_columns: Vec<usize> = (0..data.n_features()).collect();
        for _ in 0..self.params.n_trees {
            // Bootstrap sample of the training rows.
            let boot: Vec<usize> = (0..rows.len())
                .map(|_| rows[rng.gen_range(0..rows.len())])
                .collect();
            // Feature subset for this tree.
            all_columns.shuffle(&mut rng);
            let mut columns = all_columns[..m].to_vec();
            columns.sort_unstable();
            let projected = data.select_features(&columns);
            let mut tree = DecisionTree::new(self.params.tree);
            tree.fit_rows(&projected, &boot);
            self.trees.push(ForestTree { tree, columns });
        }
    }

    /// Fits on all rows.
    pub fn fit(&mut self, data: &Dataset) {
        let rows: Vec<usize> = (0..data.len()).collect();
        self.fit_rows(data, &rows);
    }

    /// Majority-vote prediction.
    ///
    /// # Panics
    ///
    /// Panics if the forest is unfitted.
    pub fn predict(&self, x: &[f64]) -> usize {
        assert!(
            !self.trees.is_empty(),
            "predict called on an unfitted forest"
        );
        let mut votes = std::collections::HashMap::new();
        let mut scratch = Vec::new();
        for ft in &self.trees {
            scratch.clear();
            scratch.extend(ft.columns.iter().map(|&c| x[c]));
            *votes.entry(ft.tree.predict(&scratch)).or_insert(0usize) += 1;
        }
        votes
            .into_iter()
            .max_by_key(|&(class, count)| (count, usize::MAX - class))
            .map(|(class, _)| class)
            .unwrap_or(0)
    }

    /// Mean feature importances over trees, mapped back to the full
    /// feature space and normalised.
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut total = vec![0.0; self.n_features];
        for ft in &self.trees {
            for (local, &col) in ft.columns.iter().enumerate() {
                total[col] += ft.tree.feature_importances()[local];
            }
        }
        let norm: f64 = total.iter().sum();
        if norm > 0.0 {
            for t in &mut total {
                *t /= norm;
            }
        }
        total
    }

    /// Number of fitted trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Number of features seen at fit time (0 for an unfitted forest).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Iterates the fitted trees as `(tree, columns)`, where `columns`
    /// maps the tree's local feature indices back to the full feature
    /// space — the flat compiler's input.
    pub fn trees(&self) -> impl Iterator<Item = (&DecisionTree, &[usize])> {
        self.trees
            .iter()
            .map(|ft| (&ft.tree, ft.columns.as_slice()))
    }

    /// Returns `true` before fitting.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data(n_per_class: usize) -> Dataset {
        // Two well-separated 2D blobs.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            let t = i as f64 * 0.1;
            features.push(vec![t, t + 0.5]);
            labels.push(0);
            features.push(vec![10.0 + t, 9.0 - t]);
            labels.push(1);
        }
        Dataset::new(features, labels, vec!["x".into(), "y".into()], 2).expect("valid dataset")
    }

    #[test]
    fn forest_classifies_blobs() {
        let d = blob_data(20);
        let mut f = RandomForest::new(ForestParams {
            n_trees: 11,
            ..ForestParams::default()
        });
        f.fit(&d);
        assert_eq!(f.predict(&[0.5, 1.0]), 0);
        assert_eq!(f.predict(&[10.5, 8.0]), 1);
        assert_eq!(f.len(), 11);
    }

    #[test]
    fn forest_is_seed_deterministic() {
        let d = blob_data(10);
        let mk = |seed| {
            let mut f = RandomForest::new(ForestParams {
                n_trees: 7,
                seed,
                ..Default::default()
            });
            f.fit(&d);
            (0..d.len())
                .map(|i| f.predict(d.row(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(42), mk(42));
    }

    #[test]
    fn importances_normalised() {
        let d = blob_data(10);
        let mut f = RandomForest::new(ForestParams::default());
        f.fit(&d);
        let imp = f.feature_importances();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "unfitted")]
    fn predict_requires_fit() {
        let f = RandomForest::new(ForestParams::default());
        let _ = f.predict(&[0.0, 0.0]);
    }

    #[test]
    fn importances_map_subset_columns_back_to_full_space() {
        // Four features, two pure noise; per-tree importances live in a
        // 2-column local space and must land on the right full-space
        // columns after aggregation.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let t = i as f64 * 0.1;
            features.push(vec![t, 5.0, t + 0.5, 5.0]);
            labels.push(0);
            features.push(vec![10.0 + t, 5.0, 9.0 - t, 5.0]);
            labels.push(1);
        }
        let names = vec!["x".into(), "c0".into(), "y".into(), "c1".into()];
        let d = Dataset::new(features, labels, names, 2).expect("valid dataset");
        let mut f = RandomForest::new(ForestParams {
            n_trees: 21,
            max_features: Some(2),
            ..ForestParams::default()
        });
        f.fit(&d);
        let imp = f.feature_importances();
        assert_eq!(imp.len(), 4);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The constant columns can never split; all mass is on x and y.
        assert_eq!(imp[1], 0.0);
        assert_eq!(imp[3], 0.0);
        assert!(imp[0] > 0.0 && imp[2] > 0.0);
    }

    #[test]
    fn importances_of_unsplittable_forest_stay_zero_not_nan() {
        // Every feature constant: no tree can split, the normaliser is 0,
        // and the importances must come back as zeros (not NaN from 0/0).
        let d = Dataset::new(
            vec![vec![1.0, 2.0]; 8],
            vec![0, 1, 0, 1, 0, 1, 0, 1],
            vec!["a".into(), "b".into()],
            2,
        )
        .expect("valid dataset");
        let mut f = RandomForest::new(ForestParams {
            n_trees: 5,
            ..ForestParams::default()
        });
        f.fit(&d);
        let imp = f.feature_importances();
        assert_eq!(imp, vec![0.0, 0.0]);
    }

    #[test]
    fn importances_before_fit_are_empty() {
        let f = RandomForest::new(ForestParams::default());
        assert!(f.feature_importances().is_empty());
        assert_eq!(f.n_features(), 0);
    }

    #[test]
    fn trees_expose_sorted_column_subsets() {
        let d = blob_data(10);
        let mut f = RandomForest::new(ForestParams {
            n_trees: 9,
            max_features: Some(1),
            ..ForestParams::default()
        });
        f.fit(&d);
        assert_eq!(f.trees().count(), 9);
        for (tree, columns) in f.trees() {
            assert_eq!(columns.len(), 1);
            assert!(columns[0] < d.n_features());
            assert_eq!(tree.n_features(), 1);
        }
    }
}

//! # pulp-ml — classical machine learning for the energy-classification task
//!
//! A from-scratch implementation of the learning stack the paper uses:
//!
//! * a CART [`DecisionTree`] with Gini impurity and feature importances
//!   (the paper's classifier — chosen over deep models precisely because
//!   its importances are inspectable, Table IV);
//! * a [`RandomForest`] for the paper's future-work comparison;
//! * a gradient-boosted ensemble ([`Gbt`]) — one-vs-rest shallow trees
//!   with shrinkage, rounding out the model zoo;
//! * a quantized flat compiler ([`FlatModel`]) that lowers any zoo model
//!   to contiguous breadth-first node arrays (u16 feature ids, i32
//!   fixed-point thresholds) for the serving hot path;
//! * stratified k-fold cross-validation with seeded repetitions
//!   ([`cv::cross_val_predict`]), matching the paper's "10-fold stratified
//!   cross-validation repeated 100 times with random seeds";
//! * plain and *energy-tolerance* accuracy
//!   ([`metrics::tolerance_accuracy`]) — the evaluation axis of Figure 2.
//!
//! # Examples
//!
//! ```
//! use pulp_ml::{Dataset, DecisionTree, TreeParams, cv::cross_val_predict, metrics::accuracy};
//!
//! # fn main() -> Result<(), pulp_ml::DatasetError> {
//! let features: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
//! let labels: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
//! let data = Dataset::new(features, labels.clone(), vec!["x".into()], 2)?;
//! let preds = cross_val_predict(&data, 5, 0, || DecisionTree::new(TreeParams::default()));
//! assert!(accuracy(&preds, &labels) > 0.9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cv;
pub mod dataset;
pub mod flat;
pub mod forest;
pub mod gbt;
pub mod knn;
pub mod metrics;
pub mod split;
pub mod tree;

pub use cv::{
    cross_val_predict, parallel_seeds, repeated_cross_val_predict,
    repeated_cross_val_predict_instrumented, stratified_folds, Classifier,
};
pub use dataset::{Dataset, DatasetError};
pub use flat::{FlatModel, MAX_SCALE_BITS};
pub use forest::{ForestParams, RandomForest};
pub use gbt::{Gbt, GbtParams};
pub use knn::{KNearestNeighbors, KnnParams};
pub use metrics::{
    accuracy, class_scores, confusion_matrix, mean_std, tolerance_accuracy, ClassScore,
};
pub use split::{best_split, best_split_with, entropy, gini, Criterion, Split};
pub use tree::{DecisionTree, NodeView, TreeParams};

//! Impurity measures and best-split search for CART trees.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Split-quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Criterion {
    /// Gini impurity (the paper's setting, scikit-learn default).
    #[default]
    Gini,
    /// Shannon entropy (information gain).
    Entropy,
}

impl Criterion {
    /// Impurity of a class-count histogram under this criterion.
    pub fn impurity(self, counts: &[usize]) -> f64 {
        match self {
            Criterion::Gini => gini(counts),
            Criterion::Entropy => entropy(counts),
        }
    }
}

/// Shannon entropy (bits) of a class-count histogram.
pub fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    -counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / t;
            p * p.log2()
        })
        .sum::<f64>()
}

/// Gini impurity of a class-count histogram.
///
/// `1 - Σ p_c²`; zero for pure nodes, approaching `1 - 1/C` for uniform
/// mixtures over `C` classes.
pub fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

/// A candidate axis-aligned split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// Feature column to test.
    pub feature: usize,
    /// Samples with `x[feature] <= threshold` go left.
    pub threshold: f64,
    /// Impurity decrease, weighted by the node's sample fraction of `n_total`.
    pub weighted_decrease: f64,
}

/// Finds the best Gini split of `rows` over `features`.
///
/// Returns `None` when no split satisfies `min_leaf` on both sides or no
/// feature separates the samples. `n_total` is the size of the full
/// training set, used to weight the impurity decrease for feature
/// importances (matching scikit-learn's convention).
pub fn best_split(
    data: &Dataset,
    rows: &[usize],
    features: &[usize],
    min_leaf: usize,
    n_total: usize,
) -> Option<Split> {
    best_split_with(data, rows, features, min_leaf, n_total, Criterion::Gini)
}

/// [`best_split`] under an explicit impurity criterion.
pub fn best_split_with(
    data: &Dataset,
    rows: &[usize],
    features: &[usize],
    min_leaf: usize,
    n_total: usize,
    criterion: Criterion,
) -> Option<Split> {
    let n = rows.len();
    if n < 2 * min_leaf.max(1) {
        return None;
    }
    let mut parent_counts = vec![0usize; data.n_classes()];
    for &r in rows {
        parent_counts[data.label(r)] += 1;
    }
    let parent_gini = criterion.impurity(&parent_counts);
    if parent_gini == 0.0 {
        return None;
    }

    let mut best: Option<Split> = None;
    let mut scratch: Vec<(f64, usize)> = Vec::with_capacity(n);
    for &f in features {
        scratch.clear();
        scratch.extend(rows.iter().map(|&r| (data.row(r)[f], data.label(r))));
        scratch.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN features"));

        let mut left = vec![0usize; data.n_classes()];
        let mut right = parent_counts.clone();
        for i in 0..n - 1 {
            let (v, l) = scratch[i];
            left[l] += 1;
            right[l] -= 1;
            let next_v = scratch[i + 1].0;
            if v == next_v {
                continue; // cannot split between equal values
            }
            let n_left = i + 1;
            let n_right = n - n_left;
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            let child = (n_left as f64 * criterion.impurity(&left)
                + n_right as f64 * criterion.impurity(&right))
                / n as f64;
            let decrease = (n as f64 / n_total as f64) * (parent_gini - child);
            // Zero-decrease splits are kept (like scikit-learn's splitter):
            // XOR-style problems need a first split that only pays off one
            // level deeper. Ties keep the earliest feature/threshold for
            // determinism.
            if decrease >= 0.0 && best.as_ref().is_none_or(|b| decrease > b.weighted_decrease) {
                best = Some(Split {
                    feature: f,
                    threshold: 0.5 * (v + next_v),
                    weighted_decrease: decrease,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(rows: Vec<Vec<f64>>, labels: Vec<usize>) -> Dataset {
        let width = rows[0].len();
        let names = (0..width).map(|i| format!("f{i}")).collect();
        Dataset::new(rows, labels, names, 3).expect("valid dataset")
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[10, 0]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn finds_perfect_split() {
        let d = data(
            vec![vec![1.0], vec![2.0], vec![10.0], vec![11.0]],
            vec![0, 0, 1, 1],
        );
        let s = best_split(&d, &[0, 1, 2, 3], &[0], 1, 4).expect("split");
        assert_eq!(s.feature, 0);
        assert!(s.threshold > 2.0 && s.threshold < 10.0);
        // Perfect split of a 50/50 node: decrease = parent gini = 0.5.
        assert!((s.weighted_decrease - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pure_node_has_no_split() {
        let d = data(vec![vec![1.0], vec![2.0]], vec![1, 1]);
        assert!(best_split(&d, &[0, 1], &[0], 1, 2).is_none());
    }

    #[test]
    fn constant_feature_has_no_split() {
        let d = data(vec![vec![3.0], vec![3.0]], vec![0, 1]);
        assert!(best_split(&d, &[0, 1], &[0], 1, 2).is_none());
    }

    #[test]
    fn min_leaf_is_respected() {
        let d = data(
            vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]],
            vec![0, 1, 1, 1],
        );
        // min_leaf = 3 cannot be satisfied on 4 samples.
        assert!(best_split(&d, &[0, 1, 2, 3], &[0], 3, 4).is_none());
        // min_leaf = 2 forces the only legal threshold (2.5).
        let s = best_split(&d, &[0, 1, 2, 3], &[0], 2, 4).expect("split");
        assert!((s.threshold - 2.5).abs() < 1e-12);
        assert!(best_split(&d, &[0, 1, 2, 3], &[0], 1, 4).is_some());
    }

    #[test]
    fn picks_most_informative_feature() {
        // f0 is noise, f1 separates perfectly.
        let d = data(
            vec![
                vec![5.0, 1.0],
                vec![1.0, 2.0],
                vec![5.0, 10.0],
                vec![1.0, 11.0],
            ],
            vec![0, 0, 2, 2],
        );
        let s = best_split(&d, &[0, 1, 2, 3], &[0, 1], 1, 4).expect("split");
        assert_eq!(s.feature, 1);
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy(&[10, 0]), 0.0);
        assert!((entropy(&[5, 5]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[4, 4, 4, 4]) - 2.0).abs() < 1e-12);
        assert_eq!(entropy(&[]), 0.0);
    }

    #[test]
    fn entropy_criterion_finds_the_same_perfect_split() {
        let d = data(
            vec![vec![1.0], vec![2.0], vec![10.0], vec![11.0]],
            vec![0, 0, 1, 1],
        );
        let s = best_split_with(&d, &[0, 1, 2, 3], &[0], 1, 4, Criterion::Entropy).expect("split");
        assert_eq!(s.feature, 0);
        assert!(s.threshold > 2.0 && s.threshold < 10.0);
        // Perfect split of a 50/50 node: decrease = 1 bit.
        assert!((s.weighted_decrease - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighting_scales_with_node_fraction() {
        let d = data(
            vec![vec![1.0], vec![2.0], vec![10.0], vec![11.0]],
            vec![0, 0, 1, 1],
        );
        // Same node, but pretend it is half of a bigger training set.
        let s = best_split(&d, &[0, 1, 2, 3], &[0], 1, 8).expect("split");
        assert!((s.weighted_decrease - 0.25).abs() < 1e-12);
    }
}

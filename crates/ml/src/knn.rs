//! k-nearest-neighbours classifier.
//!
//! A distance-based baseline to contrast with the tree models: where the
//! decision tree partitions feature space with axis-aligned thresholds,
//! k-NN predicts from raw similarity. Features are z-score standardised
//! internally (the static features span 10 orders of magnitude — `transfer`
//! in bytes vs port pressures in [0, 1] — so unscaled distances would be
//! meaningless).

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// k-NN hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnnParams {
    /// Number of neighbours consulted.
    pub k: usize,
}

impl Default for KnnParams {
    fn default() -> Self {
        Self { k: 5 }
    }
}

/// A fitted k-NN classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KNearestNeighbors {
    params: KnnParams,
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
    mean: Vec<f64>,
    std: Vec<f64>,
    n_classes: usize,
}

impl KNearestNeighbors {
    /// Creates an unfitted classifier.
    pub fn new(params: KnnParams) -> Self {
        Self {
            params,
            rows: Vec::new(),
            labels: Vec::new(),
            mean: Vec::new(),
            std: Vec::new(),
            n_classes: 0,
        }
    }

    /// Fits on a row subset of `data` (memorises standardised rows).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn fit_rows(&mut self, data: &Dataset, rows: &[usize]) {
        assert!(!rows.is_empty(), "cannot fit on an empty training set");
        let d = data.n_features();
        let n = rows.len() as f64;
        self.n_classes = data.n_classes();
        self.mean = vec![0.0; d];
        self.std = vec![0.0; d];
        for &r in rows {
            for (j, v) in data.row(r).iter().enumerate() {
                self.mean[j] += v;
            }
        }
        for m in &mut self.mean {
            *m /= n;
        }
        for &r in rows {
            for (j, v) in data.row(r).iter().enumerate() {
                self.std[j] += (v - self.mean[j]).powi(2);
            }
        }
        for s in &mut self.std {
            *s = (*s / n).sqrt();
            if *s == 0.0 {
                *s = 1.0; // constant feature: contributes nothing either way
            }
        }
        self.rows = rows
            .iter()
            .map(|&r| self.standardise(data.row(r)))
            .collect();
        self.labels = rows.iter().map(|&r| data.label(r)).collect();
    }

    /// Fits on all rows.
    pub fn fit(&mut self, data: &Dataset) {
        let rows: Vec<usize> = (0..data.len()).collect();
        self.fit_rows(data, &rows);
    }

    fn standardise(&self, x: &[f64]) -> Vec<f64> {
        x.iter()
            .enumerate()
            .map(|(j, v)| (v - self.mean[j]) / self.std[j])
            .collect()
    }

    /// Majority vote over the `k` nearest training samples (squared
    /// Euclidean distance in standardised space; distance-sum tiebreak).
    ///
    /// # Panics
    ///
    /// Panics if the classifier is unfitted.
    pub fn predict(&self, x: &[f64]) -> usize {
        assert!(
            !self.rows.is_empty(),
            "predict called on an unfitted classifier"
        );
        let q = self.standardise(x);
        let mut dists: Vec<(f64, usize)> = self
            .rows
            .iter()
            .zip(&self.labels)
            .map(|(r, &l)| {
                let d: f64 = r.iter().zip(&q).map(|(a, b)| (a - b).powi(2)).sum();
                (d, l)
            })
            .collect();
        let k = self.params.k.clamp(1, dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("finite distances")
        });
        let mut votes = vec![(0usize, 0.0f64); self.n_classes];
        for &(d, l) in &dists[..k] {
            votes[l].0 += 1;
            votes[l].1 += d;
        }
        votes
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                // More votes wins; ties broken by smaller total distance.
                a.0.cmp(&b.0)
                    .then(b.1.partial_cmp(&a.1).expect("finite distances"))
            })
            .map(|(class, _)| class)
            .unwrap_or(0)
    }
}

impl crate::cv::Classifier for KNearestNeighbors {
    fn fit_rows(&mut self, data: &Dataset, rows: &[usize]) {
        KNearestNeighbors::fit_rows(self, data, rows);
    }
    fn predict(&self, x: &[f64]) -> usize {
        KNearestNeighbors::predict(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        // Deliberately unbalanced feature scales: f0 in thousands, f1 tiny.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            features.push(vec![1000.0 + i as f64, 0.01]);
            labels.push(0);
            features.push(vec![1000.0 + i as f64, 0.05]);
            labels.push(1);
        }
        Dataset::new(features, labels, vec!["big".into(), "small".into()], 2).expect("dataset")
    }

    #[test]
    fn standardisation_makes_small_features_count() {
        // Without z-scoring, f1's 0.04 gap would be invisible next to f0.
        let d = blobs();
        let mut knn = KNearestNeighbors::new(KnnParams { k: 3 });
        knn.fit(&d);
        assert_eq!(knn.predict(&[1010.0, 0.01]), 0);
        assert_eq!(knn.predict(&[1010.0, 0.05]), 1);
    }

    #[test]
    fn k_one_memorises_training_points() {
        let d = blobs();
        let mut knn = KNearestNeighbors::new(KnnParams { k: 1 });
        knn.fit(&d);
        for i in 0..d.len() {
            assert_eq!(knn.predict(d.row(i)), d.label(i));
        }
    }

    #[test]
    fn constant_features_do_not_nan() {
        let d = Dataset::new(
            vec![
                vec![7.0, 1.0],
                vec![7.0, 2.0],
                vec![7.0, 10.0],
                vec![7.0, 11.0],
            ],
            vec![0, 0, 1, 1],
            vec!["const".into(), "x".into()],
            2,
        )
        .expect("dataset");
        let mut knn = KNearestNeighbors::new(KnnParams { k: 1 });
        knn.fit(&d);
        assert_eq!(knn.predict(&[7.0, 1.5]), 0);
        assert_eq!(knn.predict(&[7.0, 10.5]), 1);
    }

    #[test]
    fn oversized_k_clamps_to_training_size() {
        let d = blobs();
        let mut knn = KNearestNeighbors::new(KnnParams { k: 10_000 });
        knn.fit(&d);
        // With k = n the vote is the global distribution (tied 20/20);
        // the distance tiebreak resolves deterministically.
        let _ = knn.predict(&[1000.0, 0.03]);
    }

    #[test]
    #[should_panic(expected = "unfitted")]
    fn predict_requires_fit() {
        let knn = KNearestNeighbors::new(KnnParams::default());
        let _ = knn.predict(&[0.0]);
    }
}

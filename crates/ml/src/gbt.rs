//! Gradient-boosted shallow trees (one-vs-rest, L2 boosting).
//!
//! The zoo's second ensemble: for each class an additive model
//! `F_c(x) = base_c + Σ_r value_{c,r}(x)` is fitted to the 0/1 class
//! indicator by repeated residual fitting. Each round grows a *shallow*
//! CART tree with the existing [`crate::split`] machinery — the structure
//! is found by splitting on the residual *sign* (a two-class problem the
//! Gini splitter handles natively) and the leaf values are then refit as
//! the mean residual of the training samples that land in each leaf
//! (Friedman-style leaf refitting), scaled by the shrinkage rate.
//!
//! The fit is completely deterministic — no subsampling, no feature
//! bagging — so repeated cross-validation is bit-identical at any
//! `--cv-threads`. The `seed` hyperparameter exists for protocol parity
//! with [`crate::forest::ForestParams`] (per-repetition seeding flows
//! through [`crate::cv::repeated_cross_val_predict`]'s `make` closure)
//! but introduces no randomness today.

use crate::cv::Classifier;
use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeParams};
use serde::{Deserialize, Serialize};

/// Gradient-boosting hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbtParams {
    /// Boosting rounds per class (trees in each one-vs-rest ensemble).
    pub n_rounds: usize,
    /// Shrinkage (learning rate) applied to every leaf value. `0.0` is
    /// legal and freezes the model at its class-prior base scores.
    pub shrinkage: f64,
    /// Parameters of the per-round shallow trees. The default caps depth
    /// at 3 — boosting wants weak learners, not the deep CART the paper
    /// serves standalone.
    pub tree: TreeParams,
    /// Seed for protocol parity with the forest; the fit itself is
    /// deterministic and does not consume randomness.
    pub seed: u64,
}

impl Default for GbtParams {
    fn default() -> Self {
        Self {
            n_rounds: 30,
            shrinkage: 0.3,
            tree: TreeParams {
                max_depth: 3,
                ..TreeParams::default()
            },
            seed: 0,
        }
    }
}

/// One boosting stage: the structure tree plus refit leaf values
/// (indexed by node id; internal-node slots stay 0 and are never read).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Stage {
    tree: DecisionTree,
    leaf_values: Vec<f64>,
}

impl Stage {
    fn value(&self, x: &[f64]) -> f64 {
        self.leaf_values[self.tree.leaf_id(x)]
    }
}

/// A fitted one-vs-rest gradient-boosted tree ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gbt {
    params: GbtParams,
    /// Per-class prior (mean of the 0/1 indicator on the training rows).
    base: Vec<f64>,
    /// `stages[c]` is class `c`'s ensemble in round order.
    stages: Vec<Vec<Stage>>,
    n_features: usize,
    n_classes: usize,
}

impl Gbt {
    /// Creates an unfitted model with `params`.
    pub fn new(params: GbtParams) -> Self {
        Self {
            params,
            base: Vec::new(),
            stages: Vec::new(),
            n_features: 0,
            n_classes: 0,
        }
    }

    /// Fits on all rows of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(&mut self, data: &Dataset) {
        let rows: Vec<usize> = (0..data.len()).collect();
        self.fit_rows(data, &rows);
    }

    /// Fits on a row subset (used by cross-validation).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    pub fn fit_rows(&mut self, data: &Dataset, rows: &[usize]) {
        assert!(!rows.is_empty(), "cannot fit on an empty training set");
        self.n_features = data.n_features();
        self.n_classes = data.n_classes();
        self.base = vec![0.0; self.n_classes];
        self.stages = vec![Vec::new(); self.n_classes];

        // Materialise the training subset once; every boosting round
        // relabels the same feature matrix with the residual sign.
        let feats: Vec<Vec<f64>> = rows.iter().map(|&r| data.row(r).to_vec()).collect();
        let names: Vec<String> = data.feature_names().to_vec();
        let n = rows.len();

        for c in 0..self.n_classes {
            let y: Vec<f64> = rows
                .iter()
                .map(|&r| if data.label(r) == c { 1.0 } else { 0.0 })
                .collect();
            let prior = y.iter().sum::<f64>() / n as f64;
            self.base[c] = prior;
            let mut score = vec![prior; n];

            for _round in 0..self.params.n_rounds {
                // Residuals of the L2 loss; their sign is the 2-class
                // problem the Gini splitter searches structure on.
                let sign_labels: Vec<usize> =
                    (0..n).map(|i| usize::from(y[i] - score[i] > 0.0)).collect();
                let sub = Dataset::new(feats.clone(), sign_labels, names.clone(), 2)
                    .expect("residual-sign dataset is valid by construction");
                let mut tree = DecisionTree::new(self.params.tree);
                tree.fit(&sub);

                // Refit leaf values as the mean residual per leaf, with
                // shrinkage folded in so prediction is a plain sum.
                let mut sums = vec![0.0; tree.node_count()];
                let mut counts = vec![0usize; tree.node_count()];
                let leaf_ids: Vec<usize> = feats.iter().map(|x| tree.leaf_id(x)).collect();
                for i in 0..n {
                    sums[leaf_ids[i]] += y[i] - score[i];
                    counts[leaf_ids[i]] += 1;
                }
                let leaf_values: Vec<f64> = sums
                    .iter()
                    .zip(&counts)
                    .map(|(&s, &k)| {
                        if k == 0 {
                            0.0
                        } else {
                            self.params.shrinkage * (s / k as f64)
                        }
                    })
                    .collect();
                for i in 0..n {
                    score[i] += leaf_values[leaf_ids[i]];
                }
                self.stages[c].push(Stage { tree, leaf_values });
            }
        }
    }

    /// Per-class additive scores for one feature vector, in the exact
    /// accumulation order the flat compiler replays (base, then rounds in
    /// order) so both paths produce bit-identical sums.
    pub fn scores(&self, x: &[f64]) -> Vec<f64> {
        assert!(
            !self.stages.is_empty(),
            "scores called on an unfitted model"
        );
        (0..self.n_classes)
            .map(|c| {
                let mut s = self.base[c];
                for stage in &self.stages[c] {
                    s += stage.value(x);
                }
                s
            })
            .collect()
    }

    /// Predicts the class of one feature vector: argmax of the per-class
    /// scores, ties resolved to the lowest class index.
    ///
    /// # Panics
    ///
    /// Panics if the model is unfitted or `x` is shorter than the
    /// training feature count.
    pub fn predict(&self, x: &[f64]) -> usize {
        let scores = self.scores(x);
        let mut best = 0;
        for (c, &s) in scores.iter().enumerate().skip(1) {
            if s > scores[best] {
                best = c;
            }
        }
        best
    }

    /// The hyperparameters this model was configured with.
    pub fn params(&self) -> &GbtParams {
        &self.params
    }

    /// Number of classes seen at fit time (0 for an unfitted model).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features seen at fit time (0 for an unfitted model).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Per-class base scores (class priors on the training rows).
    pub fn base_scores(&self) -> &[f64] {
        &self.base
    }

    /// Iterates class `c`'s ensemble in round order as
    /// `(structure tree, leaf values indexed by node id)` — the flat
    /// compiler's input.
    pub fn stages(&self, c: usize) -> impl Iterator<Item = (&DecisionTree, &[f64])> {
        self.stages[c]
            .iter()
            .map(|s| (&s.tree, s.leaf_values.as_slice()))
    }

    /// Total tree count across all class ensembles.
    pub fn n_trees(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }
}

impl Classifier for Gbt {
    fn fit_rows(&mut self, data: &Dataset, rows: &[usize]) {
        Gbt::fit_rows(self, data, rows);
    }
    fn predict(&self, x: &[f64]) -> usize {
        Gbt::predict(self, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(rows: Vec<Vec<f64>>, labels: Vec<usize>, n_classes: usize) -> Dataset {
        let width = rows[0].len();
        let names = (0..width).map(|i| format!("f{i}")).collect();
        Dataset::new(rows, labels, names, n_classes).expect("valid dataset")
    }

    fn blobs() -> Dataset {
        // Three well-separated 1-D blobs.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (c, centre) in [0.0, 10.0, 20.0].iter().enumerate() {
            for i in 0..8 {
                rows.push(vec![centre + i as f64 * 0.1, 1.0]);
                labels.push(c);
            }
        }
        data(rows, labels, 3)
    }

    #[test]
    fn separable_blobs_are_learned() {
        let d = blobs();
        let mut m = Gbt::new(GbtParams::default());
        m.fit(&d);
        for i in 0..d.len() {
            assert_eq!(m.predict(d.row(i)), d.label(i), "row {i}");
        }
    }

    #[test]
    fn learns_xor() {
        let d = data(
            vec![
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![1.0, 1.0],
            ],
            vec![0, 1, 1, 0],
            2,
        );
        let mut m = Gbt::new(GbtParams::default());
        m.fit(&d);
        for i in 0..d.len() {
            assert_eq!(m.predict(d.row(i)), d.label(i));
        }
    }

    #[test]
    fn single_class_fold_predicts_that_class() {
        // A CV fold can present one class only; every other class's
        // indicator is identically zero and must not destabilise the fit.
        let d = data(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![2, 2, 2, 2],
            5,
        );
        let mut m = Gbt::new(GbtParams::default());
        m.fit(&d);
        for x in [-10.0, 0.0, 1.5, 99.0] {
            assert_eq!(m.predict(&[x]), 2);
        }
    }

    #[test]
    fn constant_features_fall_back_to_majority() {
        let d = data(
            vec![vec![7.0], vec![7.0], vec![7.0], vec![7.0], vec![7.0]],
            vec![1, 1, 1, 0, 0],
            2,
        );
        let mut m = Gbt::new(GbtParams::default());
        m.fit(&d);
        // No feature separates anything: base scores decide, and the
        // majority class has the larger prior.
        assert_eq!(m.predict(&[7.0]), 1);
        assert_eq!(m.predict(&[0.0]), 1);
    }

    #[test]
    fn zero_shrinkage_freezes_at_the_prior() {
        let d = blobs();
        let mut m = Gbt::new(GbtParams {
            shrinkage: 0.0,
            ..GbtParams::default()
        });
        m.fit(&d);
        // Every leaf value is 0, so scores equal the class priors
        // (uniform here) and argmax tie-breaks to class 0 everywhere.
        let scores = m.scores(&[15.0, 1.0]);
        for (c, s) in scores.iter().enumerate() {
            assert_eq!(*s, m.base_scores()[c]);
        }
        assert_eq!(m.predict(&[0.0, 1.0]), 0);
        assert_eq!(m.predict(&[20.0, 1.0]), 0);
    }

    #[test]
    fn fit_is_deterministic() {
        let d = blobs();
        let mut a = Gbt::new(GbtParams::default());
        let mut b = Gbt::new(GbtParams::default());
        a.fit(&d);
        b.fit(&d);
        assert_eq!(a, b);
    }

    #[test]
    fn shrinkage_trades_rounds_for_step_size() {
        // With a tiny number of rounds, larger shrinkage must move the
        // scores further from the prior on the training set.
        let d = blobs();
        let fit = |shrinkage| {
            let mut m = Gbt::new(GbtParams {
                n_rounds: 2,
                shrinkage,
                ..GbtParams::default()
            });
            m.fit(&d);
            let s = m.scores(d.row(0));
            (s[0] - m.base_scores()[0]).abs()
        };
        assert!(fit(0.5) > fit(0.05));
    }
}

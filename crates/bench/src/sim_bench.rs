//! `pulp_cli bench sim` — simulator performance benchmark.
//!
//! Runs a fixed basket of synthetic kernels — ALU-bound, TCDM-conflict
//! heavy, barrier/DMA-heavy and FP-contended — at 1/2/4/8 cores, once with
//! the event-horizon fast-forward and once with the single-step oracle, and
//! reports cycles-simulated-per-wall-second for both plus the fast-forward
//! skip ratio. Every pair is also checked for bit-identical architectural
//! results, so the benchmark doubles as an end-to-end differential test.
//!
//! The JSON record (`BENCH_sim.json` by default) seeds the repository's
//! simulator performance trajectory: future optimisation PRs append their
//! own records and compare against this baseline.

use pulp_sim::{
    simulate_opts, AddrExpr, ClusterConfig, NoTelemetry, NullSink, OpKind, Program, SegOp,
    SimOptions, SimScratch, SimStats, TCDM_BASE,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Team sizes every basket is run at.
pub const TEAM_SIZES: [usize; 4] = [1, 2, 4, 8];

/// Basket identifiers, in report order.
pub const BASKETS: [&str; 4] = ["alu", "tcdm_conflict", "barrier_dma", "fp_contended"];

/// Options of one benchmark invocation.
#[derive(Debug, Clone, Copy)]
pub struct SimBenchOptions {
    /// Shrink the baskets for smoke runs (`--quick`).
    pub quick: bool,
    /// Per-run cycle budget (`--max-cycles`).
    pub max_cycles: u64,
    /// Timing repetitions per configuration; the fastest wall time wins.
    pub iters: u32,
}

impl Default for SimBenchOptions {
    fn default() -> Self {
        Self {
            quick: false,
            max_cycles: pulp_sim::DEFAULT_MAX_CYCLES,
            iters: 3,
        }
    }
}

impl SimBenchOptions {
    /// The reduced smoke configuration.
    pub fn quick() -> Self {
        Self {
            quick: true,
            iters: 1,
            ..Self::default()
        }
    }
}

/// One (basket, team size) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimBenchRow {
    /// Basket identifier (see [`BASKETS`]).
    pub basket: String,
    /// Team size the basket ran at.
    pub cores: usize,
    /// Simulated cycles of the run.
    pub cycles: u64,
    /// Fast-forward wall time (seconds, best of the iterations).
    pub ff_wall_s: f64,
    /// Single-step oracle wall time (seconds, best of the iterations).
    pub oracle_wall_s: f64,
    /// Simulated cycles per wall-second with fast-forward.
    pub ff_cycles_per_s: f64,
    /// Simulated cycles per wall-second single-step.
    pub oracle_cycles_per_s: f64,
    /// `ff_cycles_per_s / oracle_cycles_per_s`.
    pub speedup: f64,
    /// Fraction of simulated cycles advanced in bulk spans.
    pub skip_ratio: f64,
    /// Bulk spans taken by the fast-forward run.
    pub spans: u64,
    /// `true` when the fast-forward run's architectural results are
    /// bit-identical to the oracle's.
    pub oracle_match: bool,
    /// Fraction of horizon computations that produced a bulk skip, from a
    /// separate `horizon_timing`-instrumented run.
    #[serde(default)]
    pub horizon_hit_rate: f64,
    /// Wall seconds the instrumented run spent scanning for the next event
    /// horizon.
    #[serde(default)]
    pub horizon_scan_s: f64,
    /// Wall seconds the instrumented run spent in per-cycle stepping.
    #[serde(default)]
    pub horizon_step_s: f64,
    /// `horizon_scan_s / (horizon_scan_s + horizon_step_s)` — the share of
    /// instrumented wall time paid for the fast-forward bookkeeping.
    #[serde(default)]
    pub horizon_scan_share: f64,
}

/// The full benchmark record written to `BENCH_sim.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimBenchReport {
    /// Tool identifier for downstream diffing.
    pub bench: String,
    /// `true` for `--quick` runs (not comparable to full runs).
    pub quick: bool,
    /// One row per (basket, team size).
    pub rows: Vec<SimBenchRow>,
}

fn instr(kind: OpKind) -> SegOp {
    SegOp::Instr { kind, addr: None }
}

fn load(addr: u32) -> SegOp {
    SegOp::Instr {
        kind: OpKind::Load,
        addr: Some(AddrExpr::constant(addr)),
    }
}

/// Builds the named basket's program for `team` cores.
///
/// Baskets scale the per-core work with `scale` so `--quick` stays fast:
///
/// * `alu` — every core retires an ALU op per cycle; the fast-forward has
///   nothing to skip (every cycle has a `Ready` core).
/// * `tcdm_conflict` — all cores hammer one TCDM bank; conflict stalls are
///   1-cycle `Busy` tails, so skipping stays minimal.
/// * `barrier_dma` — the master streams large DMA transfers between
///   cluster-wide barriers while workers sleep: long quiescent spans, the
///   fast-forward's best case.
/// * `fp_contended` — all cores issue FP divides over shared FPUs:
///   multi-cycle busy tails with contention retries.
///
/// # Panics
///
/// Panics on an unknown basket name (callers iterate [`BASKETS`]).
pub fn basket_program(basket: &str, team: usize, scale: u64) -> Program {
    let streams: Vec<Vec<SegOp>> = match basket {
        "alu" => (0..team)
            .map(|_| {
                vec![
                    SegOp::LoopBegin { trip: scale },
                    instr(OpKind::Alu),
                    SegOp::LoopEnd,
                    SegOp::Barrier,
                ]
            })
            .collect(),
        "tcdm_conflict" => (0..team)
            .map(|_| {
                // Same word address on every core: worst-case bank focus.
                vec![
                    SegOp::LoopBegin { trip: scale },
                    load(TCDM_BASE),
                    SegOp::LoopEnd,
                    SegOp::Barrier,
                ]
            })
            .collect(),
        "barrier_dma" => {
            let episodes = (scale / 64).max(2) as usize;
            (0..team)
                .map(|core| {
                    let mut s = Vec::new();
                    for _ in 0..episodes {
                        if core == 0 {
                            s.push(SegOp::Dma {
                                words: 4096,
                                inbound: true,
                            });
                        }
                        s.push(SegOp::Barrier);
                    }
                    s
                })
                .collect()
        }
        "fp_contended" => (0..team)
            .map(|_| {
                vec![
                    SegOp::LoopBegin { trip: scale / 4 },
                    instr(OpKind::Fp(pulp_sim::FpOp::Div)),
                    SegOp::LoopEnd,
                    SegOp::Barrier,
                ]
            })
            .collect(),
        other => panic!("unknown basket `{other}`"),
    };
    Program::new(streams)
}

fn timed_run(
    config: &ClusterConfig,
    program: &Program,
    opts: &SimOptions,
    iters: u32,
    scratch: &mut SimScratch,
) -> (SimStats, f64) {
    let mut best = f64::INFINITY;
    let mut stats = None;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let s = simulate_opts(
            config,
            program,
            opts,
            &mut NullSink,
            &mut NoTelemetry,
            scratch,
        )
        .expect("benchmark basket must simulate cleanly");
        let wall = start.elapsed().as_secs_f64();
        best = best.min(wall);
        stats = Some(s);
    }
    (stats.expect("at least one iteration"), best)
}

/// Runs the full benchmark matrix.
pub fn run_sim_bench(opts: &SimBenchOptions) -> SimBenchReport {
    let config = ClusterConfig::default();
    let scale: u64 = if opts.quick { 2_000 } else { 40_000 };
    let ff_opts = SimOptions::default().with_max_cycles(opts.max_cycles);
    let oracle_opts = SimOptions {
        fast_forward: false,
        ..ff_opts
    };
    let timing_opts = ff_opts.with_horizon_timing(true);
    let mut scratch = SimScratch::new();
    let mut rows = Vec::new();
    for basket in BASKETS {
        for team in TEAM_SIZES {
            let program = basket_program(basket, team, scale);
            let (ff, ff_wall) = timed_run(&config, &program, &ff_opts, opts.iters, &mut scratch);
            let (oracle, oracle_wall) =
                timed_run(&config, &program, &oracle_opts, opts.iters, &mut scratch);
            // A separate instrumented pass: `horizon_timing` adds two
            // `Instant::now` calls per scheduler iteration, so it must not
            // pollute `ff_wall_s`. One iteration is enough — the split is a
            // ratio, not a throughput claim.
            let (timed, _) = timed_run(&config, &program, &timing_opts, 1, &mut scratch);
            let cycles = ff.cycles;
            rows.push(SimBenchRow {
                basket: basket.to_string(),
                cores: team,
                cycles,
                ff_wall_s: ff_wall,
                oracle_wall_s: oracle_wall,
                ff_cycles_per_s: cycles as f64 / ff_wall.max(f64::MIN_POSITIVE),
                oracle_cycles_per_s: cycles as f64 / oracle_wall.max(f64::MIN_POSITIVE),
                speedup: oracle_wall / ff_wall.max(f64::MIN_POSITIVE),
                skip_ratio: ff.skip_ratio(),
                spans: ff.fast_forward.spans,
                oracle_match: ff.without_fast_forward() == oracle,
                horizon_hit_rate: timed.fast_forward.horizon_hit_rate(),
                horizon_scan_s: timed.fast_forward.horizon_scan_nanos as f64 / 1e9,
                horizon_step_s: timed.fast_forward.step_nanos as f64 / 1e9,
                horizon_scan_share: timed.fast_forward.horizon_scan_share(),
            });
        }
    }
    SimBenchReport {
        bench: "sim".to_string(),
        quick: opts.quick,
        rows,
    }
}

impl SimBenchReport {
    /// Renders the human-readable table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>5} {:>12} {:>14} {:>14} {:>8} {:>6} {:>6} {:>6} {:>6}",
            "basket",
            "cores",
            "cycles",
            "ff [cyc/s]",
            "oracle [cyc/s]",
            "speedup",
            "skip",
            "hit",
            "scan",
            "match"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<14} {:>5} {:>12} {:>14.3e} {:>14.3e} {:>7.2}x {:>5.1}% {:>5.1}% {:>5.1}% {:>6}",
                r.basket,
                r.cores,
                r.cycles,
                r.ff_cycles_per_s,
                r.oracle_cycles_per_s,
                r.speedup,
                r.skip_ratio * 100.0,
                r.horizon_hit_rate * 100.0,
                r.horizon_scan_share * 100.0,
                if r.oracle_match { "ok" } else { "FAIL" }
            );
        }
        out
    }

    /// Checks the invariants the benchmark must uphold: every fast-forward
    /// run bit-identical to its oracle, and the barrier/DMA basket actually
    /// skipping cycles (a zero skip there means the fast-forward is dead).
    ///
    /// # Errors
    ///
    /// Returns one message per violated invariant.
    pub fn verify(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        for r in &self.rows {
            if !r.oracle_match {
                problems.push(format!(
                    "{} @ {} cores: fast-forward diverged from the single-step oracle",
                    r.basket, r.cores
                ));
            }
        }
        for r in self.rows.iter().filter(|r| r.basket == "barrier_dma") {
            if r.cores > 1 && r.skip_ratio <= 0.0 {
                problems.push(format!(
                    "barrier_dma @ {} cores: skip ratio is zero — fast-forward never engaged",
                    r.cores
                ));
            }
            if r.cores > 1 && r.horizon_hit_rate <= 0.0 {
                problems.push(format!(
                    "barrier_dma @ {} cores: horizon hit rate is zero — instrumented run saw no skips",
                    r.cores
                ));
            }
        }
        for r in &self.rows {
            if r.horizon_scan_s + r.horizon_step_s <= 0.0 {
                problems.push(format!(
                    "{} @ {} cores: horizon wall split is empty — timing instrumentation is dead",
                    r.basket, r.cores
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_basket_builds_and_validates_at_every_team_size() {
        for basket in BASKETS {
            for team in TEAM_SIZES {
                let p = basket_program(basket, team, 128);
                assert!(
                    p.validate().is_ok(),
                    "basket {basket} invalid at {team} cores"
                );
            }
        }
    }

    #[test]
    fn quick_bench_passes_its_own_verification() {
        let report = run_sim_bench(&SimBenchOptions {
            quick: true,
            iters: 1,
            ..SimBenchOptions::default()
        });
        assert_eq!(report.rows.len(), BASKETS.len() * TEAM_SIZES.len());
        report.verify().expect("benchmark invariants hold");
        // The barrier/DMA basket is the fast-forward's best case: sleeping
        // workers and a master parked on a long DMA drain.
        let dma8 = report
            .rows
            .iter()
            .find(|r| r.basket == "barrier_dma" && r.cores == 8)
            .expect("row exists");
        assert!(
            dma8.skip_ratio > 0.5,
            "barrier_dma@8 should skip most cycles, got {}",
            dma8.skip_ratio
        );
        // The ALU basket keeps a core Ready every cycle: nothing to skip.
        let alu1 = report
            .rows
            .iter()
            .find(|r| r.basket == "alu" && r.cores == 1)
            .expect("row exists");
        assert!(
            alu1.skip_ratio < 0.1,
            "alu@1 has no quiescent spans, got skip ratio {}",
            alu1.skip_ratio
        );
        // The instrumented pass fills the wall split for every row and the
        // skip-friendly basket converts horizon computations into skips.
        assert!(dma8.horizon_hit_rate > 0.0, "no horizon skips at dma@8");
        for r in &report.rows {
            assert!(
                r.horizon_scan_s + r.horizon_step_s > 0.0,
                "{} @ {}: empty horizon wall split",
                r.basket,
                r.cores
            );
            assert!((0.0..=1.0).contains(&r.horizon_scan_share));
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run_sim_bench(&SimBenchOptions {
            quick: true,
            iters: 1,
            ..SimBenchOptions::default()
        });
        let json = serde_json::to_string_pretty(&report).expect("serialise");
        let back: SimBenchReport = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, report);
    }
}

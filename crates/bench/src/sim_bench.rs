//! `pulp_cli bench sim` — simulator performance benchmark.
//!
//! Runs a fixed basket of synthetic kernels — ALU-bound, TCDM-conflict
//! heavy, barrier/DMA-heavy and FP-contended — at 1/2/4/8 cores, once with
//! the event-horizon fast-forward and once with the single-step oracle, and
//! reports cycles-simulated-per-wall-second for both plus the fast-forward
//! skip ratio. Every pair is also checked for bit-identical architectural
//! results, so the benchmark doubles as an end-to-end differential test.
//!
//! The JSON record (`BENCH_sim.json` by default) seeds the repository's
//! simulator performance trajectory: future optimisation PRs append their
//! own records and compare against this baseline.
//!
//! ## How the `scan`/`hit` columns are measured
//!
//! The horizon wall split (`horizon_scan_s` / `horizon_step_s`, rendered as
//! the `scan` share column) comes from a separate `horizon_timing`
//! instrumented pass, and the simulator **samples** that timing: one clocked
//! event in every 32, scaled back up to the full event count. Clocking every
//! iteration would attribute the two `Instant::now()` calls themselves to
//! the split and inflate the scan share on short baskets; sampling keeps the
//! probe overhead at ~3% of events while the scaled split stays an unbiased
//! estimate (spans are homogeneous within a basket). The split is a ratio
//! diagnostic, not a throughput claim — `ff [cyc/s]` always comes from the
//! uninstrumented run.
//!
//! The report also carries a **labeling throughput** figure: the sharded
//! sweep driver (`measure_kernels_sharded`) is timed over the quick kernel
//! set and reported as samples labelled per wall-second, giving the corpus
//! build a tracked baseline.

use pulp_energy::{measure_kernels_sharded, measure_kernels_sharded_observed, SweepObserver};
use pulp_energy_model::EnergyModel;
use pulp_kernels::KernelParams;
use pulp_obs::{JournalEvent, JournalWriter, LogFormat, Logger};
use pulp_sim::{
    simulate_opts, AddrExpr, ClusterConfig, NoTelemetry, NullSink, OpKind, Program, SegOp,
    SimOptions, SimScratch, SimStats, TCDM_BASE,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Wall-time floor (one nanosecond) applied before any division.
///
/// `f64::MIN_POSITIVE` is *not* a usable floor: `cycles / 5e-324` overflows
/// to `inf`, which serde_json refuses to serialise as a number and which
/// breaks `bench diff` downstream. One nanosecond is below any observable
/// `Instant` resolution, so the clamp never distorts a real measurement.
const WALL_FLOOR_S: f64 = 1e-9;

/// Team sizes every basket is run at.
pub const TEAM_SIZES: [usize; 4] = [1, 2, 4, 8];

/// Basket identifiers, in report order.
pub const BASKETS: [&str; 4] = ["alu", "tcdm_conflict", "barrier_dma", "fp_contended"];

/// Options of one benchmark invocation.
#[derive(Debug, Clone, Copy)]
pub struct SimBenchOptions {
    /// Shrink the baskets for smoke runs (`--quick`).
    pub quick: bool,
    /// Per-run cycle budget (`--max-cycles`).
    pub max_cycles: u64,
    /// Timing repetitions per configuration; the fastest wall time wins.
    pub iters: u32,
}

impl Default for SimBenchOptions {
    fn default() -> Self {
        Self {
            quick: false,
            max_cycles: pulp_sim::DEFAULT_MAX_CYCLES,
            iters: 11,
        }
    }
}

impl SimBenchOptions {
    /// The reduced smoke configuration. Quick runs are so short (tens of
    /// microseconds each) that a single timer interrupt can dominate a
    /// timing pair, so they take more iterations than the full profile —
    /// the median ratio needs a majority of clean pairs. On a loaded
    /// single-core box, nine pairs still let noise drag the median of a
    /// parity basket to ~0.87x; thirty-one pairs hold it within a few
    /// percent of 1.0 and the whole quick profile still runs in seconds.
    pub fn quick() -> Self {
        Self {
            quick: true,
            iters: 31,
            ..Self::default()
        }
    }
}

/// One (basket, team size) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimBenchRow {
    /// Basket identifier (see [`BASKETS`]).
    pub basket: String,
    /// Team size the basket ran at.
    pub cores: usize,
    /// Simulated cycles of the run.
    pub cycles: u64,
    /// Fast-forward wall time (seconds, best of the iterations).
    pub ff_wall_s: f64,
    /// Single-step oracle wall time (seconds, best of the iterations).
    pub oracle_wall_s: f64,
    /// Simulated cycles per wall-second with fast-forward.
    pub ff_cycles_per_s: f64,
    /// Simulated cycles per wall-second single-step.
    pub oracle_cycles_per_s: f64,
    /// Fast-forward speedup over the oracle: the **median** of the per-pair
    /// `oracle_wall / ff_wall` ratios across the interleaved timing
    /// iterations. Each ratio compares two time-adjacent runs, so shared
    /// scheduling noise cancels instead of biasing the quotient of two
    /// independent minima.
    pub speedup: f64,
    /// Fraction of simulated cycles advanced in bulk spans.
    pub skip_ratio: f64,
    /// Bulk spans taken by the fast-forward run.
    pub spans: u64,
    /// `true` when the fast-forward run's architectural results are
    /// bit-identical to the oracle's.
    pub oracle_match: bool,
    /// Fraction of horizon computations that produced a bulk skip, from a
    /// separate `horizon_timing`-instrumented run.
    #[serde(default)]
    pub horizon_hit_rate: f64,
    /// Wall seconds the instrumented run spent scanning for the next event
    /// horizon.
    #[serde(default)]
    pub horizon_scan_s: f64,
    /// Wall seconds the instrumented run spent in per-cycle stepping.
    #[serde(default)]
    pub horizon_step_s: f64,
    /// `horizon_scan_s / (horizon_scan_s + horizon_step_s)` — the share of
    /// instrumented wall time paid for the fast-forward bookkeeping.
    #[serde(default)]
    pub horizon_scan_share: f64,
}

/// The full benchmark record written to `BENCH_sim.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimBenchReport {
    /// Tool identifier for downstream diffing.
    pub bench: String,
    /// `true` for `--quick` runs (not comparable to full runs).
    pub quick: bool,
    /// One row per (basket, team size).
    pub rows: Vec<SimBenchRow>,
    /// Samples labelled by the sharded-sweep throughput measurement.
    #[serde(default)]
    pub labeling_samples: u64,
    /// Worker threads the sharded sweep ran with.
    #[serde(default)]
    pub labeling_threads: u64,
    /// Wall seconds of the sharded sweep.
    #[serde(default)]
    pub labeling_wall_s: f64,
    /// Labelled samples per wall-second — the corpus-build throughput
    /// baseline (`labeling_samples / labeling_wall_s`).
    #[serde(default)]
    pub labeling_samples_per_s: f64,
    /// Wall seconds of the **observed** sharded sweep: same kernel set,
    /// but with journaling and live progress enabled.
    #[serde(default)]
    pub labeling_observed_wall_s: f64,
    /// Labelled samples per wall-second with journaling + progress on.
    #[serde(default)]
    pub labeling_observed_samples_per_s: f64,
    /// `labeling_observed_wall_s / labeling_wall_s` — the observability
    /// tax. The acceptance bar is ≤ 1.02 on a quiet full-profile box; the
    /// figure is tracked here rather than hard-gated because CI boxes are
    /// noisy.
    #[serde(default)]
    pub labeling_journal_overhead: f64,
}

fn instr(kind: OpKind) -> SegOp {
    SegOp::Instr { kind, addr: None }
}

fn load(addr: u32) -> SegOp {
    SegOp::Instr {
        kind: OpKind::Load,
        addr: Some(AddrExpr::constant(addr)),
    }
}

/// Builds the named basket's program for `team` cores.
///
/// Baskets scale the per-core work with `scale` so `--quick` stays fast:
///
/// * `alu` — every core retires an ALU op per cycle; the fast-forward has
///   nothing to skip (every cycle has a `Ready` core).
/// * `tcdm_conflict` — all cores hammer one TCDM bank; conflict stalls are
///   1-cycle `Busy` tails, so skipping stays minimal.
/// * `barrier_dma` — the master streams large DMA transfers between
///   cluster-wide barriers while workers sleep: long quiescent spans, the
///   fast-forward's best case.
/// * `fp_contended` — all cores issue FP divides over shared FPUs:
///   multi-cycle busy tails with contention retries.
///
/// # Panics
///
/// Panics on an unknown basket name (callers iterate [`BASKETS`]).
pub fn basket_program(basket: &str, team: usize, scale: u64) -> Program {
    let streams: Vec<Vec<SegOp>> = match basket {
        "alu" => (0..team)
            .map(|_| {
                vec![
                    SegOp::LoopBegin { trip: scale },
                    instr(OpKind::Alu),
                    SegOp::LoopEnd,
                    SegOp::Barrier,
                ]
            })
            .collect(),
        "tcdm_conflict" => (0..team)
            .map(|_| {
                // Same word address on every core: worst-case bank focus.
                vec![
                    SegOp::LoopBegin { trip: scale },
                    load(TCDM_BASE),
                    SegOp::LoopEnd,
                    SegOp::Barrier,
                ]
            })
            .collect(),
        "barrier_dma" => {
            let episodes = (scale / 64).max(2) as usize;
            (0..team)
                .map(|core| {
                    let mut s = Vec::new();
                    for _ in 0..episodes {
                        if core == 0 {
                            s.push(SegOp::Dma {
                                words: 4096,
                                inbound: true,
                            });
                        }
                        s.push(SegOp::Barrier);
                    }
                    s
                })
                .collect()
        }
        "fp_contended" => (0..team)
            .map(|_| {
                vec![
                    SegOp::LoopBegin { trip: scale / 4 },
                    instr(OpKind::Fp(pulp_sim::FpOp::Div)),
                    SegOp::LoopEnd,
                    SegOp::Barrier,
                ]
            })
            .collect(),
        other => panic!("unknown basket `{other}`"),
    };
    Program::new(streams)
}

fn timed_run(
    config: &ClusterConfig,
    program: &Program,
    opts: &SimOptions,
    iters: u32,
    scratch: &mut SimScratch,
) -> (SimStats, f64) {
    let mut best = f64::INFINITY;
    let mut stats = None;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let s = simulate_opts(
            config,
            program,
            opts,
            &mut NullSink,
            &mut NoTelemetry,
            scratch,
        )
        .expect("benchmark basket must simulate cleanly");
        let wall = start.elapsed().as_secs_f64();
        best = best.min(wall);
        stats = Some(s);
    }
    (stats.expect("at least one iteration"), best)
}

/// Times the fast-forward and oracle runs **interleaved** (ff, oracle, ff,
/// oracle, ...) rather than as two back-to-back batches. The `speedup`
/// column is a ratio of two wall times; when one side's whole batch lands
/// in a noisy scheduling window (CI runners, shared boxes) the ratio is
/// biased in a way best-of-k cannot repair. Interleaving exposes both sides
/// to the same noise environment, and the speedup is taken as the median of
/// the per-pair ratios (each comparing two time-adjacent runs), while the
/// throughput columns keep the conventional best wall per side.
fn timed_pair(
    config: &ClusterConfig,
    program: &Program,
    ff_opts: &SimOptions,
    oracle_opts: &SimOptions,
    iters: u32,
    scratch: &mut SimScratch,
) -> TimedPair {
    let mut ff = None;
    let mut oracle = None;
    let (mut ff_best, mut oracle_best) = (f64::INFINITY, f64::INFINITY);
    let mut ratios = Vec::new();
    for i in 0..iters.max(1) {
        // Alternate which side runs first within the pair: whoever runs
        // first pays any warmup/scheduler-quantum cost, and a fixed order
        // would turn that into a systematic bias on the ratio.
        let (ff_wall, oracle_wall) = if i % 2 == 0 {
            let (s, ff_wall) = timed_run(config, program, ff_opts, 1, scratch);
            ff = Some(s);
            let (s, oracle_wall) = timed_run(config, program, oracle_opts, 1, scratch);
            oracle = Some(s);
            (ff_wall, oracle_wall)
        } else {
            let (s, oracle_wall) = timed_run(config, program, oracle_opts, 1, scratch);
            oracle = Some(s);
            let (s, ff_wall) = timed_run(config, program, ff_opts, 1, scratch);
            ff = Some(s);
            (ff_wall, oracle_wall)
        };
        ff_best = ff_best.min(ff_wall);
        oracle_best = oracle_best.min(oracle_wall);
        ratios.push(speedup_of(oracle_wall, ff_wall));
    }
    TimedPair {
        ff: ff.expect("at least one iteration"),
        ff_wall: ff_best,
        oracle: oracle.expect("at least one iteration"),
        oracle_wall: oracle_best,
        speedup: median(&mut ratios),
    }
}

struct TimedPair {
    ff: SimStats,
    ff_wall: f64,
    oracle: SimStats,
    oracle_wall: f64,
    speedup: f64,
}

/// Median of a non-empty sample (mean of the middle two when even).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2.0
    }
}

/// Runs the full benchmark matrix.
pub fn run_sim_bench(opts: &SimBenchOptions) -> SimBenchReport {
    run_sim_bench_journaled(opts, None)
}

/// Emits a journal event, downgrading failures to a stderr warning so a
/// full disk never aborts a benchmark that already has its numbers.
fn journal_event(journal: &mut Option<&mut JournalWriter>, ev: JournalEvent) {
    if let Some(j) = journal.as_deref_mut() {
        if let Err(e) = j.event(ev) {
            eprintln!("[journal] dropped event: {e}");
        }
    }
}

/// [`run_sim_bench`] with an optional run journal: each basket and the
/// labeling measurement become journal stages, and every headline figure
/// is recorded as a `bench_record` event so `bench history` can read the
/// trajectory straight from journals.
pub fn run_sim_bench_journaled(
    opts: &SimBenchOptions,
    mut journal: Option<&mut JournalWriter>,
) -> SimBenchReport {
    let config = ClusterConfig::default();
    // Quick runs must still be long enough that a single timer interrupt
    // (~µs) doesn't dominate a timing pair: 8k cycles ≈ 0.3–1 ms per run.
    let scale: u64 = if opts.quick { 8_000 } else { 40_000 };
    let ff_opts = SimOptions::default().with_max_cycles(opts.max_cycles);
    let oracle_opts = SimOptions {
        fast_forward: false,
        ..ff_opts
    };
    let timing_opts = ff_opts.with_horizon_timing(true);
    let mut scratch = SimScratch::new();
    let mut rows = Vec::new();
    for basket in BASKETS {
        let basket_start = Instant::now();
        journal_event(
            &mut journal,
            JournalEvent::StageStart {
                stage: basket.to_string(),
            },
        );
        for team in TEAM_SIZES {
            let program = basket_program(basket, team, scale);
            let TimedPair {
                ff,
                ff_wall,
                oracle,
                oracle_wall,
                speedup,
            } = timed_pair(
                &config,
                &program,
                &ff_opts,
                &oracle_opts,
                opts.iters,
                &mut scratch,
            );
            // A separate instrumented pass: `horizon_timing` samples one
            // event in 32 (see the module docs), but even the sampled probes
            // must not pollute `ff_wall_s`. One iteration is enough — the
            // split is a ratio, not a throughput claim.
            let (timed, _) = timed_run(&config, &program, &timing_opts, 1, &mut scratch);
            let cycles = ff.cycles;
            rows.push(SimBenchRow {
                basket: basket.to_string(),
                cores: team,
                cycles,
                ff_wall_s: ff_wall,
                oracle_wall_s: oracle_wall,
                ff_cycles_per_s: throughput(cycles, ff_wall),
                oracle_cycles_per_s: throughput(cycles, oracle_wall),
                speedup,
                skip_ratio: ff.skip_ratio(),
                spans: ff.fast_forward.spans,
                oracle_match: ff.without_fast_forward() == oracle,
                horizon_hit_rate: timed.fast_forward.horizon_hit_rate(),
                horizon_scan_s: timed.fast_forward.horizon_scan_nanos as f64 / 1e9,
                horizon_step_s: timed.fast_forward.step_nanos as f64 / 1e9,
                horizon_scan_share: timed.fast_forward.horizon_scan_share(),
            });
            let row = rows.last().expect("just pushed");
            journal_event(
                &mut journal,
                JournalEvent::BenchRecord {
                    bench: "sim".to_string(),
                    name: format!("{basket}@{team}/ff_cycles_per_s"),
                    value: row.ff_cycles_per_s,
                },
            );
        }
        journal_event(
            &mut journal,
            JournalEvent::StageEnd {
                stage: basket.to_string(),
                wall_ms: basket_start.elapsed().as_secs_f64() * 1e3,
            },
        );
    }
    let labeling_start = Instant::now();
    journal_event(
        &mut journal,
        JournalEvent::StageStart {
            stage: "labeling".to_string(),
        },
    );
    let labeling = measure_labeling_throughput(opts.quick, opts.max_cycles);
    journal_event(
        &mut journal,
        JournalEvent::StageEnd {
            stage: "labeling".to_string(),
            wall_ms: labeling_start.elapsed().as_secs_f64() * 1e3,
        },
    );
    for (name, value) in [
        ("labeling/samples_per_s", labeling.samples_per_s),
        (
            "labeling/observed_samples_per_s",
            labeling.observed_samples_per_s,
        ),
        ("labeling/journal_overhead", labeling.journal_overhead),
    ] {
        journal_event(
            &mut journal,
            JournalEvent::BenchRecord {
                bench: "sim".to_string(),
                name: name.to_string(),
                value,
            },
        );
    }
    SimBenchReport {
        bench: "sim".to_string(),
        quick: opts.quick,
        rows,
        labeling_samples: labeling.samples,
        labeling_threads: labeling.threads,
        labeling_wall_s: labeling.wall_s,
        labeling_samples_per_s: labeling.samples_per_s,
        labeling_observed_wall_s: labeling.observed_wall_s,
        labeling_observed_samples_per_s: labeling.observed_samples_per_s,
        labeling_journal_overhead: labeling.journal_overhead,
    }
}

/// `cycles / wall`, clamped so a sub-resolution wall time stays finite.
fn throughput(cycles: u64, wall_s: f64) -> f64 {
    cycles as f64 / wall_s.max(WALL_FLOOR_S)
}

/// `oracle_wall / ff_wall` with **both** sides clamped: an unguarded oracle
/// wall of 0.0 used to report `speedup: inf`, which serialises as a
/// non-finite JSON number and breaks `bench diff`.
fn speedup_of(oracle_wall_s: f64, ff_wall_s: f64) -> f64 {
    oracle_wall_s.max(WALL_FLOOR_S) / ff_wall_s.max(WALL_FLOOR_S)
}

struct LabelingThroughput {
    samples: u64,
    threads: u64,
    wall_s: f64,
    samples_per_s: f64,
    observed_wall_s: f64,
    observed_samples_per_s: f64,
    journal_overhead: f64,
}

/// Times the sharded sweep driver over the quick kernel set: every quick
/// kernel at one payload size (`--quick`) or three (full), labelled across
/// all available cores. This is the figure ROADMAP item 1's corpus build
/// scales from.
///
/// The same workload is then re-run through the **observed** driver — an
/// in-memory journal plus live progress into a sink logger — so the report
/// carries the journaling overhead as a tracked ratio. The observed pass
/// must produce bit-identical profiles; anything else means the observer
/// leaked into the measurement.
fn measure_labeling_throughput(quick: bool, max_cycles: u64) -> LabelingThroughput {
    let payloads: &[usize] = if quick { &[512] } else { &[512, 2048, 8196] };
    let defs = pulp_kernels::registry();
    let kernels: Vec<_> = crate::QUICK_KERNELS
        .iter()
        .filter_map(|name| defs.iter().find(|d| d.name == *name))
        .flat_map(|def| {
            payloads
                .iter()
                .filter_map(|&p| def.build(&KernelParams::new(kernel_ir::DType::I32, p)).ok())
        })
        .collect();
    let config = ClusterConfig::default();
    let model = EnergyModel::table1();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let start = Instant::now();
    let profiles = measure_kernels_sharded(&kernels, &config, &model, max_cycles, threads)
        .expect("quick kernels must label cleanly");
    let wall_s = start.elapsed().as_secs_f64();

    let mut journal = JournalWriter::in_memory("bench_sim_labeling", "unseeded", 0);
    let progress_sink = Logger::to_sink(LogFormat::Text);
    let observed_start = Instant::now();
    let observed = measure_kernels_sharded_observed(
        &kernels,
        &config,
        &model,
        max_cycles,
        threads,
        SweepObserver {
            journal: Some(&mut journal),
            logger: Some(&progress_sink),
            progress: true,
            ..SweepObserver::default()
        },
    )
    .expect("quick kernels must label cleanly under observation");
    let observed_wall_s = observed_start.elapsed().as_secs_f64();
    assert_eq!(
        profiles, observed,
        "observed sweep must be bit-identical to the plain sweep"
    );
    drop(journal);

    LabelingThroughput {
        samples: profiles.len() as u64,
        threads: threads as u64,
        wall_s,
        samples_per_s: profiles.len() as f64 / wall_s.max(WALL_FLOOR_S),
        observed_wall_s,
        observed_samples_per_s: profiles.len() as f64 / observed_wall_s.max(WALL_FLOOR_S),
        journal_overhead: observed_wall_s.max(WALL_FLOOR_S) / wall_s.max(WALL_FLOOR_S),
    }
}

impl SimBenchReport {
    /// Renders the human-readable table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>5} {:>12} {:>14} {:>14} {:>8} {:>6} {:>6} {:>6} {:>6}",
            "basket",
            "cores",
            "cycles",
            "ff [cyc/s]",
            "oracle [cyc/s]",
            "speedup",
            "skip",
            "hit",
            "scan",
            "match"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<14} {:>5} {:>12} {:>14.3e} {:>14.3e} {:>7.2}x {:>5.1}% {:>5.1}% {:>5.1}% {:>6}",
                r.basket,
                r.cores,
                r.cycles,
                r.ff_cycles_per_s,
                r.oracle_cycles_per_s,
                r.speedup,
                r.skip_ratio * 100.0,
                r.horizon_hit_rate * 100.0,
                r.horizon_scan_share * 100.0,
                if r.oracle_match { "ok" } else { "FAIL" }
            );
        }
        // `scan` above is the sampled horizon-timing split (1 event in 32,
        // scaled); see the module docs for the method.
        if self.labeling_samples > 0 {
            let _ = writeln!(
                out,
                "labeling: {} samples @ {} threads in {:.3}s = {:.1} samples/s",
                self.labeling_samples,
                self.labeling_threads,
                self.labeling_wall_s,
                self.labeling_samples_per_s
            );
        }
        if self.labeling_observed_wall_s > 0.0 {
            let _ = writeln!(
                out,
                "labeling+journal: {:.3}s = {:.1} samples/s (overhead {:.3}x)",
                self.labeling_observed_wall_s,
                self.labeling_observed_samples_per_s,
                self.labeling_journal_overhead
            );
        }
        out
    }

    /// Checks the invariants the benchmark must uphold: every fast-forward
    /// run bit-identical to its oracle, and the barrier/DMA basket actually
    /// skipping cycles (a zero skip there means the fast-forward is dead).
    ///
    /// # Errors
    ///
    /// Returns one message per violated invariant.
    pub fn verify(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        for r in &self.rows {
            if !r.oracle_match {
                problems.push(format!(
                    "{} @ {} cores: fast-forward diverged from the single-step oracle",
                    r.basket, r.cores
                ));
            }
        }
        for r in self.rows.iter().filter(|r| r.basket == "barrier_dma") {
            if r.cores > 1 && r.skip_ratio <= 0.0 {
                problems.push(format!(
                    "barrier_dma @ {} cores: skip ratio is zero — fast-forward never engaged",
                    r.cores
                ));
            }
            if r.cores > 1 && r.horizon_hit_rate <= 0.0 {
                problems.push(format!(
                    "barrier_dma @ {} cores: horizon hit rate is zero — instrumented run saw no skips",
                    r.cores
                ));
            }
        }
        for r in &self.rows {
            if r.horizon_scan_s + r.horizon_step_s <= 0.0 {
                problems.push(format!(
                    "{} @ {} cores: horizon wall split is empty — timing instrumentation is dead",
                    r.basket, r.cores
                ));
            }
            // Non-finite floats don't survive serde_json and break
            // `bench diff`; the wall clamps must keep every ratio finite.
            let floats = [
                ("ff_wall_s", r.ff_wall_s),
                ("oracle_wall_s", r.oracle_wall_s),
                ("ff_cycles_per_s", r.ff_cycles_per_s),
                ("oracle_cycles_per_s", r.oracle_cycles_per_s),
                ("speedup", r.speedup),
                ("skip_ratio", r.skip_ratio),
                ("horizon_hit_rate", r.horizon_hit_rate),
                ("horizon_scan_s", r.horizon_scan_s),
                ("horizon_step_s", r.horizon_step_s),
                ("horizon_scan_share", r.horizon_scan_share),
            ];
            for (name, v) in floats {
                if !v.is_finite() {
                    problems.push(format!(
                        "{} @ {} cores: {name} is non-finite ({v}) — would corrupt the JSON record",
                        r.basket, r.cores
                    ));
                }
            }
        }
        for (name, v) in [
            ("labeling_wall_s", self.labeling_wall_s),
            ("labeling_samples_per_s", self.labeling_samples_per_s),
            ("labeling_observed_wall_s", self.labeling_observed_wall_s),
            (
                "labeling_observed_samples_per_s",
                self.labeling_observed_samples_per_s,
            ),
            ("labeling_journal_overhead", self.labeling_journal_overhead),
        ] {
            if !v.is_finite() {
                problems.push(format!(
                    "{name} is non-finite ({v}) — would corrupt the JSON record"
                ));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_basket_builds_and_validates_at_every_team_size() {
        for basket in BASKETS {
            for team in TEAM_SIZES {
                let p = basket_program(basket, team, 128);
                assert!(
                    p.validate().is_ok(),
                    "basket {basket} invalid at {team} cores"
                );
            }
        }
    }

    #[test]
    fn quick_bench_passes_its_own_verification() {
        let report = run_sim_bench(&SimBenchOptions {
            quick: true,
            iters: 1,
            ..SimBenchOptions::default()
        });
        assert_eq!(report.rows.len(), BASKETS.len() * TEAM_SIZES.len());
        report.verify().expect("benchmark invariants hold");
        // The barrier/DMA basket is the fast-forward's best case: sleeping
        // workers and a master parked on a long DMA drain.
        let dma8 = report
            .rows
            .iter()
            .find(|r| r.basket == "barrier_dma" && r.cores == 8)
            .expect("row exists");
        assert!(
            dma8.skip_ratio > 0.5,
            "barrier_dma@8 should skip most cycles, got {}",
            dma8.skip_ratio
        );
        // The ALU basket keeps a core Ready every cycle: nothing to skip.
        let alu1 = report
            .rows
            .iter()
            .find(|r| r.basket == "alu" && r.cores == 1)
            .expect("row exists");
        assert!(
            alu1.skip_ratio < 0.1,
            "alu@1 has no quiescent spans, got skip ratio {}",
            alu1.skip_ratio
        );
        // The instrumented pass fills the wall split for every row and the
        // skip-friendly basket converts horizon computations into skips.
        assert!(dma8.horizon_hit_rate > 0.0, "no horizon skips at dma@8");
        for r in &report.rows {
            assert!(
                r.horizon_scan_s + r.horizon_step_s > 0.0,
                "{} @ {}: empty horizon wall split",
                r.basket,
                r.cores
            );
            assert!((0.0..=1.0).contains(&r.horizon_scan_share));
        }
    }

    #[test]
    fn zero_walls_stay_finite_on_both_sides_of_the_ratio() {
        // Regression: only `ff_wall` was clamped, so a sub-resolution
        // *oracle* round reported `speedup: inf` (and `f64::MIN_POSITIVE`
        // was no clamp at all: `cycles / 5e-324` overflows to inf too).
        assert!(throughput(40_050, 0.0).is_finite());
        assert!(throughput(40_050, f64::MIN_POSITIVE).is_finite());
        assert!(speedup_of(0.0, 1e-3).is_finite());
        assert!(speedup_of(1e-3, 0.0).is_finite());
        assert_eq!(speedup_of(0.0, 0.0), 1.0);
        // Finite ordinary measurements are untouched by the 1 ns floor.
        assert_eq!(throughput(1_000, 0.5), 2_000.0);
        assert_eq!(speedup_of(0.5, 0.25), 2.0);
    }

    #[test]
    fn verify_rejects_non_finite_ratios() {
        let mut report = run_sim_bench(&SimBenchOptions {
            quick: true,
            iters: 1,
            ..SimBenchOptions::default()
        });
        report.rows[0].speedup = f64::INFINITY;
        let problems = report.verify().expect_err("inf must be rejected");
        assert!(
            problems.iter().any(|p| p.contains("speedup is non-finite")),
            "got {problems:?}"
        );
    }

    #[test]
    fn labeling_throughput_is_measured_and_finite() {
        let report = run_sim_bench(&SimBenchOptions {
            quick: true,
            iters: 1,
            ..SimBenchOptions::default()
        });
        assert!(report.labeling_samples > 0, "no kernels labelled");
        assert!(report.labeling_threads > 0);
        assert!(report.labeling_samples_per_s > 0.0);
        assert!(report.labeling_samples_per_s.is_finite());
        // The observed pass ran and its overhead ratio is a usable number.
        assert!(report.labeling_observed_wall_s > 0.0);
        assert!(report.labeling_observed_samples_per_s > 0.0);
        assert!(report.labeling_journal_overhead > 0.0);
        assert!(report.labeling_journal_overhead.is_finite());
        // Both throughput lines reach the rendered table.
        let table = report.render_table();
        assert!(table.contains("labeling:"), "table: {table}");
        assert!(table.contains("labeling+journal:"), "table: {table}");
    }

    #[test]
    fn journaled_bench_writes_a_valid_staged_journal() {
        let mut journal = pulp_obs::JournalWriter::in_memory("bench_sim", "cafe", 7);
        let report = run_sim_bench_journaled(
            &SimBenchOptions {
                quick: true,
                iters: 1,
                ..SimBenchOptions::default()
            },
            Some(&mut journal),
        );
        let text = journal.finalize_to_string().expect("finalize");
        let parsed = pulp_obs::JournalReader::read_str(&text).expect("journal validates");
        assert!(parsed.ok(), "journal must finalize ok=true");
        let stages: Vec<&str> = parsed
            .events
            .iter()
            .filter_map(|e| match e {
                pulp_obs::JournalEvent::StageStart { stage } => Some(stage.as_str()),
                _ => None,
            })
            .collect();
        let mut expected: Vec<&str> = BASKETS.to_vec();
        expected.push("labeling");
        assert_eq!(stages, expected);
        // One bench_record per row plus the three labeling figures.
        let records = parsed
            .events
            .iter()
            .filter(|e| matches!(e, pulp_obs::JournalEvent::BenchRecord { .. }))
            .count();
        assert_eq!(records, report.rows.len() + 3);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run_sim_bench(&SimBenchOptions {
            quick: true,
            iters: 1,
            ..SimBenchOptions::default()
        });
        let json = serde_json::to_string_pretty(&report).expect("serialise");
        let back: SimBenchReport = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(back, report);
    }
}

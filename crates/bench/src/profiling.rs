//! Bridges the simulator's [`Telemetry`] stream into `pulp-obs` recorders.
//!
//! [`profile_run`] executes a program once with full attribution telemetry
//! and returns the statistics, the serial/parallel region profiles and a
//! per-core cause timeline. [`chrome_trace_of_run`] renders that into a
//! Chrome trace-event JSON (load it at `chrome://tracing` or ui.perfetto.dev):
//! track 0 carries the region spans and fork/release markers, tracks
//! `1..=n` carry one lane per core whose spans are maximal runs of a
//! single [`CycleCause`].

use pulp_obs::{chrome_trace, Recorder};
use pulp_sim::{
    simulate_instrumented, ClusterConfig, CycleCause, NullSink, Program, RegionProfile,
    RegionProfiler, SimError, SimStats, Telemetry,
};

/// A maximal run of consecutive cycles a core spent on one cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CauseRun {
    /// The attributed cause.
    pub cause: CycleCause,
    /// First cycle of the run.
    pub start: u64,
    /// One past the last cycle of the run.
    pub end: u64,
}

impl CauseRun {
    /// Run length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }
}

/// Telemetry that compacts each core's per-cycle attribution into maximal
/// same-cause runs (the lanes of the Chrome trace).
#[derive(Debug, Clone, Default)]
pub struct CoreTimeline {
    lanes: Vec<Vec<CauseRun>>,
}

impl CoreTimeline {
    /// One lane per core, each a time-ordered list of cause runs.
    pub fn lanes(&self) -> &[Vec<CauseRun>] {
        &self.lanes
    }
}

impl Telemetry for CoreTimeline {
    fn on_cycle(&mut self, cycle: u64, core: usize, cause: CycleCause) {
        self.advance_n(cycle, core, 1, cause);
    }

    // O(1) bulk attribution for the simulator's fast-forward: a quiescent
    // span either extends the core's current run or opens one new run.
    fn advance_n(&mut self, cycle: u64, core: usize, n: u64, cause: CycleCause) {
        if n == 0 {
            return;
        }
        if self.lanes.len() <= core {
            self.lanes.resize(core + 1, Vec::new());
        }
        let lane = &mut self.lanes[core];
        match lane.last_mut() {
            Some(run) if run.cause == cause && run.end == cycle => run.end = cycle + n,
            _ => lane.push(CauseRun {
                cause,
                start: cycle,
                end: cycle + n,
            }),
        }
    }
}

/// Everything one instrumented run produces.
#[derive(Debug, Clone)]
pub struct ProfiledRun {
    /// Ground-truth simulator statistics.
    pub stats: SimStats,
    /// Serial/parallel region segmentation with per-region attribution.
    pub regions: Vec<RegionProfile>,
    /// Per-core cause timeline.
    pub timeline: CoreTimeline,
    /// Fork-signal cycles.
    pub forks: Vec<u64>,
    /// Barrier-release cycles.
    pub releases: Vec<u64>,
}

#[derive(Debug, Default)]
struct BridgeTelemetry {
    regions: RegionProfiler,
    timeline: CoreTimeline,
    forks: Vec<u64>,
    releases: Vec<u64>,
}

impl Telemetry for BridgeTelemetry {
    fn on_cycle(&mut self, cycle: u64, core: usize, cause: CycleCause) {
        self.regions.on_cycle(cycle, core, cause);
        self.timeline.on_cycle(cycle, core, cause);
    }

    fn advance_n(&mut self, cycle: u64, core: usize, n: u64, cause: CycleCause) {
        self.regions.advance_n(cycle, core, n, cause);
        self.timeline.advance_n(cycle, core, n, cause);
    }

    fn on_fork(&mut self, cycle: u64) {
        self.regions.on_fork(cycle);
        self.forks.push(cycle);
    }

    fn on_barrier_release(&mut self, cycle: u64) {
        self.regions.on_barrier_release(cycle);
        self.releases.push(cycle);
    }

    fn on_finish(&mut self, cycles: u64) {
        self.regions.on_finish(cycles);
    }
}

/// Runs `program` once with full attribution telemetry.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn profile_run(
    config: &ClusterConfig,
    program: &Program,
    max_cycles: u64,
) -> Result<ProfiledRun, SimError> {
    let mut tel = BridgeTelemetry::default();
    let stats = simulate_instrumented(config, program, max_cycles, &mut NullSink, &mut tel)?;
    Ok(ProfiledRun {
        stats,
        regions: tel.regions.regions().to_vec(),
        timeline: tel.timeline,
        forks: tel.forks,
        releases: tel.releases,
    })
}

/// Converts a profiled run into an obs [`Recorder`] on the manual clock
/// (ticks = cycles): region spans and fork/release markers on track 0, one
/// track per core with its cause runs as spans.
pub fn recorder_of_run(run: &ProfiledRun) -> Recorder {
    let mut rec = Recorder::manual();
    for region in &run.regions {
        rec.set_time(region.start_cycle);
        let span = rec.start_cat(&region.label(), "region");
        rec.annotate(span, "cycles", region.cycles());
        rec.annotate(span, "execute", region.breakdown.execute);
        rec.set_time(region.end_cycle);
        rec.end(span);
    }
    for &cycle in &run.forks {
        rec.set_time(cycle);
        rec.event("fork");
    }
    for &cycle in &run.releases {
        rec.set_time(cycle);
        rec.event("barrier_release");
    }
    for lane in run.timeline.lanes() {
        let mut core_rec = Recorder::manual();
        for r in lane {
            core_rec.set_time(r.start);
            let span = core_rec.start_cat(r.cause.token(), "core");
            core_rec.set_time(r.end);
            core_rec.end(span);
        }
        rec.merge(core_rec);
    }
    rec
}

/// Simulates `program` and renders the run as Chrome trace-event JSON.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn chrome_trace_of_run(
    config: &ClusterConfig,
    program: &Program,
    max_cycles: u64,
    process_name: &str,
) -> Result<String, SimError> {
    let run = profile_run(config, program, max_cycles)?;
    let rec = recorder_of_run(&run);
    Ok(chrome_trace(&rec, process_name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulp_sim::{OpKind, SegOp};

    fn fork_join_program() -> Program {
        let instr = |kind| SegOp::Instr { kind, addr: None };
        let master = vec![
            instr(OpKind::Alu),
            SegOp::Fork,
            instr(OpKind::Alu),
            instr(OpKind::Mul),
            SegOp::Barrier,
            instr(OpKind::Alu),
        ];
        let worker = vec![SegOp::WaitFork, instr(OpKind::Alu), SegOp::Barrier];
        Program::new(vec![master, worker])
    }

    #[test]
    fn timeline_covers_every_cycle_per_core() {
        let config = ClusterConfig::default();
        let run = profile_run(&config, &fork_join_program(), 10_000).expect("simulate");
        for (core, lane) in run.timeline.lanes().iter().enumerate() {
            let covered: u64 = lane.iter().map(CauseRun::cycles).sum();
            assert_eq!(
                covered, run.stats.cycles,
                "core {core} lane must tile the run"
            );
            for w in lane.windows(2) {
                assert_eq!(w[0].end, w[1].start, "runs must be contiguous");
                assert_ne!(w[0].cause, w[1].cause, "runs must be maximal");
            }
        }
    }

    #[test]
    fn timeline_advance_n_matches_repeated_on_cycle() {
        use pulp_sim::CycleCause;
        let mut bulk = CoreTimeline::default();
        let mut single = CoreTimeline::default();
        let pattern = [
            (0u64, 0usize, 3u64, CycleCause::Execute),
            (3, 0, 5, CycleCause::Barrier),
            (0, 1, 8, CycleCause::Idle),
            (8, 0, 2, CycleCause::Barrier),
        ];
        for (cycle, core, n, cause) in pattern {
            bulk.advance_n(cycle, core, n, cause);
            for i in 0..n {
                single.on_cycle(cycle + i, core, cause);
            }
        }
        assert_eq!(bulk.lanes(), single.lanes());
    }

    #[test]
    fn chrome_trace_of_run_is_valid_and_deterministic() {
        let config = ClusterConfig::default();
        let p = fork_join_program();
        let a = chrome_trace_of_run(&config, &p, 10_000, "demo").expect("trace");
        let b = chrome_trace_of_run(&config, &p, 10_000, "demo").expect("trace");
        assert_eq!(a, b, "manual clock must make the trace deterministic");
        pulp_obs::validate_chrome_trace(&a).expect("valid chrome trace");
        assert!(a.contains("serial#0"));
        assert!(a.contains("\"fork\""));
    }
}

//! `pulp_cli bench models` — model-zoo evaluation benchmark.
//!
//! Successor of the retired `forest_extension` binary: runs every model in
//! the zoo (decision tree, random forest, gradient-boosted trees, kNN) on
//! the same static features and repeated-CV protocol, and reports each
//! model's tolerance accuracy at 0% and 5% energy waste.
//!
//! On top of the accuracy table, the benchmark is the release gate for the
//! quantized flat inference path: every flattenable model is also fitted
//! on the **full** dataset, compiled to a [`FlatModel`], and its integer
//! predictions are compared row-by-row against the float reference. The
//! mismatch counts land in the record, and `pulp_cli bench diff` fails on
//! any count above zero — so a quantization bug can never ship silently.
//!
//! Determinism: predictions come from
//! [`repeated_cross_val_predict`], which stripes repetitions round-robin
//! over workers, so the record is bit-identical at any `--cv-threads`
//! value. Forests and GBTs are ~50x the training cost of a tree; their
//! repetition counts are scaled down (`repeats / 10`, minimum 2) while
//! keeping the fold structure, exactly as `forest_extension` did.

use pulp_energy::evaluation::curve_from_predictions;
use pulp_energy::pipeline::LabeledDataset;
use pulp_energy::{default_tolerances, Protocol, StaticFeatureSet};
use pulp_ml::cv::repeated_cross_val_predict;
use pulp_ml::{
    DecisionTree, FlatModel, ForestParams, Gbt, GbtParams, KNearestNeighbors, KnnParams,
    RandomForest,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Zoo members in report order. `knn` has no tree structure and therefore
/// no flat compilation; the other three are gated on flat/float parity.
pub const MODELS: [&str; 4] = ["tree", "forest", "gbt", "knn"];

/// One zoo member's results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelsBenchRow {
    /// Model identifier (see [`MODELS`]).
    pub model: String,
    /// CV repetitions behind the accuracy figures (forest/GBT run fewer;
    /// see the module docs).
    pub repeats: usize,
    /// Mean repeated-CV accuracy at 0% energy-waste tolerance.
    pub static_at_0: f64,
    /// Mean repeated-CV accuracy at 5% energy-waste tolerance.
    pub static_at_5: f64,
    /// Std-dev across repetitions of the 5%-tolerance accuracy.
    pub std_at_5: f64,
    /// Nodes in the flat compilation of the full-dataset fit (`None` for
    /// models without a tree structure).
    pub flat_nodes: Option<u64>,
    /// Trees in the flat compilation (`None` when not flattenable).
    pub flat_trees: Option<u64>,
    /// Rows of the full dataset where the flat (quantized integer)
    /// prediction differed from the float reference. `Some(0)` is the only
    /// acceptable value for flattenable models; `bench diff` fails on
    /// anything greater.
    pub flat_mismatches: Option<u64>,
}

/// The full benchmark record written to `BENCH_models.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelsBenchReport {
    /// Tool identifier for downstream diffing (`"models"`).
    pub bench: String,
    /// `true` for `--quick` runs (not comparable to full runs).
    pub quick: bool,
    /// CV folds behind every row.
    pub folds: usize,
    /// Base repetition count (trees and kNN; forests/GBTs scale down).
    pub repeats: usize,
    /// Protocol seed.
    pub seed: u64,
    /// Dataset samples evaluated.
    pub samples: usize,
    /// Hash of the run manifest, tying the record to its provenance
    /// (empty when the manifest was skipped).
    #[serde(default)]
    pub manifest_hash: String,
    /// One row per zoo member.
    pub rows: Vec<ModelsBenchRow>,
    /// Wall time of the evaluation, seconds.
    pub wall_s: f64,
}

impl ModelsBenchReport {
    /// Checks the record's invariants: every zoo member present, all
    /// accuracies in range, and zero flat/float mismatches on every
    /// flattenable model.
    ///
    /// # Errors
    ///
    /// Returns one message per violated invariant.
    pub fn verify(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        for model in MODELS {
            if !self.rows.iter().any(|r| r.model == model) {
                problems.push(format!("zoo member `{model}` missing from the record"));
            }
        }
        for r in &self.rows {
            for (name, v) in [
                ("static_at_0", r.static_at_0),
                ("static_at_5", r.static_at_5),
            ] {
                if !(0.0..=1.0).contains(&v) {
                    problems.push(format!("{}: {name} = {v} outside [0, 1]", r.model));
                }
            }
            if r.static_at_5 + 1e-12 < r.static_at_0 {
                problems.push(format!(
                    "{}: accuracy fell when the tolerance loosened ({} @0% vs {} @5%)",
                    r.model, r.static_at_0, r.static_at_5
                ));
            }
            if let Some(m) = r.flat_mismatches {
                if m > 0 {
                    problems.push(format!(
                        "{}: flat inference diverged from the float reference on {m} row(s)",
                        r.model
                    ));
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// Renders the human-readable table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "model zoo: {} samples, {} folds x {} repeats (seed {}), {:.2}s",
            self.samples, self.folds, self.repeats, self.seed, self.wall_s
        );
        let _ = writeln!(
            out,
            "{:<8} {:>7} {:>8} {:>8} {:>8} {:>10} {:>6} {:>10}",
            "model", "repeats", "acc@0%", "acc@5%", "std@5%", "flat nodes", "trees", "mismatches"
        );
        for r in &self.rows {
            let opt = |v: Option<u64>| v.map_or("-".to_string(), |n| n.to_string());
            let _ = writeln!(
                out,
                "{:<8} {:>7} {:>7.1}% {:>7.1}% {:>7.1}% {:>10} {:>6} {:>10}",
                r.model,
                r.repeats,
                r.static_at_0 * 100.0,
                r.static_at_5 * 100.0,
                r.std_at_5 * 100.0,
                opt(r.flat_nodes),
                opt(r.flat_trees),
                opt(r.flat_mismatches),
            );
        }
        out
    }
}

/// Counts rows of `data` where `flat` disagrees with the float `predict`
/// closure, reusing one quantization scratch buffer across rows.
fn count_mismatches(
    data: &pulp_ml::Dataset,
    flat: &FlatModel,
    predict: impl Fn(&[f64]) -> usize,
) -> u64 {
    let mut scratch = Vec::new();
    (0..data.len())
        .filter(|&i| {
            let x = data.row(i);
            flat.predict_with(&mut scratch, x) != predict(x)
        })
        .count() as u64
}

/// Runs the zoo evaluation on a built dataset.
///
/// # Panics
///
/// Panics when the static feature matrix cannot be assembled — there is
/// nothing to evaluate without it.
pub fn run_models_bench(
    data: &LabeledDataset,
    protocol: &Protocol,
    quick: bool,
) -> ModelsBenchReport {
    let start = Instant::now();
    let energies = data.energies();
    let tolerances = default_tolerances();
    let all = data.static_dataset(StaticFeatureSet::All).expect("static");
    // Forests and GBTs are ~50x the training cost of a tree; scale their
    // repetitions down while keeping the fold structure.
    let slow_repeats = (protocol.repeats / 10).max(2);

    let accuracy = |label: &str, repeats: usize, reps: &[Vec<usize>]| {
        let curve = curve_from_predictions(label, reps, &energies, &tolerances);
        let i5 = curve
            .tolerances
            .iter()
            .position(|&t| (t - 0.05).abs() < 1e-9)
            .expect("default tolerance grid contains 5%");
        (
            repeats,
            curve.at(0.0).expect("non-empty tolerance grid"),
            curve.at(0.05).expect("non-empty tolerance grid"),
            curve.std[i5],
        )
    };

    let tree_preds = repeated_cross_val_predict(
        &all,
        protocol.folds,
        protocol.repeats,
        protocol.seed,
        protocol.cv_threads,
        |_seed| DecisionTree::new(protocol.tree),
    );
    // Each repetition's forest/GBT is seeded from the repetition seed
    // itself, so the run is deterministic at any `--cv-threads` value.
    // `seed + 1` keeps the forest's bootstrap streams aligned with the
    // retired `forest_extension` binary, so old and new records compare.
    let forest_preds = repeated_cross_val_predict(
        &all,
        protocol.folds,
        slow_repeats,
        protocol.seed,
        protocol.cv_threads,
        |seed| {
            RandomForest::new(ForestParams {
                n_trees: 50,
                tree: protocol.tree,
                max_features: None,
                seed: seed + 1,
            })
        },
    );
    let gbt_preds = repeated_cross_val_predict(
        &all,
        protocol.folds,
        slow_repeats,
        protocol.seed,
        protocol.cv_threads,
        |seed| {
            Gbt::new(GbtParams {
                seed,
                ..GbtParams::default()
            })
        },
    );
    let knn_preds = repeated_cross_val_predict(
        &all,
        protocol.folds,
        protocol.repeats,
        protocol.seed,
        protocol.cv_threads,
        |_seed| KNearestNeighbors::new(KnnParams::default()),
    );

    // Flat-fidelity pass: fit each flattenable model on the full dataset,
    // compile it, and demand row-for-row agreement with the float path.
    let mut tree = DecisionTree::new(protocol.tree);
    tree.fit(&all);
    let tree_flat = FlatModel::from_tree(&tree);
    let tree_mismatches = count_mismatches(&all, &tree_flat, |x| tree.predict(x));

    let mut forest = RandomForest::new(ForestParams {
        n_trees: 50,
        tree: protocol.tree,
        max_features: None,
        seed: protocol.seed + 1,
    });
    forest.fit(&all);
    let forest_flat = FlatModel::from_forest(&forest);
    let forest_mismatches = count_mismatches(&all, &forest_flat, |x| forest.predict(x));

    let mut gbt = Gbt::new(GbtParams {
        seed: protocol.seed,
        ..GbtParams::default()
    });
    gbt.fit(&all);
    let gbt_flat = FlatModel::from_gbt(&gbt);
    let gbt_mismatches = count_mismatches(&all, &gbt_flat, |x| gbt.predict(x));

    let row = |model: &str,
               (repeats, at0, at5, std5): (usize, f64, f64, f64),
               flat: Option<(&FlatModel, u64)>| {
        ModelsBenchRow {
            model: model.to_string(),
            repeats,
            static_at_0: at0,
            static_at_5: at5,
            std_at_5: std5,
            flat_nodes: flat.map(|(f, _)| f.n_nodes() as u64),
            flat_trees: flat.map(|(f, _)| f.n_trees() as u64),
            flat_mismatches: flat.map(|(_, m)| m),
        }
    };
    let rows = vec![
        row(
            "tree",
            accuracy("tree", protocol.repeats, &tree_preds),
            Some((&tree_flat, tree_mismatches)),
        ),
        row(
            "forest",
            accuracy("forest", slow_repeats, &forest_preds),
            Some((&forest_flat, forest_mismatches)),
        ),
        row(
            "gbt",
            accuracy("gbt", slow_repeats, &gbt_preds),
            Some((&gbt_flat, gbt_mismatches)),
        ),
        row(
            "knn",
            accuracy("knn(5)", protocol.repeats, &knn_preds),
            None,
        ),
    ];

    ModelsBenchReport {
        bench: "models".to_string(),
        quick,
        folds: protocol.folds,
        repeats: protocol.repeats,
        seed: protocol.seed,
        samples: data.len(),
        manifest_hash: String::new(),
        rows,
        wall_s: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy_report() -> ModelsBenchReport {
        let row = |model: &str, flat: bool| ModelsBenchRow {
            model: model.to_string(),
            repeats: 2,
            static_at_0: 0.5,
            static_at_5: 0.9,
            std_at_5: 0.02,
            flat_nodes: flat.then_some(100),
            flat_trees: flat.then_some(1),
            flat_mismatches: flat.then_some(0),
        };
        ModelsBenchReport {
            bench: "models".to_string(),
            quick: true,
            folds: 5,
            repeats: 5,
            seed: 0,
            samples: 64,
            manifest_hash: String::new(),
            rows: vec![
                row("tree", true),
                row("forest", true),
                row("gbt", true),
                row("knn", false),
            ],
            wall_s: 1.0,
        }
    }

    #[test]
    fn verify_accepts_a_healthy_report() {
        healthy_report().verify().expect("healthy");
    }

    #[test]
    fn verify_rejects_mismatches_missing_models_and_bad_accuracy() {
        let mut r = healthy_report();
        r.rows[1].flat_mismatches = Some(3);
        let problems = r.verify().unwrap_err();
        assert!(
            problems
                .iter()
                .any(|p| p.contains("forest") && p.contains("3 row(s)")),
            "{problems:?}"
        );

        let mut r = healthy_report();
        r.rows.retain(|row| row.model != "gbt");
        let problems = r.verify().unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("`gbt` missing")),
            "{problems:?}"
        );

        let mut r = healthy_report();
        r.rows[0].static_at_5 = 1.5;
        let problems = r.verify().unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("outside [0, 1]")),
            "{problems:?}"
        );

        // Accuracy must be monotone in the tolerance.
        let mut r = healthy_report();
        r.rows[0].static_at_0 = 0.95;
        r.rows[0].static_at_5 = 0.90;
        let problems = r.verify().unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("tolerance loosened")),
            "{problems:?}"
        );
    }

    #[test]
    fn report_round_trips_through_json_with_null_flat_fields() {
        let r = healthy_report();
        let json = serde_json::to_string_pretty(&r).expect("serialise");
        assert!(json.contains("\"flat_mismatches\""), "{json}");
        let back: ModelsBenchReport = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(r, back);
        assert_eq!(back.rows[3].flat_mismatches, None, "knn has no flat form");
    }

    #[test]
    fn render_table_names_every_model() {
        let table = healthy_report().render_table();
        for model in MODELS {
            assert!(table.contains(model), "{table}");
        }
        assert!(table.contains("mismatches"), "{table}");
    }
}

//! A hashed timer wheel for connection deadlines.
//!
//! Non-blocking sockets cannot carry `SO_RCVTIMEO`-style deadlines, so the
//! event loop arms entries here instead: read deadlines at accept / first
//! byte, write deadlines when a response starts flushing. Entries hash into
//! `deadline / granularity % slots`; [`TimerWheel::advance`] walks the
//! cursor over elapsed ticks and fires everything whose tick has been
//! reached, re-homing entries that wrapped a full rotation.
//!
//! Cancellation is lazy — the owner keeps the authoritative deadline per
//! connection and ignores fired entries that no longer match, so disarming
//! is free and stale entries cost one tuple until their tick drains.

/// Timer precision and capacity are fixed per wheel at construction.
pub struct TimerWheel {
    granularity_ms: u64,
    slots: Vec<Vec<Entry>>,
    /// Next tick to drain; everything before it has already fired.
    cursor_tick: u64,
    /// Live entries (including lazily-cancelled ones not yet drained) — an
    /// upper bound the event loop uses to pick its wait timeout.
    armed: usize,
}

#[derive(Clone, Copy)]
struct Entry {
    deadline_ms: u64,
    token: u64,
}

impl TimerWheel {
    pub fn new(granularity_ms: u64, n_slots: usize) -> Self {
        TimerWheel {
            granularity_ms: granularity_ms.max(1),
            slots: vec![Vec::new(); n_slots.max(2)],
            cursor_tick: 0,
            armed: 0,
        }
    }

    pub fn granularity_ms(&self) -> u64 {
        self.granularity_ms
    }

    /// `true` when nothing is armed — the event loop may block forever.
    pub fn is_idle(&self) -> bool {
        self.armed == 0
    }

    /// Arms `token` to fire once `deadline_ms` is reached. Deadlines in the
    /// past (relative to the cursor) fire on the next [`advance`].
    ///
    /// [`advance`]: TimerWheel::advance
    pub fn schedule(&mut self, deadline_ms: u64, token: u64) {
        let tick = (deadline_ms / self.granularity_ms).max(self.cursor_tick);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { deadline_ms, token });
        self.armed += 1;
    }

    /// Drains every tick up to `now_ms`, appending fired `(token,
    /// deadline_ms)` pairs to `expired`. Entries whose tick lies beyond the
    /// drained range (a wheel wrap) stay put for a later rotation.
    pub fn advance(&mut self, now_ms: u64, expired: &mut Vec<(u64, u64)>) {
        let target = now_ms / self.granularity_ms;
        let n = self.slots.len() as u64;
        // A long sleep can skip many rotations; every slot only needs one
        // visit, so cap the walk at one full turn of the wheel. When the
        // cursor is already ahead of `now` (it advances a full tick at a
        // time), sweep just the cursor slot — that is where `schedule`
        // clamps already-expired deadlines.
        let (first, last) = if target < self.cursor_tick {
            (self.cursor_tick, self.cursor_tick)
        } else if target - self.cursor_tick >= n {
            (target + 1 - n, target)
        } else {
            (self.cursor_tick, target)
        };
        let granularity = self.granularity_ms;
        let mut fired = 0usize;
        for tick in first..=last {
            let slot = (tick % n) as usize;
            self.slots[slot].retain(|e| {
                if e.deadline_ms / granularity <= target {
                    expired.push((e.token, e.deadline_ms));
                    fired += 1;
                    false
                } else {
                    true
                }
            });
        }
        self.armed -= fired;
        self.cursor_tick = self.cursor_tick.max(target + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fired(wheel: &mut TimerWheel, now_ms: u64) -> Vec<u64> {
        let mut out = Vec::new();
        wheel.advance(now_ms, &mut out);
        out.into_iter().map(|(token, _)| token).collect()
    }

    #[test]
    fn fires_at_the_deadline_not_before() {
        let mut w = TimerWheel::new(10, 32);
        w.schedule(95, 1);
        assert!(fired(&mut w, 80).is_empty());
        assert_eq!(fired(&mut w, 100), vec![1]);
        assert!(w.is_idle());
        // Firing is one-shot.
        assert!(fired(&mut w, 200).is_empty());
    }

    #[test]
    fn wrapped_entries_wait_a_full_rotation() {
        let mut w = TimerWheel::new(10, 8); // one rotation = 80ms
        w.schedule(25, 1);
        w.schedule(105, 2); // same slot as token 1, next rotation
        assert_eq!(fired(&mut w, 30), vec![1]);
        assert!(fired(&mut w, 90).is_empty(), "wrapped entry fired early");
        assert_eq!(fired(&mut w, 110), vec![2]);
    }

    #[test]
    fn past_deadlines_fire_on_the_next_advance() {
        let mut w = TimerWheel::new(10, 8);
        assert!(fired(&mut w, 500).is_empty());
        w.schedule(100, 7); // already in the past
        assert_eq!(fired(&mut w, 501), vec![7]);
    }

    #[test]
    fn long_sleeps_drain_every_slot_once() {
        let mut w = TimerWheel::new(10, 8);
        for t in 0..16 {
            w.schedule(t * 7 + 1, t);
        }
        let mut out = Vec::new();
        // Jump far past everything (many whole rotations).
        w.advance(10_000, &mut out);
        assert_eq!(out.len(), 16);
        assert!(w.is_idle());
    }

    #[test]
    fn advance_reports_the_original_deadline_for_lazy_cancellation() {
        let mut w = TimerWheel::new(10, 8);
        w.schedule(40, 3);
        w.schedule(60, 3); // re-armed: the owner only honours the newest
        let mut out = Vec::new();
        w.advance(100, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![(3, 40), (3, 60)]);
    }
}

//! Incremental HTTP/1.1 request parsing for non-blocking sockets.
//!
//! The blocking tier read requests with `BufRead::read_line`; readiness
//! delivers bytes in arbitrary fragments, so [`HttpParser`] buffers them
//! and re-parses on demand: feed what the socket had, then [`take`] either
//! yields a complete [`Request`], asks for more bytes, or fails with the
//! same [`RequestError`] taxonomy the blocking reader used (so the 400 /
//! 408 / 413 response surface is unchanged).
//!
//! [`take`]: HttpParser::take

/// One parsed request: method, path, body, client's connection wish.
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
    /// `true` when the client asked for `Connection: close` (or spoke
    /// HTTP/1.0 without requesting keep-alive).
    pub close: bool,
}

/// Why a request could not be read off the wire.
pub enum RequestError {
    /// Clean end of stream between requests (normal keep-alive end).
    Eof,
    /// A read deadline fired mid-request (slowloris or a stalled peer).
    /// The parser never produces this itself — deadlines live on the
    /// event loop's timer wheel — but the error surface keeps the variant
    /// so response mapping stays in one place.
    TimedOut,
    /// The declared `Content-Length` exceeds the configured cap; nothing
    /// was allocated for it.
    TooLarge { length: usize, limit: usize },
    /// The request line or headers do not parse as HTTP.
    Malformed(&'static str),
    /// Any other transport error.
    Io,
}

/// Result of one [`HttpParser::take`] attempt.
pub enum Parsed {
    /// The buffer does not hold a complete request yet; feed more bytes
    /// (never returned once EOF has been fed).
    NeedMore,
    Request(Request),
    Failed(RequestError),
}

/// Header bytes a single request may occupy before it is refused — the
/// equivalent allocation guard to the `Content-Length` cap, since a
/// readiness parser must buffer heads it has not finished parsing.
const MAX_HEAD_BYTES: usize = 64 * 1024;

enum State {
    /// Waiting for the request line.
    Line,
    /// Request line parsed; accumulating headers.
    Headers {
        method: String,
        path: String,
        content_length: usize,
        close: bool,
    },
    /// Headers done; waiting for `content_length` body bytes.
    Body {
        method: String,
        path: String,
        content_length: usize,
        close: bool,
    },
}

pub struct HttpParser {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by the parser.
    pos: usize,
    state: State,
    eof: bool,
}

impl Default for HttpParser {
    fn default() -> Self {
        Self::new()
    }
}

impl HttpParser {
    pub fn new() -> Self {
        HttpParser {
            buf: Vec::new(),
            pos: 0,
            state: State::Line,
            eof: false,
        }
    }

    /// Appends bytes read off the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Marks end of stream; the next [`take`] classifies any partial
    /// request instead of asking for more bytes.
    ///
    /// [`take`]: HttpParser::take
    pub fn feed_eof(&mut self) {
        self.eof = true;
    }

    /// `true` when bytes are buffered beyond the last complete request —
    /// a request is part-way through arriving (or pipelined ahead).
    pub fn has_partial(&self) -> bool {
        self.pos < self.buf.len() || !matches!(self.state, State::Line)
    }

    /// Pops one full line (without its `\n`, trailing whitespace trimmed
    /// like the blocking tier's `read_line` + `trim_end`). At EOF the
    /// un-terminated remainder counts as a final line, exactly as
    /// `read_line` would have returned it.
    fn next_line(&mut self) -> Option<String> {
        let rest = &self.buf[self.pos..];
        let (raw_end, consume) = match rest.iter().position(|&b| b == b'\n') {
            Some(nl) => (nl, nl + 1),
            None if self.eof && !rest.is_empty() => (rest.len(), rest.len()),
            None => return None,
        };
        let mut end = raw_end;
        while end > 0 && rest[end - 1].is_ascii_whitespace() {
            end -= 1;
        }
        let line = String::from_utf8_lossy(&rest[..end]).into_owned();
        self.pos += consume;
        Some(line)
    }

    /// Drops consumed bytes once they dominate the buffer.
    fn compact(&mut self) {
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 8 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    fn fail(&mut self, err: RequestError) -> Parsed {
        // A parse failure poisons the connection (the caller answers with
        // a final response and closes); drop the buffer.
        self.buf.clear();
        self.pos = 0;
        self.state = State::Line;
        Parsed::Failed(err)
    }

    /// Attempts to produce one request from the buffered bytes.
    pub fn take(&mut self, max_body: usize) -> Parsed {
        loop {
            match std::mem::replace(&mut self.state, State::Line) {
                State::Line => {
                    let Some(line) = self.next_line() else {
                        return self.need_more_or_eof_line();
                    };
                    match parse_request_line(&line) {
                        Ok((method, path, close)) => {
                            self.state = State::Headers {
                                method,
                                path,
                                content_length: 0,
                                close,
                            };
                        }
                        Err(e) => return self.fail(e),
                    }
                }
                State::Headers {
                    method,
                    path,
                    mut content_length,
                    mut close,
                } => {
                    let Some(line) = self.next_line() else {
                        self.state = State::Headers {
                            method,
                            path,
                            content_length,
                            close,
                        };
                        return self.need_more_or_eof_headers();
                    };
                    if line.is_empty() {
                        // Refuse attacker-controlled allocations: check the
                        // declared length against the cap before reserving
                        // a single byte for the body.
                        if content_length > max_body {
                            return self.fail(RequestError::TooLarge {
                                length: content_length,
                                limit: max_body,
                            });
                        }
                        self.state = State::Body {
                            method,
                            path,
                            content_length,
                            close,
                        };
                        continue;
                    }
                    match parse_header(&line, &mut content_length, &mut close) {
                        Ok(()) => {
                            self.state = State::Headers {
                                method,
                                path,
                                content_length,
                                close,
                            };
                        }
                        Err(e) => return self.fail(e),
                    }
                }
                State::Body {
                    method,
                    path,
                    content_length,
                    close,
                } => {
                    if self.buf.len() - self.pos < content_length {
                        self.state = State::Body {
                            method,
                            path,
                            content_length,
                            close,
                        };
                        if self.eof {
                            // The blocking reader's `read_exact` hit EOF
                            // mid-body: a transport error, not a 400.
                            return self.fail(RequestError::Io);
                        }
                        return Parsed::NeedMore;
                    }
                    let body_bytes = &self.buf[self.pos..self.pos + content_length];
                    let body = String::from_utf8_lossy(body_bytes).into_owned();
                    self.pos += content_length;
                    self.compact();
                    return Parsed::Request(Request {
                        method,
                        path,
                        body,
                        close,
                    });
                }
            }
        }
    }

    /// No complete line while waiting for a request line. With EOF fed,
    /// [`next_line`] already surrendered any partial remainder, so landing
    /// here at EOF means a clean close between requests.
    ///
    /// [`next_line`]: HttpParser::next_line
    fn need_more_or_eof_line(&mut self) -> Parsed {
        if self.eof {
            return Parsed::Failed(RequestError::Eof);
        }
        if self.buf.len() - self.pos > MAX_HEAD_BYTES {
            return self.fail(RequestError::Malformed("request head too large"));
        }
        self.compact();
        Parsed::NeedMore
    }

    /// No complete line while inside the header block.
    fn need_more_or_eof_headers(&mut self) -> Parsed {
        if self.eof {
            // The blocking reader saw `read_line` return 0 mid-headers.
            return self.fail(RequestError::Malformed("headers truncated"));
        }
        if self.buf.len() - self.pos > MAX_HEAD_BYTES {
            return self.fail(RequestError::Malformed("request head too large"));
        }
        self.compact();
        Parsed::NeedMore
    }
}

fn parse_request_line(line: &str) -> Result<(String, String, bool), RequestError> {
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(RequestError::Malformed(
            "request line needs `METHOD PATH HTTP/x.y`",
        ));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/") {
        return Err(RequestError::Malformed(
            "request line needs `METHOD PATH HTTP/x.y`",
        ));
    }
    if !path.starts_with('/') {
        return Err(RequestError::Malformed("path must start with `/`"));
    }
    let http10 = version == "HTTP/1.0";
    Ok((method.to_string(), path.to_string(), http10))
}

fn parse_header(
    line: &str,
    content_length: &mut usize,
    close: &mut bool,
) -> Result<(), RequestError> {
    let Some((name, value)) = line.split_once(':') else {
        return Err(RequestError::Malformed("header without `:`"));
    };
    let value = value.trim();
    if name.eq_ignore_ascii_case("content-length") {
        *content_length = value
            .parse()
            .map_err(|_| RequestError::Malformed("unparseable Content-Length"))?;
    } else if name.eq_ignore_ascii_case("connection") {
        if value.eq_ignore_ascii_case("close") {
            *close = true;
        } else if value.eq_ignore_ascii_case("keep-alive") {
            *close = false;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take_all(text: &str, max_body: usize) -> Parsed {
        let mut p = HttpParser::new();
        p.feed(text.as_bytes());
        p.feed_eof();
        p.take(max_body)
    }

    #[test]
    fn byte_at_a_time_arrival_still_parses() {
        let raw = "POST /predict HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let mut p = HttpParser::new();
        for b in raw.as_bytes() {
            match p.take(1024) {
                Parsed::NeedMore => {}
                _ => panic!("complete before all bytes arrived"),
            }
            p.feed(std::slice::from_ref(b));
        }
        match p.take(1024) {
            Parsed::Request(r) => {
                assert_eq!((r.method.as_str(), r.path.as_str()), ("POST", "/predict"));
                assert_eq!(r.body, "abcd");
                assert!(!r.close);
            }
            _ => panic!("expected a complete request"),
        }
        assert!(!p.has_partial());
    }

    #[test]
    fn pipelined_requests_come_out_one_at_a_time() {
        let mut p = HttpParser::new();
        p.feed(b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n");
        let Parsed::Request(first) = p.take(1024) else {
            panic!("first request");
        };
        assert_eq!(first.path, "/healthz");
        assert!(p.has_partial());
        let Parsed::Request(second) = p.take(1024) else {
            panic!("second request");
        };
        assert_eq!(second.path, "/metrics");
        assert!(!p.has_partial());
        assert!(matches!(p.take(1024), Parsed::NeedMore));
    }

    #[test]
    fn eof_classification_matches_the_blocking_reader() {
        // Clean EOF between requests.
        assert!(matches!(
            take_all("", 1024),
            Parsed::Failed(RequestError::Eof)
        ));
        // EOF mid-headers: 400 material, not a clean close.
        for raw in ["GET /x HTTP/1.1\r\n", "GET /x HTTP/1.1\r\nA: b\r\n"] {
            assert!(
                matches!(
                    take_all(raw, 1024),
                    Parsed::Failed(RequestError::Malformed("headers truncated"))
                ),
                "eof mid-head misclassified for {raw:?}"
            );
        }
        // A request line cut short by EOF parses as the short line the
        // blocking reader's final `read_line` would have returned.
        assert!(matches!(
            take_all("GET /x", 1024),
            Parsed::Failed(RequestError::Malformed(
                "request line needs `METHOD PATH HTTP/x.y`"
            ))
        ));
        // EOF mid-body: transport error, not a 400.
        assert!(matches!(
            take_all("POST /p HTTP/1.1\r\nContent-Length: 9\r\n\r\nabc", 1024),
            Parsed::Failed(RequestError::Io)
        ));
    }

    #[test]
    fn oversized_declared_bodies_are_refused_before_arrival() {
        let mut p = HttpParser::new();
        p.feed(b"POST /p HTTP/1.1\r\nContent-Length: 4096\r\n\r\n");
        // No body bytes arrived at all — the declared length is enough.
        match p.take(256) {
            Parsed::Failed(RequestError::TooLarge { length, limit }) => {
                assert_eq!((length, limit), (4096, 256));
            }
            _ => panic!("expected TooLarge"),
        }
    }

    #[test]
    fn unbounded_heads_are_refused() {
        let mut p = HttpParser::new();
        p.feed(b"GET / HTTP/1.1\r\n");
        let filler = vec![b'a'; MAX_HEAD_BYTES + 1024];
        p.feed(&filler); // one endless header line, no newline in sight
        assert!(matches!(
            p.take(1024),
            Parsed::Failed(RequestError::Malformed("request head too large"))
        ));
    }
}

//! Std-only readiness-driven networking primitives for the serving tier.
//!
//! The workspace is dependency-free (everything under `vendor/` is a stub),
//! so this module talks to the kernel the same way `serve`'s signal shim
//! does: thin `extern "C"` declarations against the platform C library that
//! std already links. Three pieces:
//!
//! - [`poller`] — a readiness [`Poller`] over `epoll(7)` on Linux with a
//!   portable `poll(2)` fallback elsewhere, plus an eventfd [`Waker`] so
//!   worker threads can interrupt a blocked wait.
//! - [`timer`] — a hashed [`TimerWheel`] that replaces per-socket
//!   `SO_RCVTIMEO`/`SO_SNDTIMEO` deadlines: non-blocking sockets cannot
//!   time out on their own, so the event loop arms wheel entries instead.
//! - [`http`] — an incremental HTTP/1.1 parser ([`HttpParser`]) that
//!   accepts bytes as readiness delivers them and yields at most one
//!   request at a time, preserving the blocking tier's exact error
//!   taxonomy ([`RequestError`]).

pub mod http;
pub mod poller;
pub mod timer;

pub use http::{HttpParser, Parsed, Request, RequestError};
pub use poller::{raw_fd, Event, Interest, Poller, Waker};
pub use timer::TimerWheel;

//! Readiness polling over raw syscalls, no `libc` crate.
//!
//! On Linux the backend is `epoll(7)` (level-triggered) plus an `eventfd(2)`
//! waker registered under a reserved token; on other unix platforms it falls
//! back to `poll(2)` with a bounded wait so wakes are observed within one
//! tick even without an fd-based waker. Both backends present the same API:
//! register an fd with a `u64` token and an [`Interest`], wait, and get back
//! [`Event`]s naming the tokens that turned ready.

#[cfg(unix)]
use std::os::unix::io::AsRawFd;

/// Which readiness the event loop currently cares about for an fd.
///
/// `None` keeps the registration but reports nothing — used while a request
/// is dispatched to the worker pool and the socket should stay untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interest {
    None,
    Read,
    Write,
}

/// One readiness notification: the registered token plus what fired.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup on the fd; the owner should attempt I/O (which will
    /// surface the real error) or drop the connection.
    pub hangup: bool,
}

/// Returns the raw fd of any socket-like object (portability shim: `-1` on
/// platforms without unix fds, where [`Poller::new`] refuses to start).
#[cfg(unix)]
pub fn raw_fd<T: AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

#[cfg(not(unix))]
pub fn raw_fd<T>(_t: &T) -> i32 {
    -1
}

/// Token reserved for the internal waker registration; never surfaced.
const WAKER_TOKEN: u64 = u64::MAX - 1;

/// A handle that interrupts a blocked [`Poller::wait`] from another thread.
///
/// Linux: an 8-byte write to a non-blocking eventfd. Fallback backends wake
/// implicitly because `wait` never blocks longer than one tick.
#[derive(Clone)]
pub struct Waker {
    #[cfg(target_os = "linux")]
    inner: std::sync::Arc<linux::EventFd>,
}

impl Waker {
    /// A waker wired to nothing — for unit tests that construct shutdown
    /// handles directly, and for the non-Linux backends.
    pub fn disconnected() -> Self {
        Waker {
            #[cfg(target_os = "linux")]
            inner: std::sync::Arc::new(linux::EventFd { fd: -1 }),
        }
    }

    pub fn wake(&self) {
        #[cfg(target_os = "linux")]
        self.inner.signal();
    }
}

#[cfg(target_os = "linux")]
mod linux {
    use super::{Event, Interest, Waker, WAKER_TOKEN};
    use std::io;

    // `#[repr(packed)]` matches the x86_64 kernel ABI, where `epoll_event`
    // is declared `__attribute__((packed))`; other 64-bit targets use the
    // natural (8-byte aligned) layout.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        // All from the platform C library std already links; the workspace
        // stays dependency-free (no libc crate), same as the signal shim.
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    pub(super) struct EventFd {
        pub(super) fd: i32,
    }

    impl EventFd {
        fn new() -> io::Result<Self> {
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EventFd { fd })
        }

        pub(super) fn signal(&self) {
            if self.fd >= 0 {
                let one: u64 = 1;
                let _ = unsafe { write(self.fd, &one as *const u64 as *const u8, 8) };
            }
        }

        fn drain(&self) {
            let mut buf = [0u8; 8];
            let _ = unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            if self.fd >= 0 {
                let _ = unsafe { close(self.fd) };
            }
        }
    }

    pub struct Poller {
        epfd: i32,
        waker: std::sync::Arc<EventFd>,
        buf: Vec<EpollEvent>,
    }

    fn mask(interest: Interest) -> u32 {
        match interest {
            Interest::None => 0,
            Interest::Read => EPOLLIN | EPOLLRDHUP,
            Interest::Write => EPOLLOUT,
        }
    }

    fn ctl(epfd: i32, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        if unsafe { epoll_ctl(epfd, op, fd, &mut ev) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let waker = match EventFd::new() {
                Ok(w) => w,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            if let Err(e) = ctl(epfd, EPOLL_CTL_ADD, waker.fd, EPOLLIN, WAKER_TOKEN) {
                unsafe { close(epfd) };
                return Err(e);
            }
            Ok(Poller {
                epfd,
                waker: std::sync::Arc::new(waker),
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        pub fn waker(&self) -> Waker {
            Waker {
                inner: self.waker.clone(),
            }
        }

        pub fn add(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            ctl(self.epfd, EPOLL_CTL_ADD, fd, mask(interest), token)
        }

        pub fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            ctl(self.epfd, EPOLL_CTL_MOD, fd, mask(interest), token)
        }

        pub fn remove(&mut self, fd: i32) -> io::Result<()> {
            ctl(self.epfd, EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks until readiness, a wake, or `timeout_ms` (`None` = forever).
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: Option<u64>) -> io::Result<()> {
            out.clear();
            let timeout = match timeout_ms {
                None => -1,
                Some(ms) => ms.min(i32::MAX as u64) as i32,
            };
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as i32,
                    timeout,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &self.buf[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let (bits, token) = (ev.events, ev.data);
                if token == WAKER_TOKEN {
                    self.waker.drain();
                    continue;
                }
                out.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            let _ = unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod fallback {
    use super::{Event, Interest, Waker};
    use std::io;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    /// `poll(2)` rebuilds its fd set per call, so waits are capped at one
    /// tick: wakes and cross-thread completions are observed within
    /// `MAX_WAIT_MS` even though [`Waker::wake`] is a no-op here.
    const MAX_WAIT_MS: u64 = 10;

    pub struct Poller {
        regs: Vec<(i32, u64, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Poller { regs: Vec::new() })
        }

        pub fn waker(&self) -> Waker {
            Waker::disconnected()
        }

        pub fn add(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.regs.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            for reg in &mut self.regs {
                if reg.0 == fd {
                    *reg = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn remove(&mut self, fd: i32) -> io::Result<()> {
            self.regs.retain(|reg| reg.0 != fd);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: Option<u64>) -> io::Result<()> {
            out.clear();
            let mut fds: Vec<PollFd> = Vec::with_capacity(self.regs.len());
            let mut tokens: Vec<u64> = Vec::with_capacity(self.regs.len());
            for &(fd, token, interest) in &self.regs {
                let events = match interest {
                    Interest::None => continue,
                    Interest::Read => POLLIN,
                    Interest::Write => POLLOUT,
                };
                fds.push(PollFd {
                    fd,
                    events,
                    revents: 0,
                });
                tokens.push(token);
            }
            let timeout = timeout_ms.unwrap_or(MAX_WAIT_MS).min(MAX_WAIT_MS) as i32;
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (pfd, &token) in fds.iter().zip(&tokens) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: pfd.revents & POLLIN != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
mod fallback {
    use super::{Event, Interest, Waker};
    use std::io;

    /// Non-unix platforms have no readiness backend here; the serving tier
    /// refuses to start rather than pretending to poll.
    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "readiness polling requires a unix platform",
            ))
        }

        pub fn waker(&self) -> Waker {
            Waker::disconnected()
        }

        pub fn add(&mut self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("Poller::new always fails on this platform")
        }

        pub fn modify(&mut self, _fd: i32, _token: u64, _interest: Interest) -> io::Result<()> {
            unreachable!("Poller::new always fails on this platform")
        }

        pub fn remove(&mut self, _fd: i32) -> io::Result<()> {
            unreachable!("Poller::new always fails on this platform")
        }

        pub fn wait(&mut self, _out: &mut Vec<Event>, _timeout_ms: Option<u64>) -> io::Result<()> {
            unreachable!("Poller::new always fails on this platform")
        }
    }
}

#[cfg(target_os = "linux")]
pub use linux::Poller;

#[cfg(not(target_os = "linux"))]
pub use fallback::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_reports_listener_and_stream_readiness() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut poller = Poller::new().expect("poller");
        poller
            .add(raw_fd(&listener), 7, Interest::Read)
            .expect("add");

        let mut events = Vec::new();
        // Nothing pending: a bounded wait comes back empty.
        poller.wait(&mut events, Some(20)).expect("wait");
        assert!(events.is_empty(), "spurious events: {events:?}");

        // A pending connection turns the listener readable.
        let mut client = TcpStream::connect(addr).expect("connect");
        poller.wait(&mut events, Some(2_000)).expect("wait");
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "listener never turned readable: {events:?}"
        );

        // An accepted stream with data pending turns readable too.
        let (stream, _) = listener.accept().expect("accept");
        stream.set_nonblocking(true).expect("nonblocking");
        poller
            .add(raw_fd(&stream), 9, Interest::Read)
            .expect("add stream");
        client.write_all(b"x").expect("write");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            poller.wait(&mut events, Some(100)).expect("wait");
            if events.iter().any(|e| e.token == 9 && e.readable) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "stream never turned readable"
            );
        }
        poller.remove(raw_fd(&stream)).expect("remove");
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let mut poller = Poller::new().expect("poller");
        let waker = poller.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        // One-second cap: the wake must return us well before it.
        poller.wait(&mut events, Some(1_000)).expect("wait");
        assert!(
            start.elapsed() < std::time::Duration::from_millis(900),
            "wait was not interrupted"
        );
        assert!(events.is_empty(), "waker must not surface as an event");
        t.join().expect("join");
    }

    #[test]
    fn interest_none_silences_a_ready_fd() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut poller = Poller::new().expect("poller");
        poller
            .add(raw_fd(&listener), 3, Interest::Read)
            .expect("add");
        let _client = TcpStream::connect(addr).expect("connect");
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            poller.wait(&mut events, Some(100)).expect("wait");
            if events.iter().any(|e| e.token == 3 && e.readable) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "never readable");
        }
        // Muting the registration stops the (level-triggered) reports.
        poller
            .modify(raw_fd(&listener), 3, Interest::None)
            .expect("modify");
        poller.wait(&mut events, Some(50)).expect("wait");
        assert!(events.is_empty(), "muted fd still reported: {events:?}");
    }
}

//! The instrumented prediction service behind `pulp_cli serve`.
//!
//! A std-only, production-shaped HTTP/1.1 server exposing the paper's end
//! product — "static features in, minimum-energy core count out" — built
//! on a readiness-driven event loop with explicit admission control:
//!
//! ```text
//!              ┌── readiness event loop (one thread) ──┐
//! epoll/poll ──▶ accept ─▶ per-conn state machine ─────▶ bounded job queue
//!              │  reading → dispatched → writing → idle │       │
//!              │  (503 + Retry-After when the active    │       ▼
//!              │   set is full; timer-wheel deadlines)  │  N worker threads
//!              └────────◀── completions + waker ◀───────┘  (tree predictor)
//! ```
//!
//! The event loop (the thread that calls [`Server::run`]) owns every
//! socket: it accepts, reads and incrementally parses requests, flushes
//! responses, and arms read/write deadlines on a hashed timer wheel
//! ([`crate::net`] supplies the epoll shim, parser and wheel). Workers
//! never touch a socket — they pull parsed requests off the bounded queue,
//! run the predictor, render the response bytes and hand them back through
//! a completion list plus an eventfd waker. Admission is a bounded
//! *active* set of `workers + queue_depth` connections (accept → response
//! flushed); beyond it connections shed with `503` + `Retry-After`.
//! Established keep-alive connections parked between requests hold no
//! slot, no thread and no timer, which is what lets one loop hold 10k+
//! open connections.
//!
//! Endpoints:
//!
//! * `POST /predict` — body `{"kernel": "gemm", "dtype": "f32", "size":
//!   2048}` (a known kernel, features computed server-side) or
//!   `{"features": [/* full 20-dim static vector */]}`; replies with the
//!   predicted core count, the 0-based class, and — when the sample was in
//!   the training sweep — the expected energy at that core count.
//! * `POST /predict/batch` — body `{"requests": [<any /predict body>, …]}`;
//!   replies `{"count": N, "results": [<one /predict reply each>]}` via
//!   [`EnergyPredictor::predict_cores_batch`], bit-identical to N
//!   sequential `/predict` calls. Both prediction endpoints walk the
//!   quantized flat compilation of the model by default
//!   ([`PredictorBackend::Flat`]); `--predictor float` selects the boxed
//!   reference tree for baseline comparisons.
//! * `POST /admin/shutdown` — begins a graceful drain: in-flight and queued
//!   requests complete, new connections are refused, [`Server::run`]
//!   returns after joining every worker. SIGTERM/ctrl-c do the same when
//!   [`install_signal_shutdown`] is wired up (as `pulp_cli serve` does).
//! * `GET /metrics` — Prometheus text exposition from a
//!   [`MetricsRegistry`]: request counts by endpoint/status, request and
//!   per-stage latency histograms, queue-depth and in-flight gauges,
//!   shed/timeout/keep-alive-reuse counters, sweep-cache counters, model
//!   metadata and the startup-training stage histograms bridged from the
//!   pipeline `Recorder`.
//! * `GET /healthz` — `200 ok` once the model is trained (the server only
//!   starts accepting after training, so this is always `ok` when
//!   reachable).
//! * `GET /debug/requests?n=K` — the last K completed request traces from
//!   the flight recorder as Chrome trace-event JSON (one thread lane per
//!   request; loadable in Perfetto and accepted by
//!   [`pulp_obs::validate_chrome_trace`]).
//! * `GET /debug/slow?n=K` — the K worst requests by total latency since
//!   start as a compact JSON span breakdown, slowest first.
//!
//! Every admitted connection is stamped with a [`TraceContext`] at accept;
//! each request records read/queue-wait/features/predict/serialize/write
//! child spans under one `request` root, feeds the completed tree
//! into a bounded [`FlightRecorder`], and — when it exceeds
//! [`ServeOptions::slow_ms`] — emits a structured slow-request log line
//! through the state's [`Logger`] (JSON when `--log-json` is set).
//! Request latency is additionally folded into sliding-window series
//! (`pulp_serve_request_seconds_window`, `pulp_serve_queue_depth_window`)
//! rendered next to the cumulative histograms on `/metrics`.
//!
//! Connections are HTTP/1.1 keep-alive by default, capped at
//! [`ServeOptions::keepalive_max_requests`] requests each, with
//! [`ServeOptions::timeout_ms`] read/write deadlines on the timer wheel so
//! a slowloris peer costs one admission slot for one timeout, never a
//! thread and never forever. Bodies above [`ServeOptions::max_body_bytes`]
//! are refused with `413` *before* any allocation, and malformed request
//! lines get a `400` instead of a silently dropped connection.
//!
//! Everything rides on `std::net` plus a ~150-line raw `epoll` syscall
//! shim — no async runtime, no HTTP crate, no libc crate — mirroring how
//! the rest of the workspace treats dependencies.

use crate::net::{raw_fd, Event, HttpParser, Interest, Parsed, Poller, TimerWheel, Waker};
pub use crate::net::{Request, RequestError};
use pulp_energy::manifest::RunManifest;
use pulp_energy::pipeline::{LabeledDataset, PipelineOptions};
use pulp_energy::{
    static_feature_vector, EnergyPredictor, PredictorError, PredictorMetadata, StaticFeatureSet,
};
use pulp_ml::TreeParams;
use pulp_obs::recorder::{Recorder, SpanId};
use pulp_obs::{
    validate_exposition, FlightRecorder, LogFormat, Logger, MetricsRegistry, RequestTrace,
    TraceContext, TraceIdGen, WindowConfig,
};
use serde::Value;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read as _, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Histogram bucket layout for request latencies: 100ns .. 10s.
fn latency_buckets() -> Vec<f64> {
    pulp_obs::metrics::log_buckets(1e-7, 10.0, 4)
}

/// Capacity knobs of one server instance (`pulp_cli serve` flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Worker threads pulling connections off the queue (`--workers`).
    pub workers: usize,
    /// Bounded connection-queue depth; a full queue sheds with 503 +
    /// `Retry-After` (`--queue-depth`).
    pub queue_depth: usize,
    /// Per-connection read/write deadline in milliseconds
    /// (`--timeout-ms`). A stalled peer costs a worker at most one
    /// timeout, never a hung thread.
    pub timeout_ms: u64,
    /// Maximum accepted request-body size (`--max-body-bytes`); larger
    /// `Content-Length` values are refused with 413 before allocating.
    pub max_body_bytes: usize,
    /// Requests served per keep-alive connection before the server closes
    /// it (`--keepalive-max`), bounding per-connection state lifetime.
    pub keepalive_max_requests: usize,
    /// Requests slower than this (end-to-end, in milliseconds) emit a
    /// structured slow-request log line with the full span breakdown
    /// (`--slow-ms`).
    pub slow_ms: u64,
    /// Completed request traces retained by the flight recorder
    /// (`--flight-capacity`). Applied by `pulp_cli serve` via
    /// [`ServeState::with_flight_capacity`]; states built directly default
    /// to the same value.
    pub flight_capacity: usize,
    /// `Retry-After` value (seconds) announced on 503 shed responses
    /// (`--retry-after-secs`).
    pub retry_after_secs: u64,
}

/// Default flight-recorder retention (traces).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// Which compiled form of the model the prediction handlers walk
/// (`pulp_cli bench serve --predictor`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictorBackend {
    /// The quantized flat node arrays — the serving hot path.
    #[default]
    Flat,
    /// The boxed float reference tree — the baseline the load benchmark
    /// gates the flat path against.
    Float,
}

impl PredictorBackend {
    /// Stable lowercase name (bench records, CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            Self::Flat => "flat",
            Self::Float => "float",
        }
    }

    /// Parses a CLI flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "flat" => Some(Self::Flat),
            "float" => Some(Self::Float),
            _ => None,
        }
    }
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            timeout_ms: 5_000,
            max_body_bytes: 1 << 20,
            keepalive_max_requests: 1_000,
            slow_ms: 500,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            retry_after_secs: 1,
        }
    }
}

/// Shared state of one running prediction service.
pub struct ServeState {
    predictor: EnergyPredictor,
    metadata: PredictorMetadata,
    /// Training samples by `(kernel, dtype, payload_bytes)` — used to
    /// answer "expected energy at the predicted core count" for kernels
    /// the sweep has measured.
    samples: Vec<(String, String, usize, Vec<f64>)>,
    metrics: Mutex<MetricsRegistry>,
    manifest: RunManifest,
    inflight: AtomicI64,
    /// Structured logger for operational lines (slow requests); stderr/Text
    /// by default, swapped via [`ServeState::with_logger`].
    logger: Logger,
    /// Ring of recently completed request traces (`/debug/requests`,
    /// `/debug/slow`).
    flight: FlightRecorder,
    /// Trace-id source stamping admitted connections.
    trace_ids: TraceIdGen,
    /// Service start time — anchors the `now_s` clock of the sliding-window
    /// metrics.
    started: Instant,
    /// Model form the prediction handlers walk (flat by default).
    backend: PredictorBackend,
}

impl ServeState {
    /// Trains the service model on `opts` (startup cost: the full dataset
    /// sweep unless cached) and prepares the metrics registry, seeding it
    /// with pipeline-stage histograms from the instrumented build, model
    /// metadata and sweep-cache counters.
    ///
    /// # Panics
    ///
    /// Panics when the dataset cannot be built or the model cannot be
    /// trained — the service is useless without either.
    pub fn train(opts: &PipelineOptions) -> Self {
        let mut metrics = MetricsRegistry::new();
        let data = LabeledDataset::build_with_metrics(opts, &mut metrics)
            .expect("serve: dataset build failed");
        let predictor = EnergyPredictor::train(&data, StaticFeatureSet::All, TreeParams::default())
            .expect("serve: model training failed");
        Self::from_parts(predictor, &data, metrics, opts)
    }

    /// Assembles the state from pre-built parts (the integration test
    /// trains offline and reuses the dataset).
    pub fn from_parts(
        predictor: EnergyPredictor,
        data: &LabeledDataset,
        mut metrics: MetricsRegistry,
        opts: &PipelineOptions,
    ) -> Self {
        let metadata = predictor.metadata();
        metrics.gauge_set(
            "pulp_model_info",
            "Model metadata (value is always 1; labels carry the info).",
            &[
                ("feature_set", metadata.feature_set.as_str()),
                ("n_features", &metadata.n_features.to_string()),
                ("n_classes", &metadata.n_classes.to_string()),
                ("tree_depth", &metadata.tree_depth.to_string()),
                ("tree_nodes", &metadata.tree_nodes.to_string()),
            ],
            1.0,
        );
        if let Some(cache) = &opts.cache {
            let stats = cache.stats();
            for (kind, v) in [
                ("hits", stats.hits),
                ("misses", stats.misses),
                ("invalidations", stats.invalidations),
            ] {
                metrics.gauge_set(
                    "pulp_sweep_cache_lookups",
                    "Sweep-cache lookup outcomes during startup training.",
                    &[("kind", kind)],
                    v as f64,
                );
            }
        }
        let mut manifest = RunManifest::new("pulp_cli serve", &opts.config, &opts.model)
            .with_extra("feature_set", &metadata.feature_set)
            .with_extra("samples", data.len());
        if let Some(cache) = &opts.cache {
            manifest = manifest.with_cache_stats(cache.stats());
        }
        let samples = data
            .samples
            .iter()
            .map(|s| {
                (
                    s.kernel.clone(),
                    s.dtype.to_string(),
                    s.payload_bytes,
                    s.energy.clone(),
                )
            })
            .collect();
        Self {
            predictor,
            metadata,
            samples,
            metrics: Mutex::new(metrics),
            manifest,
            inflight: AtomicI64::new(0),
            logger: Logger::new(LogFormat::Text),
            flight: FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY),
            trace_ids: TraceIdGen::default(),
            started: Instant::now(),
            backend: PredictorBackend::default(),
        }
    }

    /// Selects the model form the prediction handlers walk (flat by
    /// default). Builder-style: call before wrapping the state in an
    /// `Arc`.
    #[must_use]
    pub fn with_backend(mut self, backend: PredictorBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The model form this service's prediction handlers walk.
    pub fn backend(&self) -> PredictorBackend {
        self.backend
    }

    /// Runs one batch of full static feature vectors through the selected
    /// backend — the single chokepoint both prediction handlers use.
    fn predict_rows(&self, rows: &[Vec<f64>]) -> Result<Vec<usize>, PredictorError> {
        match self.backend {
            PredictorBackend::Flat => self.predictor.predict_cores_batch(rows),
            PredictorBackend::Float => self.predictor.predict_cores_batch_float(rows),
        }
    }

    /// Replaces the logger (e.g. `Logger::new(LogFormat::Json)` for
    /// `--log-json`, or a sink logger in tests). Builder-style: call before
    /// wrapping the state in an `Arc`.
    #[must_use]
    pub fn with_logger(mut self, logger: Logger) -> Self {
        self.logger = logger;
        self
    }

    /// Replaces the flight recorder with one retaining `capacity` traces.
    #[must_use]
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight = FlightRecorder::new(capacity);
        self
    }

    /// The run manifest describing this service instance.
    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }

    /// The flight recorder holding recently completed request traces.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// This service's structured logger.
    pub fn logger(&self) -> &Logger {
        &self.logger
    }

    /// Snapshot of the logger's in-memory sink (`None` for stderr loggers);
    /// lets tests read slow-request lines through the shared state.
    pub fn log_lines(&self) -> Option<Vec<String>> {
        self.logger.sink_lines()
    }

    /// Seconds since service start — the clock feeding the sliding-window
    /// metrics.
    pub fn now_s(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// A sliding-window quantile (`pulp_serve_*_window` series), if the
    /// series exists and its window holds observations.
    pub fn windowed_quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        self.metrics.lock().ok()?.windowed_quantile(name, labels, q)
    }

    /// A cumulative-histogram quantile at bucket resolution, if the series
    /// exists and is non-empty.
    pub fn histogram_quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        self.metrics
            .lock()
            .ok()?
            .histogram_quantile(name, labels, q)
    }

    /// Renders the current `/metrics` exposition.
    pub fn render_metrics(&self) -> String {
        self.metrics.lock().expect("metrics lock").render()
    }

    /// Reads one metric sample back out of the registry — the programmatic
    /// mirror of scraping `/metrics`, used by the load benchmark and the
    /// integration tests.
    pub fn metric_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.metrics
            .lock()
            .expect("metrics lock")
            .value(name, labels)
    }

    fn counter_add(&self, name: &str, help: &'static str, labels: &[(&str, &str)], delta: f64) {
        if let Ok(mut m) = self.metrics.lock() {
            m.counter_add(name, help, labels, delta);
        }
    }

    fn gauge_set(&self, name: &str, help: &'static str, labels: &[(&str, &str)], value: f64) {
        if let Ok(mut m) = self.metrics.lock() {
            m.gauge_set(name, help, labels, value);
        }
    }

    /// Adjusts the in-flight request count and mirrors it into the gauge.
    fn inflight_delta(&self, delta: i64) {
        let now = self.inflight.fetch_add(delta, Ordering::SeqCst) + delta;
        self.gauge_set(
            "pulp_serve_inflight_requests",
            "Requests currently being processed by a worker.",
            &[],
            now as f64,
        );
    }

    fn note_queue_depth(&self, depth: usize) {
        self.gauge_set(
            "pulp_serve_queue_depth",
            "Connections waiting in the bounded accept queue.",
            &[],
            depth as f64,
        );
        if let Ok(mut m) = self.metrics.lock() {
            m.windowed_gauge_set(
                "pulp_serve_queue_depth_window",
                "Peak accept-queue depth over the sliding window.",
                &[],
                depth as f64,
                self.started.elapsed().as_secs(),
            );
        }
    }

    fn note_shed(&self) {
        self.counter_add(
            "pulp_serve_shed_total",
            "Connections refused with 503 because the queue was full.",
            &[],
            1.0,
        );
    }

    fn note_timeout(&self, kind: &str) {
        self.counter_add(
            "pulp_serve_timeouts_total",
            "Connections dropped on a read/write deadline.",
            &[("kind", kind)],
            1.0,
        );
    }

    fn note_keepalive_reuse(&self) {
        self.counter_add(
            "pulp_serve_keepalive_reuse_total",
            "Requests served on an already-used keep-alive connection.",
            &[],
            1.0,
        );
    }

    fn note_open_connections(&self, n: usize) {
        self.gauge_set(
            "pulp_serve_open_connections",
            "Connections currently open on the event loop, every state \
             included (idle keep-alive connections hold no worker).",
            &[],
            n as f64,
        );
    }

    fn note_accept_saturation(&self) {
        self.counter_add(
            "pulp_serve_accept_saturation_total",
            "Accept bursts that filled the whole batch without draining the \
             listen backlog — the accept loop itself is the bottleneck.",
            &[],
            1.0,
        );
    }
}

/// A generic bounded MPMC queue: non-blocking producer (`try_push` fails
/// when full — the caller sheds), blocking consumers, and a `close` that
/// lets consumers drain the backlog before retiring.
struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<(VecDeque<T>, bool)>,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new((VecDeque::new(), false)),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues without blocking; a full or closed queue hands the item
    /// back so the caller can shed it explicitly. Returns the new depth.
    fn try_push(&self, item: T) -> Result<usize, T> {
        let mut g = self.inner.lock().expect("queue lock");
        if g.1 || g.0.len() >= self.capacity {
            return Err(item);
        }
        g.0.push_back(item);
        let depth = g.0.len();
        drop(g);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available; `None` once the queue is closed
    /// *and* drained.
    fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = g.0.pop_front() {
                return Some(item);
            }
            if g.1 {
                return None;
            }
            g = self.not_empty.wait(g).expect("queue wait");
        }
    }

    /// Stops accepting new items; consumers drain what is queued, then see
    /// `None`.
    fn close(&self) {
        self.inner.lock().expect("queue lock").1 = true;
        self.not_empty.notify_all();
    }

    fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").0.len()
    }
}

/// A clonable remote control for one server's graceful shutdown.
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    /// Wakes the event loop out of a blocked readiness wait so the flag is
    /// observed immediately (workers also use it to hand completions back).
    waker: Waker,
}

impl ShutdownHandle {
    /// `true` once a drain has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain: sets the flag and wakes the event loop.
    pub fn trigger(&self) {
        self.flag.store(true, Ordering::SeqCst);
        self.waker.wake();
    }
}

/// A running server: the bound socket plus its readiness event loop and
/// worker pool, ready to [`run`](Server::run).
pub struct Server {
    /// The actual bound address (useful with port 0).
    pub addr: SocketAddr,
    listener: TcpListener,
    state: Arc<ServeState>,
    opts: ServeOptions,
    shutdown: Arc<AtomicBool>,
    poller: Poller,
}

/// Where a connection currently is in its life cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Accumulating request bytes (an active slot is held).
    Reading,
    /// A parsed request is with the worker pool; socket interest is muted
    /// so a pipelining peer cannot spin the event loop.
    Dispatched,
    /// Flushing a response.
    Writing,
    /// Established keep-alive connection between requests. Holds no active
    /// slot and no deadline — parked idle connections are what the
    /// readiness tier scales to, far beyond the worker count.
    Idle,
}

/// Per-connection state machine driven by the event loop.
struct Conn {
    stream: TcpStream,
    phase: Phase,
    parser: HttpParser,
    /// Trace identity for the connection's next request (stamped at accept
    /// for the first; fresh ids on keep-alive reuse).
    trace: TraceContext,
    /// Requests dispatched on this connection so far.
    served: usize,
    /// First byte of the current request (accept time for fresh
    /// connections) — the dispatch turns this into the `read` span.
    request_started: Instant,
    /// Authoritative armed deadline; timer-wheel entries that no longer
    /// match are stale (lazy cancellation).
    deadline_ms: Option<u64>,
    /// `true` once at least one response has been fully written.
    established: bool,
    /// This connection holds one of the bounded active slots.
    holds_slot: bool,
    /// Response bytes in flight and the write cursor.
    out: Vec<u8>,
    out_pos: usize,
    keep_after_write: bool,
    /// For routed responses: the tracer (write span open), endpoint label
    /// and status to finalize once the response is fully flushed.
    write_meta: Option<(RequestTracer, SpanId, &'static str, u16)>,
}

/// One parsed request on its way to a worker.
struct Job {
    token: u64,
    req: Request,
    trace: TraceContext,
    /// Wire time: first byte to parse completion, in µs (the `read` span).
    read_us: u64,
    /// Queued-at instant; pickup time minus this is the queue wait.
    enqueued: Instant,
    /// 1-based request ordinal on its connection.
    index: usize,
}

/// A finished request on its way back from a worker to the event loop.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    keep: bool,
    status: u16,
    endpoint: &'static str,
    tracer: RequestTracer,
}

/// Everything a worker thread needs.
struct ServerCtx {
    state: Arc<ServeState>,
    opts: ServeOptions,
    queue: Arc<BoundedQueue<Job>>,
    completions: Mutex<Vec<Completion>>,
    shutdown: ShutdownHandle,
}

/// Event-loop token of the listening socket.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Connections accepted per listener readiness before yielding back to the
/// loop; exhausting the batch bumps the accept-saturation counter.
const ACCEPT_BATCH: usize = 64;
/// Bytes read per connection per readiness event before yielding
/// (level-triggered polling re-reports whatever is left).
const READ_BURST_BYTES: usize = 256 * 1024;
/// Timer-wheel precision for read/write deadlines.
const TIMER_GRANULARITY_MS: u64 = 10;
/// Timer-wheel slot count (one rotation covers ~2.5s; longer deadlines
/// wrap and re-home, which the wheel handles).
const TIMER_SLOTS: usize = 256;

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) with
    /// default capacity knobs, without accepting yet.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, state: Arc<ServeState>) -> std::io::Result<Self> {
        Self::bind_with(addr, state, ServeOptions::default())
    }

    /// Binds with explicit capacity knobs.
    ///
    /// # Errors
    ///
    /// Propagates bind failures and readiness-backend setup failures.
    pub fn bind_with(
        addr: &str,
        state: Arc<ServeState>,
        opts: ServeOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let poller = Poller::new()?;
        Ok(Self {
            addr,
            listener,
            state,
            opts,
            shutdown: Arc::new(AtomicBool::new(false)),
            poller,
        })
    }

    /// A handle that triggers this server's graceful drain from another
    /// thread (or a signal-watcher).
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            waker: self.poller.waker(),
        }
    }

    /// Serves until a graceful shutdown is requested (`POST
    /// /admin/shutdown`, [`ShutdownHandle::trigger`], or a signal wired
    /// via [`install_signal_shutdown`]).
    ///
    /// The calling thread becomes the event loop: it accepts, reads,
    /// parses, writes and tracks deadlines for every connection, while the
    /// fixed worker pool executes the actual prediction work. Admission is
    /// a bounded *active* set — connections from accept (or from the first
    /// byte of a keep-alive reuse) until their response is flushed — of
    /// `workers + queue_depth`; beyond it, connections shed with 503 +
    /// `Retry-After`. Established idle keep-alive connections are parked
    /// outside the active set at no per-connection thread cost, which is
    /// where the 10k+ concurrency headroom comes from. On drain, parked
    /// idle and silent fresh connections close immediately, in-flight
    /// requests (including partially read ones) complete, then workers are
    /// joined.
    pub fn run(self) {
        let shutdown = self.shutdown_handle();
        let Server {
            addr: _,
            listener,
            state,
            opts,
            shutdown: _,
            mut poller,
        } = self;
        for (knob, v) in [
            ("workers", opts.workers.max(1)),
            ("queue_depth", opts.queue_depth.max(1)),
            ("timeout_ms", opts.timeout_ms as usize),
            ("max_body_bytes", opts.max_body_bytes),
            ("keepalive_max_requests", opts.keepalive_max_requests),
            ("slow_ms", opts.slow_ms as usize),
            ("flight_capacity", state.flight.capacity()),
            ("retry_after_secs", opts.retry_after_secs as usize),
        ] {
            state.gauge_set(
                "pulp_serve_capacity",
                "Configured capacity knobs of this server instance.",
                &[("knob", knob)],
                v as f64,
            );
        }
        state.note_queue_depth(0);
        state.note_open_connections(0);
        // Sized so that admission control alone bounds it: every active
        // connection contributes at most one queued job.
        let slot_capacity = opts.workers.max(1) + opts.queue_depth.max(1);
        let queue = Arc::new(BoundedQueue::new(slot_capacity));
        let ctx = Arc::new(ServerCtx {
            state: Arc::clone(&state),
            opts,
            queue: Arc::clone(&queue),
            completions: Mutex::new(Vec::new()),
            shutdown: shutdown.clone(),
        });
        let workers: Vec<_> = (0..opts.workers.max(1))
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&ctx))
                    .expect("spawn worker thread")
            })
            .collect();
        let _ = listener.set_nonblocking(true);
        if let Err(e) = poller.add(raw_fd(&listener), LISTENER_TOKEN, Interest::Read) {
            state.logger.warn(
                "serve",
                "failed to register listener with the poller",
                &[("error", e.to_string())],
            );
        }
        EventLoop {
            state,
            ctx,
            opts,
            poller,
            listener: Some(listener),
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            open: 0,
            active_slots: 0,
            slot_capacity,
            timers: TimerWheel::new(TIMER_GRANULARITY_MS, TIMER_SLOTS),
            started: Instant::now(),
            draining: false,
            last_shed_log_s: None,
        }
        .run(&shutdown);
        // Every connection is gone; release the workers and join them.
        queue.close();
        for w in workers {
            let _ = w.join();
        }
    }
}

/// The readiness event loop: single-threaded owner of every connection's
/// state machine, the timer wheel and the admission slots.
struct EventLoop {
    state: Arc<ServeState>,
    ctx: Arc<ServerCtx>,
    opts: ServeOptions,
    poller: Poller,
    /// Dropped at drain start so new connections are refused at the socket.
    listener: Option<TcpListener>,
    /// Connection slab; tokens embed `(generation << 32) | index` so stale
    /// timer entries and completions for a recycled index are ignored.
    conns: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    /// Open connections (slab occupancy), mirrored to the gauge.
    open: usize,
    /// Connections currently in the bounded active set.
    active_slots: usize,
    slot_capacity: usize,
    timers: TimerWheel,
    started: Instant,
    draining: bool,
    /// Second (of `now_s`) the last shed log line was emitted — rate-limits
    /// shed logging to one line per second under overload.
    last_shed_log_s: Option<u64>,
}

impl EventLoop {
    fn run(mut self, shutdown: &ShutdownHandle) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = if self.draining {
                Some(TIMER_GRANULARITY_MS)
            } else if self.timers.is_idle() {
                None // fully idle: block until accept/readiness/waker
            } else {
                Some(self.timers.granularity_ms())
            };
            if let Err(e) = self.poller.wait(&mut events, timeout) {
                self.state
                    .logger
                    .warn("serve", "poller wait failed", &[("error", e.to_string())]);
                std::thread::sleep(Duration::from_millis(TIMER_GRANULARITY_MS));
            }
            if shutdown.is_shutdown() && !self.draining {
                self.begin_drain();
            }
            for ev in events.iter().copied() {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                } else {
                    self.conn_event(ev);
                }
            }
            self.drain_completions();
            let now = self.now_ms();
            self.fire_timers(now);
            if self.draining && self.open == 0 {
                return;
            }
        }
    }

    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn token_of(&self, idx: usize) -> u64 {
        (u64::from(self.gens[idx]) << 32) | idx as u64
    }

    /// Resolves a token to a live slab index, refusing stale generations.
    fn conn_at(&self, token: u64) -> Option<usize> {
        let idx = (token & u32::MAX as u64) as usize;
        let gen = (token >> 32) as u32;
        if idx < self.conns.len() && self.gens[idx] == gen && self.conns[idx].is_some() {
            Some(idx)
        } else {
            None
        }
    }

    fn try_acquire_slot(&mut self) -> bool {
        if self.active_slots < self.slot_capacity {
            self.active_slots += 1;
            true
        } else {
            false
        }
    }

    fn release_slot(&mut self, idx: usize) {
        let conn = self.conns[idx].as_mut().expect("live conn");
        if conn.holds_slot {
            conn.holds_slot = false;
            self.active_slots -= 1;
        }
    }

    fn arm_deadline(&mut self, idx: usize, at_ms: u64) {
        let token = self.token_of(idx);
        let conn = self.conns[idx].as_mut().expect("live conn");
        conn.deadline_ms = Some(at_ms);
        self.timers.schedule(at_ms, token);
    }

    fn clear_deadline(&mut self, idx: usize) {
        self.conns[idx].as_mut().expect("live conn").deadline_ms = None;
    }

    /// Accepts a burst of pending connections; admission happens here.
    fn accept_ready(&mut self) {
        let mut accepted = 0usize;
        while accepted < ACCEPT_BATCH {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    accepted += 1;
                    if self.draining {
                        drop(stream);
                        continue;
                    }
                    if !self.try_acquire_slot() {
                        self.shed_fresh(stream);
                        continue;
                    }
                    self.admit(stream);
                }
                Err(ref e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(ref e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
        // The whole batch filled without hitting WouldBlock: connections
        // are arriving faster than one readiness round drains them.
        self.state.note_accept_saturation();
    }

    /// Registers an admitted connection (slot already acquired): fresh
    /// connections enter `Reading` with the read deadline armed at accept,
    /// exactly like the blocking tier's `SO_RCVTIMEO` from accept.
    fn admit(&mut self, stream: TcpStream) {
        let _ = stream.set_nonblocking(true);
        let _ = stream.set_nodelay(true);
        let conn = Conn {
            stream,
            phase: Phase::Reading,
            parser: HttpParser::new(),
            trace: TraceContext::root(self.state.trace_ids.next_id()),
            served: 0,
            request_started: Instant::now(),
            deadline_ms: None,
            established: false,
            holds_slot: true,
            out: Vec::new(),
            out_pos: 0,
            keep_after_write: false,
            write_meta: None,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.conns[idx] = Some(conn);
                idx
            }
            None => {
                self.conns.push(Some(conn));
                self.gens.push(0);
                self.conns.len() - 1
            }
        };
        self.open += 1;
        self.state.note_open_connections(self.open);
        let token = self.token_of(idx);
        let fd = raw_fd(&self.conns[idx].as_ref().expect("live conn").stream);
        if self.poller.add(fd, token, Interest::Read).is_err() {
            self.close_conn(idx);
            return;
        }
        let deadline = self.now_ms() + self.opts.timeout_ms.max(1);
        self.arm_deadline(idx, deadline);
    }

    /// Sheds a just-accepted connection (no slot available): 503 +
    /// `Retry-After`, written blocking with a bounded timeout — the socket
    /// is fresh, so this is one buffer copy in practice.
    fn shed_fresh(&mut self, mut stream: TcpStream) {
        self.note_shed_with_log();
        let _ = stream.set_write_timeout(Some(Duration::from_millis(self.opts.timeout_ms.max(1))));
        let bytes = render_response(
            503,
            "server overloaded, retry later\n",
            "text/plain; charset=utf-8",
            false,
            &[("Retry-After", &self.opts.retry_after_secs.to_string())],
        );
        let _ = stream.write_all(&bytes);
    }

    /// Counts a shed and emits the post-hoc analysis log line, rate-limited
    /// to one per second so overload cannot flood the log.
    fn note_shed_with_log(&mut self) {
        self.state.note_shed();
        let now_s = self.state.now_s();
        if self.last_shed_log_s == Some(now_s) {
            return;
        }
        self.last_shed_log_s = Some(now_s);
        self.state.logger.warn(
            "serve",
            "connection shed",
            &[
                ("queue_depth", self.ctx.queue.depth().to_string()),
                ("active_connections", self.active_slots.to_string()),
                ("open_connections", self.open.to_string()),
                ("retry_after_secs", self.opts.retry_after_secs.to_string()),
            ],
        );
    }

    /// Routes one readiness event to the owning connection's state.
    fn conn_event(&mut self, ev: Event) {
        let Some(idx) = self.conn_at(ev.token) else {
            return;
        };
        match self.conns[idx].as_ref().expect("live conn").phase {
            Phase::Reading | Phase::Idle => {
                if ev.readable || ev.hangup {
                    self.do_read(idx);
                }
            }
            Phase::Writing => {
                if ev.writable || ev.hangup {
                    self.do_write(idx);
                }
            }
            // Interest is muted while dispatched; a stray event (e.g. a
            // hangup race) is picked up after the response is written.
            Phase::Dispatched => {}
        }
    }

    /// Reads until `WouldBlock` (bounded per event), feeding the parser.
    /// The first byte on an idle connection re-enters admission control.
    fn do_read(&mut self, idx: usize) {
        let mut buf = [0u8; 16 * 1024];
        let mut total = 0usize;
        loop {
            let conn = self.conns[idx].as_mut().expect("live conn");
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.parser.feed_eof();
                    if conn.phase == Phase::Idle && !conn.parser.has_partial() {
                        // Clean keep-alive close between requests.
                        self.close_conn(idx);
                        return;
                    }
                    break;
                }
                Ok(n) => {
                    if conn.phase == Phase::Idle && !self.reactivate(idx) {
                        return; // overloaded: a 503 is on its way out
                    }
                    let conn = self.conns[idx].as_mut().expect("live conn");
                    conn.parser.feed(&buf[..n]);
                    total += n;
                    if total >= READ_BURST_BYTES {
                        break; // level-triggered: the rest re-reports
                    }
                }
                Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Transport error mid-read: same as the blocking tier's
                    // `RequestError::Io` — drop without a response.
                    self.close_conn(idx);
                    return;
                }
            }
        }
        if self.conns[idx].as_ref().expect("live conn").phase == Phase::Reading {
            self.pump_parser(idx);
        }
    }

    /// First byte of a keep-alive reuse: rejoin the active set, or shed
    /// with the same 503 contract as a fresh connection when full.
    /// Returns `false` when the connection left the `Idle` phase without
    /// becoming `Reading` (i.e. it is shedding).
    fn reactivate(&mut self, idx: usize) -> bool {
        if !self.try_acquire_slot() {
            self.note_shed_with_log();
            self.respond_and_close(
                idx,
                503,
                "server overloaded, retry later\n".to_string(),
                &[("Retry-After", &self.opts.retry_after_secs.to_string())],
            );
            return false;
        }
        let deadline = self.now_ms() + self.opts.timeout_ms.max(1);
        let conn = self.conns[idx].as_mut().expect("live conn");
        conn.holds_slot = true;
        conn.phase = Phase::Reading;
        conn.request_started = Instant::now();
        conn.trace = TraceContext::root(self.state.trace_ids.next_id());
        self.arm_deadline(idx, deadline);
        true
    }

    /// Tries to complete one request out of the parse buffer.
    fn pump_parser(&mut self, idx: usize) {
        let conn = self.conns[idx].as_mut().expect("live conn");
        match conn.parser.take(self.opts.max_body_bytes) {
            Parsed::NeedMore => {}
            Parsed::Request(req) => self.dispatch(idx, req),
            Parsed::Failed(RequestError::Eof) | Parsed::Failed(RequestError::Io) => {
                self.close_conn(idx);
            }
            Parsed::Failed(RequestError::TimedOut) => {
                // The incremental parser never produces this (deadlines
                // live on the timer wheel), but map it like the old tier.
                self.state.note_timeout("read");
                self.respond_and_close(idx, 408, "request deadline exceeded\n".to_string(), &[]);
            }
            Parsed::Failed(RequestError::TooLarge { length, limit }) => {
                self.respond_and_close(
                    idx,
                    413,
                    format!("body of {length} bytes exceeds the {limit}-byte limit\n"),
                    &[],
                );
            }
            Parsed::Failed(RequestError::Malformed(why)) => {
                self.respond_and_close(idx, 400, format!("malformed request: {why}\n"), &[]);
            }
        }
    }

    /// Hands a parsed request to the worker pool and mutes the socket.
    fn dispatch(&mut self, idx: usize, req: Request) {
        self.clear_deadline(idx);
        let token = self.token_of(idx);
        let conn = self.conns[idx].as_mut().expect("live conn");
        conn.phase = Phase::Dispatched;
        conn.served += 1;
        let job = Job {
            token,
            req,
            trace: conn.trace,
            read_us: conn.request_started.elapsed().as_micros() as u64,
            enqueued: Instant::now(),
            index: conn.served,
        };
        let fd = raw_fd(&conn.stream);
        let _ = self.poller.modify(fd, token, Interest::None);
        match self.ctx.queue.try_push(job) {
            Ok(depth) => self.state.note_queue_depth(depth),
            Err(_) => {
                // Unreachable by construction (active slots bound queued
                // jobs), but degrade like any other overload if it happens.
                self.note_shed_with_log();
                self.respond_and_close(
                    idx,
                    503,
                    "server overloaded, retry later\n".to_string(),
                    &[("Retry-After", &self.opts.retry_after_secs.to_string())],
                );
            }
        }
    }

    /// Starts flushing a transport-level error response (400/408/413/503)
    /// and closes once it is out. These bypass the flight recorder and the
    /// request counters, matching the blocking tier.
    fn respond_and_close(&mut self, idx: usize, status: u16, body: String, extra: &[(&str, &str)]) {
        let bytes = render_response(status, &body, "text/plain; charset=utf-8", false, extra);
        let token = self.token_of(idx);
        let conn = self.conns[idx].as_mut().expect("live conn");
        conn.out = bytes;
        conn.out_pos = 0;
        conn.keep_after_write = false;
        conn.write_meta = None;
        conn.phase = Phase::Writing;
        let fd = raw_fd(&conn.stream);
        let _ = self.poller.modify(fd, token, Interest::None);
        let deadline = self.now_ms() + self.opts.timeout_ms.max(1);
        self.arm_deadline(idx, deadline);
        self.do_write(idx);
    }

    /// Collects worker completions and starts their response writes.
    fn drain_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut guard = self.ctx.completions.lock().expect("completions lock");
            std::mem::take(&mut *guard)
        };
        for completion in done {
            let Some(idx) = self.conn_at(completion.token) else {
                // The connection died while its request executed (only
                // possible on registration failure); keep the books
                // consistent by recording the trace anyway.
                let Completion {
                    tracer,
                    endpoint,
                    status,
                    ..
                } = completion;
                finish_request(&self.state, self.opts.slow_ms, tracer, endpoint, status);
                continue;
            };
            self.begin_write(idx, completion);
        }
    }

    /// Starts flushing a routed response; the write span stays open until
    /// the last byte is out.
    fn begin_write(&mut self, idx: usize, completion: Completion) {
        let Completion {
            bytes,
            keep,
            status,
            endpoint,
            mut tracer,
            ..
        } = completion;
        let span = tracer.begin("write");
        let conn = self.conns[idx].as_mut().expect("live conn");
        conn.out = bytes;
        conn.out_pos = 0;
        conn.keep_after_write = keep;
        conn.write_meta = Some((tracer, span, endpoint, status));
        conn.phase = Phase::Writing;
        let deadline = self.now_ms() + self.opts.timeout_ms.max(1);
        self.arm_deadline(idx, deadline);
        self.do_write(idx);
    }

    /// Writes until done or `WouldBlock`; only a stalled write registers
    /// write interest (the optimistic first flush usually completes).
    fn do_write(&mut self, idx: usize) {
        enum Next {
            Done,
            Stalled,
            Broken,
        }
        let next = loop {
            let conn = self.conns[idx].as_mut().expect("live conn");
            let pending = &conn.out[conn.out_pos..];
            if pending.is_empty() {
                break Next::Done;
            }
            match conn.stream.write(pending) {
                Ok(0) => break Next::Broken,
                Ok(n) => conn.out_pos += n,
                Err(ref e) if e.kind() == ErrorKind::WouldBlock => break Next::Stalled,
                Err(ref e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break Next::Broken,
            }
        };
        match next {
            Next::Done => self.finish_write(idx),
            Next::Stalled => {
                let token = self.token_of(idx);
                let fd = raw_fd(&self.conns[idx].as_ref().expect("live conn").stream);
                let _ = self.poller.modify(fd, token, Interest::Write);
            }
            Next::Broken => self.abort_write(idx, false),
        }
    }

    /// A response could not be fully written (error or deadline). The
    /// request itself already executed, so its trace is still recorded —
    /// matching the blocking tier, which recorded before checking the
    /// write result.
    fn abort_write(&mut self, idx: usize, timed_out: bool) {
        if timed_out {
            self.state.note_timeout("write");
        }
        let conn = self.conns[idx].as_mut().expect("live conn");
        if let Some((mut tracer, span, endpoint, status)) = conn.write_meta.take() {
            tracer.finish(span);
            finish_request(&self.state, self.opts.slow_ms, tracer, endpoint, status);
        }
        self.close_conn(idx);
    }

    /// The response is fully flushed: finalize the trace, release the
    /// active slot, and either park the connection idle or close it.
    fn finish_write(&mut self, idx: usize) {
        self.clear_deadline(idx);
        let conn = self.conns[idx].as_mut().expect("live conn");
        let meta = conn.write_meta.take();
        let keep = conn.keep_after_write;
        conn.out = Vec::new();
        conn.out_pos = 0;
        conn.established = true;
        if let Some((mut tracer, span, endpoint, status)) = meta {
            tracer.finish(span);
            finish_request(&self.state, self.opts.slow_ms, tracer, endpoint, status);
        }
        self.release_slot(idx);
        if !keep || self.draining {
            self.close_conn(idx);
            return;
        }
        let token = self.token_of(idx);
        let conn = self.conns[idx].as_mut().expect("live conn");
        conn.phase = Phase::Idle;
        let fd = raw_fd(&conn.stream);
        let _ = self.poller.modify(fd, token, Interest::Read);
        if self.conns[idx]
            .as_ref()
            .expect("live conn")
            .parser
            .has_partial()
            && self.reactivate(idx)
        {
            // Pipelined bytes arrived with the previous request; they may
            // already hold a complete next request.
            self.pump_parser(idx);
        }
    }

    /// Fires elapsed deadlines. Stale entries (re-armed or disarmed since
    /// scheduling) are ignored by matching the connection's authoritative
    /// deadline — lazy cancellation.
    fn fire_timers(&mut self, now_ms: u64) {
        let mut expired: Vec<(u64, u64)> = Vec::new();
        self.timers.advance(now_ms, &mut expired);
        for (token, deadline) in expired {
            let Some(idx) = self.conn_at(token) else {
                continue;
            };
            let conn = self.conns[idx].as_ref().expect("live conn");
            if conn.deadline_ms != Some(deadline) {
                continue;
            }
            match conn.phase {
                Phase::Reading => {
                    self.state.note_timeout("read");
                    self.respond_and_close(
                        idx,
                        408,
                        "request deadline exceeded\n".to_string(),
                        &[],
                    );
                }
                Phase::Writing => self.abort_write(idx, true),
                // No deadline runs while dispatched or parked idle.
                Phase::Dispatched | Phase::Idle => {}
            }
        }
    }

    /// Begins the graceful drain: refuse new connections at the socket,
    /// close parked idle and silent fresh connections, and let everything
    /// mid-request (reading, executing, writing) run to completion under
    /// its normal deadlines.
    fn begin_drain(&mut self) {
        self.draining = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.remove(raw_fd(&listener));
            drop(listener);
        }
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_ref() else {
                continue;
            };
            let droppable = match conn.phase {
                Phase::Idle => !conn.parser.has_partial(),
                // A fresh connection that never sent a byte has nothing in
                // flight to drain.
                Phase::Reading => !conn.parser.has_partial(),
                Phase::Dispatched | Phase::Writing => false,
            };
            if droppable {
                self.close_conn(idx);
            }
        }
    }

    /// Removes a connection: deregisters, recycles the slab slot (bumping
    /// the generation so stale tokens miss) and releases its active slot.
    fn close_conn(&mut self, idx: usize) {
        self.release_slot(idx);
        let conn = self.conns[idx].take().expect("live conn");
        let _ = self.poller.remove(raw_fd(&conn.stream));
        drop(conn);
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        self.open -= 1;
        self.state.note_open_connections(self.open);
    }
}

/// One worker: pull parsed requests off the queue, execute, render the
/// response bytes, and hand the completion back to the event loop. Workers
/// never touch sockets — prediction work is all they do.
fn worker_loop(ctx: &ServerCtx) {
    while let Some(job) = ctx.queue.pop() {
        ctx.state.note_queue_depth(ctx.queue.depth());
        let queue_wait_us = job.enqueued.elapsed().as_micros() as u64;
        let mut tracer = RequestTracer::with_read(job.trace, job.read_us, queue_wait_us);
        if job.index > 1 {
            ctx.state.note_keepalive_reuse();
        }
        ctx.state.inflight_delta(1);
        let handle_span = tracer.begin("handle");
        let (status, body, content_type) = if job.req.method == "POST"
            && job.req.path == "/admin/shutdown"
        {
            ctx.shutdown.trigger();
            (
                200,
                "draining: in-flight requests complete, new connections are refused\n".to_string(),
                "text/plain; charset=utf-8",
            )
        } else {
            route(&job.req, &ctx.state, &mut tracer)
        };
        let elapsed = tracer.finish(handle_span);
        record_request(&ctx.state, &job.req, status, elapsed);
        ctx.state.inflight_delta(-1);
        let keep = !ctx.shutdown.is_shutdown()
            && !job.req.close
            && job.index < ctx.opts.keepalive_max_requests.max(1);
        let bytes = render_response(status, &body, content_type, keep, &[]);
        let completion = Completion {
            token: job.token,
            bytes,
            keep,
            status,
            endpoint: endpoint_label(&job.req.path),
            tracer,
        };
        if let Ok(mut pending) = ctx.completions.lock() {
            pending.push(completion);
        }
        ctx.shutdown.waker.wake();
    }
}

/// Builds one request's span tree on a microsecond clock.
///
/// The tracer drives a manual-clock [`Recorder`]: ticks are µs since the
/// connection was accepted, so the `queue_wait` span (accept → worker
/// pickup, zero-length on keep-alive reuses) occupies `[0, offset)` and
/// every later span is stamped from a single `Instant` anchor. Freezing
/// ([`RequestTracer::into_trace`]) closes the root and yields the
/// [`RequestTrace`] fed to the flight recorder.
struct RequestTracer {
    rec: Recorder,
    /// Real-time anchor: the instant the worker picked the connection up.
    epoch: Instant,
    /// Ticks (µs) that elapsed before `epoch` — the queue wait.
    offset_us: u64,
    root: SpanId,
}

impl RequestTracer {
    /// A tracer with no wire history — queue wait only (unit tests).
    #[cfg(test)]
    fn new(trace: TraceContext, queue_wait_us: u64) -> Self {
        Self::with_read(trace, 0, queue_wait_us)
    }

    /// Builds a tracer whose pre-pickup history is already known: the wire
    /// time (`read` span, `[0, read_us)`) the event loop measured, then
    /// the queue wait (`[read_us, read_us + queue_wait_us)`). The worker
    /// calls this at pickup so every later span is stamped live.
    fn with_read(trace: TraceContext, read_us: u64, queue_wait_us: u64) -> Self {
        let mut rec = Recorder::manual().with_trace(trace);
        let root = rec.start("request");
        if read_us > 0 {
            let read = rec.start("read");
            rec.set_time(read_us);
            rec.end(read);
        }
        let wait = rec.start("queue_wait");
        rec.set_time(read_us + queue_wait_us);
        rec.end(wait);
        Self {
            rec,
            epoch: Instant::now(),
            offset_us: read_us + queue_wait_us,
            root,
        }
    }

    fn now_ticks(&self) -> u64 {
        self.offset_us + self.epoch.elapsed().as_micros() as u64
    }

    /// Opens a child span at the current wall time.
    fn begin(&mut self, name: &str) -> SpanId {
        let t = self.now_ticks();
        self.rec.set_time(t);
        self.rec.start(name)
    }

    /// Closes `span` at the current wall time, returning its duration in
    /// seconds (for bridging into the stage-latency histograms).
    fn finish(&mut self, span: SpanId) -> f64 {
        let t = self.now_ticks();
        self.rec.set_time(t);
        self.rec.end(span);
        self.rec
            .record_of(span)
            .map(|s| s.duration() as f64 / 1e6)
            .unwrap_or(0.0)
    }

    /// Closes everything and freezes the tree into a [`RequestTrace`].
    fn into_trace(mut self, label: &str, status: u16) -> RequestTrace {
        let t = self.now_ticks();
        self.rec.set_time(t);
        self.rec.end(self.root);
        self.rec.close_all();
        RequestTrace::from_recorder(label, status, &self.rec)
    }
}

/// Records one completed request into the flight recorder and, when it
/// blew the `slow_ms` budget, logs the full span breakdown.
fn finish_request(
    state: &ServeState,
    slow_ms: u64,
    tracer: RequestTracer,
    endpoint: &str,
    status: u16,
) {
    let trace = tracer.into_trace(endpoint, status);
    let total_us = trace.total_ticks();
    if total_us >= slow_ms.saturating_mul(1_000) {
        let breakdown = trace
            .spans
            .iter()
            .filter(|s| s.name != "request")
            .map(|s| format!("{}={}us", s.name, s.duration()))
            .collect::<Vec<_>>()
            .join(" ");
        state.logger.warn(
            "serve",
            "slow request",
            &[
                ("trace_id", trace.trace_id.to_string()),
                ("endpoint", endpoint.to_string()),
                ("status", status.to_string()),
                ("total_us", total_us.to_string()),
                ("spans", breakdown),
            ],
        );
    }
    state.flight.record(trace);
}

/// Renders one HTTP/1.1 response as wire bytes, announcing the
/// keep-alive decision. Workers render; the event loop flushes.
fn render_response(
    status: u16,
    body: &str,
    content_type: &str,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Splits a request target into `(path, query)` at the first `?`.
fn split_query(target: &str) -> (&str, Option<&str>) {
    match target.split_once('?') {
        Some((path, query)) => (path, Some(query)),
        None => (target, None),
    }
}

/// Reads a `k=v` integer out of a query string. An absent key yields
/// `default`; a present value must be a positive integer (anything else —
/// garbage, zero, negatives, empty — is an error the caller turns into a
/// 400 instead of silently replacing the value). In-range values are
/// clamped to `[1, max]` — `max` is the structure's actual retention, so
/// over-asking degrades to "everything retained" rather than erroring.
fn query_count(
    query: Option<&str>,
    key: &str,
    default: usize,
    max: usize,
) -> Result<usize, String> {
    let raw = query
        .into_iter()
        .flat_map(|q| q.split('&'))
        .find_map(|pair| pair.strip_prefix(key)?.strip_prefix('='));
    match raw {
        None => Ok(default.clamp(1, max.max(1))),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n.clamp(1, max.max(1))),
            _ => Err(format!(
                "query parameter `{key}` must be a positive integer, got `{v}`"
            )),
        },
    }
}

/// Collapses a request target into a bounded endpoint label: known paths
/// keep their name (query stripped), everything else becomes `other` so a
/// scanner cannot blow up metric cardinality or trace labels.
fn endpoint_label(target: &str) -> &'static str {
    match split_query(target).0 {
        "/predict" => "/predict",
        "/predict/batch" => "/predict/batch",
        "/metrics" => "/metrics",
        "/healthz" => "/healthz",
        "/manifest" => "/manifest",
        "/admin/shutdown" => "/admin/shutdown",
        "/debug/requests" => "/debug/requests",
        "/debug/slow" => "/debug/slow",
        _ => "other",
    }
}

/// Routes one request, returning `(status, body, content type)`.
/// (`POST /admin/shutdown` is intercepted by the worker loop, which owns
/// the shutdown handle; everything else lands here.)
fn route(
    req: &Request,
    state: &ServeState,
    tracer: &mut RequestTracer,
) -> (u16, String, &'static str) {
    let json_error = |msg: String| {
        serde_json::to_string(&Value::Map(vec![("error".to_string(), Value::Str(msg))]))
            .unwrap_or_default()
    };
    let (path, query) = split_query(&req.path);
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => (200, "ok\n".to_string(), "text/plain; charset=utf-8"),
        ("GET", "/metrics") => (
            200,
            state.render_metrics(),
            "text/plain; version=0.0.4; charset=utf-8",
        ),
        ("GET", "/manifest") => (200, state.manifest.to_json_pretty(), "application/json"),
        ("GET", "/debug/requests") => match query_count(query, "n", 32, state.flight.capacity()) {
            Ok(n) => (
                200,
                state.flight.chrome_recent(n, "pulp-serve"),
                "application/json",
            ),
            Err(msg) => (400, json_error(msg), "application/json"),
        },
        ("GET", "/debug/slow") => match query_count(query, "n", 16, state.flight.slow_capacity()) {
            Ok(n) => (200, state.flight.slow_json(n), "application/json"),
            Err(msg) => (400, json_error(msg), "application/json"),
        },
        ("POST", "/predict") => match predict(req, state, tracer) {
            Ok(body) => (200, body, "application/json"),
            Err(msg) => (400, json_error(msg), "application/json"),
        },
        ("POST", "/predict/batch") => match predict_batch(req, state, tracer) {
            Ok(body) => (200, body, "application/json"),
            Err(msg) => (400, json_error(msg), "application/json"),
        },
        ("GET", "/predict" | "/predict/batch" | "/admin/shutdown") => {
            (405, "use POST\n".to_string(), "text/plain; charset=utf-8")
        }
        _ => (404, "not found\n".to_string(), "text/plain; charset=utf-8"),
    }
}

/// One featurised prediction request: the full static vector plus, for
/// known kernels, the identity used to look up the measured energy.
struct Featurized {
    full: Vec<f64>,
    lookup: Option<(String, String, usize)>,
}

/// Turns one `/predict`-shaped body (already parsed) into the full static
/// feature vector — either taken verbatim from `features` or computed
/// server-side for a registered `kernel`.
fn featurize(body: &Value) -> Result<Featurized, String> {
    if let Ok(seq) = body.field("features").and_then(Value::as_seq) {
        let full: Vec<f64> = seq
            .iter()
            .map(|v| {
                v.as_f64()
                    .map_err(|_| "features must be an array of numbers".to_string())
            })
            .collect::<Result<_, _>>()?;
        return Ok(Featurized { full, lookup: None });
    }
    let name = body
        .field("kernel")
        .and_then(Value::as_str)
        .map_err(|_| "body needs `features` (array) or `kernel` (string)".to_string())?;
    let dtype_text = body.field("dtype").and_then(Value::as_str).unwrap_or("i32");
    let dtype = match dtype_text {
        "i32" => kernel_ir::DType::I32,
        "f32" => kernel_ir::DType::F32,
        other => return Err(format!("unknown dtype `{other}` (want i32 or f32)")),
    };
    let size = body.field("size").and_then(Value::as_u64).unwrap_or(2048) as usize;
    let def = pulp_kernels::registry()
        .into_iter()
        .find(|d| d.name == name)
        .ok_or_else(|| format!("unknown kernel `{name}`"))?;
    let kernel = def
        .build(&pulp_kernels::KernelParams::new(dtype, size))
        .map_err(|e| format!("kernel `{name}` rejects size {size}: {e}"))?;
    Ok(Featurized {
        full: static_feature_vector(&kernel),
        lookup: Some((name.to_string(), dtype.to_string(), size)),
    })
}

/// Builds one `/predict`-reply map for a finished prediction, folding the
/// expected-energy lookup into the energy-lookup counter.
fn reply_map(state: &ServeState, cores: usize, featurized: &Featurized) -> Value {
    // Expected energy at the predicted core count, when the training sweep
    // measured this exact sample.
    let expected = featurized.lookup.as_ref().and_then(|(name, dtype, size)| {
        state
            .samples
            .iter()
            .find(|(k, d, p, _)| k == name && d == dtype && *p == *size)
            .and_then(|(_, _, _, energy)| energy.get(cores - 1).copied())
    });
    let outcome = if expected.is_some() { "hit" } else { "miss" };
    state.counter_add(
        "pulp_predict_energy_lookups_total",
        "Expected-energy lookups against the training sweep.",
        &[("outcome", outcome)],
        1.0,
    );
    let mut reply = vec![
        ("cores".to_string(), Value::U64(cores as u64)),
        ("class".to_string(), Value::U64((cores - 1) as u64)),
        (
            "expected_energy_fj".to_string(),
            expected.map_or(Value::Null, Value::F64),
        ),
        (
            "model".to_string(),
            Value::Str(state.metadata.feature_set.clone()),
        ),
    ];
    if let Some((name, dtype, size)) = &featurized.lookup {
        reply.push(("kernel".to_string(), Value::Str(name.clone())));
        reply.push(("dtype".to_string(), Value::Str(dtype.clone())));
        reply.push(("size".to_string(), Value::U64(*size as u64)));
    }
    Value::Map(reply)
}

fn observe_stages(state: &ServeState, stages: &[(&str, f64)]) {
    if let Ok(mut metrics) = state.metrics.lock() {
        for (stage, s) in stages {
            metrics.histogram_observe_with(
                "pulp_predict_stage_seconds",
                "Per-stage /predict latency.",
                &[("stage", stage)],
                *s,
                latency_buckets,
            );
        }
    }
}

/// Serves one `/predict` request body. Stage timings come from the
/// request tracer's spans, so the `pulp_predict_stage_seconds` histograms
/// and the span tree in the flight recorder always agree. Error returns
/// may leave the current stage span open; the tracer closes stragglers
/// when the request tree is frozen.
fn predict(
    req: &Request,
    state: &ServeState,
    tracer: &mut RequestTracer,
) -> Result<String, String> {
    let span = tracer.begin("parse");
    let body: Value =
        serde_json::from_str(&req.body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let parse_s = tracer.finish(span);

    let span = tracer.begin("features");
    let featurized = featurize(&body)?;
    let features_s = tracer.finish(span);

    let span = tracer.begin("predict");
    let cores = state
        .predict_rows(std::slice::from_ref(&featurized.full))
        .map_err(|e| e.to_string())?[0];
    let predict_s = tracer.finish(span);

    let span = tracer.begin("serialize");
    let reply = reply_map(state, cores, &featurized);
    let out = serde_json::to_string(&reply).map_err(|e| e.to_string());
    let serialize_s = tracer.finish(span);

    observe_stages(
        state,
        &[
            ("parse", parse_s),
            ("features", features_s),
            ("predict", predict_s),
            ("serialize", serialize_s),
        ],
    );
    out
}

/// Serves one `/predict/batch` request body: featurises every item, runs
/// the whole batch through [`EnergyPredictor::predict_cores_batch`] and
/// replies with one `/predict`-shaped result per item, in order.
fn predict_batch(
    req: &Request,
    state: &ServeState,
    tracer: &mut RequestTracer,
) -> Result<String, String> {
    let span = tracer.begin("parse");
    let body: Value =
        serde_json::from_str(&req.body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let items = body
        .field("requests")
        .and_then(Value::as_seq)
        .map_err(|_| "body needs `requests` (array of /predict bodies)".to_string())?;
    if items.is_empty() {
        return Err("`requests` must not be empty".to_string());
    }
    let parse_s = tracer.finish(span);

    let span = tracer.begin("features");
    let width = pulp_energy::static_feature_names().len();
    let featurized: Vec<Featurized> = items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            featurize(item)
                .and_then(|f| {
                    // Validate per item so the error names the offender;
                    // `predict_cores_batch` would only report the width.
                    if f.full.len() == width {
                        Ok(f)
                    } else {
                        Err(format!(
                            "feature vector has {} dims, expected the full static vector ({width})",
                            f.full.len()
                        ))
                    }
                })
                .map_err(|e| format!("requests[{i}]: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let rows: Vec<Vec<f64>> = featurized.iter().map(|f| f.full.clone()).collect();
    let features_s = tracer.finish(span);

    let span = tracer.begin("predict");
    let cores = state.predict_rows(&rows).map_err(|e| e.to_string())?;
    let predict_s = tracer.finish(span);

    let span = tracer.begin("serialize");
    let results: Vec<Value> = cores
        .iter()
        .zip(&featurized)
        .map(|(&c, f)| reply_map(state, c, f))
        .collect();
    let reply = Value::Map(vec![
        ("count".to_string(), Value::U64(results.len() as u64)),
        ("results".to_string(), Value::Seq(results)),
    ]);
    let out = serde_json::to_string(&reply).map_err(|e| e.to_string());
    let serialize_s = tracer.finish(span);

    observe_stages(
        state,
        &[
            ("parse", parse_s),
            ("features", features_s),
            ("predict", predict_s),
            ("serialize", serialize_s),
        ],
    );
    if let Ok(mut metrics) = state.metrics.lock() {
        metrics.histogram_observe(
            "pulp_predict_batch_size",
            "Items per /predict/batch request.",
            &[],
            items.len() as f64,
        );
    }
    out
}

/// Folds one served request into the registry: cumulative counter and
/// histogram plus the sliding-window latency series rendered next to them.
fn record_request(state: &ServeState, req: &Request, status: u16, elapsed_s: f64) {
    let endpoint = endpoint_label(&req.path);
    let now_s = state.started.elapsed().as_secs();
    if let Ok(mut metrics) = state.metrics.lock() {
        metrics.counter_add(
            "pulp_http_requests_total",
            "HTTP requests served, by endpoint and status.",
            &[("endpoint", endpoint), ("status", &status.to_string())],
            1.0,
        );
        metrics.histogram_observe_with(
            "pulp_http_request_seconds",
            "End-to-end request latency.",
            &[("endpoint", endpoint)],
            elapsed_s,
            latency_buckets,
        );
        metrics.windowed_observe_with(
            "pulp_serve_request_seconds_window",
            "Request latency over the sliding window (p50/p90/p99).",
            &[("endpoint", endpoint)],
            elapsed_s,
            now_s,
            || WindowConfig {
                buckets: latency_buckets(),
                ..WindowConfig::default()
            },
        );
    }
}

/// Sanity-checks a rendered exposition (`debug_assert` style helper for
/// callers that want the guarantee without importing pulp-obs).
///
/// # Errors
///
/// See [`validate_exposition`].
pub fn check_exposition(text: &str) -> Result<(), String> {
    validate_exposition(text)
}

#[cfg(unix)]
mod signal {
    //! Minimal std-only SIGINT/SIGTERM hook: the handler just flips an
    //! atomic (the only async-signal-safe thing it could do); a watcher
    //! thread polls the atomic and runs the graceful drain.

    use super::ShutdownHandle;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    static SIGNALLED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // `signal(2)` from the platform C library std already links; the
        // workspace stays dependency-free (no libc crate).
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Installs the handlers and spawns the watcher that triggers
    /// `handle` once a signal arrives.
    pub fn install(handle: ShutdownHandle) {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
        std::thread::Builder::new()
            .name("serve-signal-watcher".to_string())
            .spawn(move || loop {
                if SIGNALLED.load(Ordering::SeqCst) {
                    handle.trigger();
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            })
            .expect("spawn signal watcher");
    }
}

/// Wires SIGINT/SIGTERM to a graceful drain of the server owning `handle`
/// (no-op on non-unix platforms, where `POST /admin/shutdown` remains the
/// shutdown path).
pub fn install_signal_shutdown(handle: ShutdownHandle) {
    #[cfg(unix)]
    signal::install(handle);
    #[cfg(not(unix))]
    let _ = handle;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_state() -> ServeState {
        let opts = PipelineOptions::quick(&["vec_scale", "fpu_storm"]);
        ServeState::train(&opts)
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            body: body.into(),
            close: false,
        }
    }

    fn tracer() -> RequestTracer {
        RequestTracer::new(TraceContext::root(0), 0)
    }

    fn predict(req: &Request, state: &ServeState) -> Result<String, String> {
        super::predict(req, state, &mut tracer())
    }

    fn predict_batch(req: &Request, state: &ServeState) -> Result<String, String> {
        super::predict_batch(req, state, &mut tracer())
    }

    fn route(req: &Request, state: &ServeState) -> (u16, String, &'static str) {
        super::route(req, state, &mut tracer())
    }

    #[test]
    fn trained_state_renders_a_valid_exposition() {
        let state = quick_state();
        let text = state.render_metrics();
        validate_exposition(&text).expect("startup exposition valid");
        assert!(text.contains("pulp_model_info"));
        assert!(
            text.contains("pulp_pipeline_stage_ticks"),
            "training stage histograms bridged from the Recorder:\n{text}"
        );
    }

    #[test]
    fn predict_by_kernel_matches_offline_predictor() {
        let state = quick_state();
        let req = post(
            "/predict",
            r#"{"kernel": "vec_scale", "dtype": "i32", "size": 2048}"#,
        );
        let body = predict(&req, &state).expect("predicts");
        let v: Value = serde_json::from_str(&body).expect("json");
        let cores = v.field("cores").and_then(Value::as_u64).expect("cores") as usize;
        assert!((1..=8).contains(&cores));
        assert!(
            v.field("expected_energy_fj")
                .and_then(Value::as_f64)
                .is_ok(),
            "training sample must resolve an expected energy: {body}"
        );
    }

    #[test]
    fn predict_by_features_and_errors() {
        let state = quick_state();
        let mk = |body: &str| post("/predict", body);
        let features: Vec<String> = (0..20).map(|i| format!("{}.0", i + 1)).collect();
        let ok = predict(
            &mk(&format!("{{\"features\": [{}]}}", features.join(","))),
            &state,
        )
        .expect("full vector predicts");
        let v: Value = serde_json::from_str(&ok).expect("json");
        assert!(matches!(
            v.field("expected_energy_fj").expect("field"),
            Value::Null
        ));

        assert!(predict(&mk("{\"features\": [1.0]}"), &state)
            .unwrap_err()
            .contains("20"));
        assert!(predict(&mk("not json"), &state).is_err());
        assert!(predict(&mk("{\"kernel\": \"nope\"}"), &state)
            .unwrap_err()
            .contains("unknown kernel"));
        assert!(
            predict(&mk("{\"kernel\": \"gemm\", \"dtype\": \"f64\"}"), &state)
                .unwrap_err()
                .contains("dtype")
        );
    }

    #[test]
    fn batch_predict_is_bit_identical_to_sequential() {
        let state = quick_state();
        let bodies = [
            r#"{"kernel": "vec_scale", "dtype": "i32", "size": 2048}"#.to_string(),
            r#"{"kernel": "fpu_storm", "dtype": "f32", "size": 4096}"#.to_string(),
            format!(
                "{{\"features\": [{}]}}",
                (0..20)
                    .map(|i| format!("{}.5", i))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        ];
        let sequential: Vec<u64> = bodies
            .iter()
            .map(|b| {
                let reply = predict(&post("/predict", b), &state).expect("sequential predicts");
                let v: Value = serde_json::from_str(&reply).expect("json");
                v.field("cores").and_then(Value::as_u64).expect("cores")
            })
            .collect();
        let batch_body = format!("{{\"requests\": [{}]}}", bodies.join(","));
        let reply = predict_batch(&post("/predict/batch", &batch_body), &state).expect("batch");
        let v: Value = serde_json::from_str(&reply).expect("json");
        assert_eq!(
            v.field("count").and_then(Value::as_u64),
            Ok(bodies.len() as u64)
        );
        let batch: Vec<u64> = v
            .field("results")
            .and_then(Value::as_seq)
            .expect("results")
            .iter()
            .map(|r| r.field("cores").and_then(Value::as_u64).expect("cores"))
            .collect();
        assert_eq!(batch, sequential, "batch must match N sequential predicts");
    }

    #[test]
    fn batch_predict_rejects_bad_shapes() {
        let state = quick_state();
        assert!(predict_batch(&post("/predict/batch", "{}"), &state)
            .unwrap_err()
            .contains("requests"));
        assert!(
            predict_batch(&post("/predict/batch", r#"{"requests": []}"#), &state)
                .unwrap_err()
                .contains("empty")
        );
        let err = predict_batch(
            &post(
                "/predict/batch",
                r#"{"requests": [{"kernel": "vec_scale"}, {"kernel": "nope"}]}"#,
            ),
            &state,
        )
        .unwrap_err();
        assert!(
            err.contains("requests[1]") && err.contains("unknown kernel"),
            "{err}"
        );
    }

    #[test]
    fn request_metrics_move_in_lockstep() {
        let state = quick_state();
        let req = Request {
            method: "GET".into(),
            path: "/healthz".into(),
            body: String::new(),
            close: false,
        };
        record_request(&state, &req, 200, 0.001);
        record_request(&state, &req, 200, 0.002);
        let text = state.render_metrics();
        assert!(
            text.contains("pulp_http_requests_total{endpoint=\"/healthz\",status=\"200\"} 2"),
            "{text}"
        );
        validate_exposition(&text).expect("valid after traffic");
    }

    #[test]
    fn routes_cover_the_surface() {
        let state = quick_state();
        let get = |path: &str| Request {
            method: "GET".into(),
            path: path.into(),
            body: String::new(),
            close: false,
        };
        assert_eq!(route(&get("/healthz"), &state).0, 200);
        assert_eq!(route(&get("/metrics"), &state).0, 200);
        assert_eq!(route(&get("/manifest"), &state).0, 200);
        assert_eq!(route(&get("/predict"), &state).0, 405);
        assert_eq!(route(&get("/predict/batch"), &state).0, 405);
        assert_eq!(route(&get("/admin/shutdown"), &state).0, 405);
        assert_eq!(route(&get("/nope"), &state).0, 404);
    }

    fn parse_bytes(text: &str, max_body: usize) -> Result<Request, RequestError> {
        let mut parser = HttpParser::new();
        parser.feed(text.as_bytes());
        parser.feed_eof();
        match parser.take(max_body) {
            Parsed::Request(req) => Ok(req),
            Parsed::Failed(e) => Err(e),
            Parsed::NeedMore => unreachable!("an EOF-fed parser always resolves"),
        }
    }

    #[test]
    fn read_request_parses_a_well_formed_request() {
        let req = parse_bytes(
            "POST /predict HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\n\r\nhi",
            1024,
        )
        .ok()
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/predict");
        assert_eq!(req.body, "hi");
        assert!(!req.close);
    }

    #[test]
    fn read_request_reports_connection_wishes() {
        let req = parse_bytes("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n", 1024)
            .ok()
            .expect("parses");
        assert!(req.close);
        // HTTP/1.0 defaults to close unless keep-alive is requested.
        let req = parse_bytes("GET /healthz HTTP/1.0\r\n\r\n", 1024)
            .ok()
            .expect("parses");
        assert!(req.close);
        let req = parse_bytes(
            "GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
            1024,
        )
        .ok()
        .expect("parses");
        assert!(!req.close);
    }

    #[test]
    fn read_request_refuses_oversized_bodies_without_allocating() {
        let out = parse_bytes(
            "POST /predict HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n",
            1024,
        );
        match out {
            Err(RequestError::TooLarge { length, limit }) => {
                assert_eq!(length, 999_999_999_999);
                assert_eq!(limit, 1024);
            }
            _ => panic!("oversized Content-Length must be TooLarge"),
        }
    }

    #[test]
    fn read_request_flags_malformed_input_distinctly() {
        assert!(matches!(
            parse_bytes("garbage\r\n\r\n", 1024),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse_bytes("GET /x HTTP/1.1 extra\r\n\r\n", 1024),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse_bytes("GET x-no-slash HTTP/1.1\r\n\r\n", 1024),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse_bytes("GET /x FTP/1.0\r\n\r\n", 1024),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse_bytes("POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n", 1024),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse_bytes("GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n", 1024),
            Err(RequestError::Malformed(_))
        ));
        // Clean EOF before any bytes is the normal keep-alive end.
        assert!(matches!(parse_bytes("", 1024), Err(RequestError::Eof)));
        // EOF mid-headers is a truncated request, not a clean close.
        assert!(matches!(
            parse_bytes("GET /x HTTP/1.1\r\n", 1024),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn bounded_queue_sheds_when_full_and_drains_after_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert_eq!(q.try_push(1).ok(), Some(1));
        assert_eq!(q.try_push(2).ok(), Some(2));
        assert_eq!(q.try_push(3), Err(3), "third item must bounce");
        assert_eq!(q.depth(), 2);
        q.close();
        assert_eq!(q.try_push(4), Err(4), "closed queue refuses items");
        // Consumers drain the backlog, then observe the close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn serve_options_default_is_sane() {
        let o = ServeOptions::default();
        assert!(o.workers >= 1 && o.queue_depth >= 1);
        assert!(o.timeout_ms >= 1 && o.max_body_bytes >= 1024);
        assert!(o.keepalive_max_requests > 1);
        assert!(o.slow_ms >= 1 && o.flight_capacity >= 1);
    }

    #[test]
    fn endpoint_labels_collapse_and_strip_queries() {
        assert_eq!(endpoint_label("/predict"), "/predict");
        assert_eq!(endpoint_label("/debug/requests?n=4"), "/debug/requests");
        assert_eq!(endpoint_label("/healthz?probe=1"), "/healthz");
        assert_eq!(endpoint_label("/wp-admin.php"), "other");
    }

    #[test]
    fn query_counts_parse_strictly_and_clamp_to_capacity() {
        assert_eq!(query_count(Some("n=4"), "n", 32, 64), Ok(4));
        assert_eq!(query_count(Some("a=1&n=9"), "n", 32, 64), Ok(9));
        // Over-asking clamps to what the structure retains.
        assert_eq!(query_count(Some("n=9999"), "n", 32, 64), Ok(64));
        // An absent key is the default; a malformed present value is a
        // client error, not a silent fallback (regression: `n=banana`
        // used to quietly become 32).
        assert_eq!(query_count(None, "n", 32, 64), Ok(32));
        for bad in ["n=0", "n=banana", "n=-3", "n=", "n=1.5"] {
            let err = query_count(Some(bad), "n", 32, 64).unwrap_err();
            assert!(err.contains("positive integer"), "{bad}: {err}");
        }
    }

    #[test]
    fn predict_records_stage_spans_under_the_request_root() {
        let state = quick_state();
        let mut t = tracer();
        let handle = t.begin("handle");
        super::predict(
            &post(
                "/predict",
                r#"{"kernel": "vec_scale", "dtype": "i32", "size": 2048}"#,
            ),
            &state,
            &mut t,
        )
        .expect("predicts");
        t.finish(handle);
        let trace = t.into_trace("/predict", 200);
        for name in ["queue_wait", "parse", "features", "predict", "serialize"] {
            assert!(trace.span(name).is_some(), "missing span {name}");
        }
        // Stage spans nest under `handle`, which nests under the root.
        let handle_idx = trace
            .spans
            .iter()
            .position(|s| s.name == "handle")
            .expect("handle span");
        let predict_span = trace.span("predict").expect("predict span");
        assert_eq!(predict_span.parent, Some(handle_idx));
        // The tracer's seconds agree with the frozen span durations.
        assert!(trace.total_ticks() > 0);
    }

    #[test]
    fn debug_endpoints_serve_flight_data() {
        let state = quick_state();
        // Seed the flight recorder with two completed requests.
        for (path, body) in [
            (
                "/predict",
                r#"{"kernel": "vec_scale", "dtype": "i32", "size": 2048}"#,
            ),
            (
                "/predict",
                r#"{"kernel": "fpu_storm", "dtype": "f32", "size": 1024}"#,
            ),
        ] {
            let mut t = tracer();
            let handle = t.begin("handle");
            super::predict(&post(path, body), &state, &mut t).expect("predicts");
            t.finish(handle);
            state.flight.record(t.into_trace("/predict", 200));
        }
        let (status, body, ct) = route(
            &Request {
                method: "GET".into(),
                path: "/debug/requests?n=2".into(),
                body: String::new(),
                close: false,
            },
            &state,
        );
        assert_eq!((status, ct), (200, "application/json"));
        pulp_obs::validate_chrome_trace(&body).expect("debug trace validates");
        assert!(body.contains("queue_wait"), "{body}");

        let (status, body, _) = route(
            &Request {
                method: "GET".into(),
                path: "/debug/slow".into(),
                body: String::new(),
                close: false,
            },
            &state,
        );
        assert_eq!(status, 200);
        let v: Value = serde_json::from_str(&body).expect("slow json");
        assert_eq!(v.as_seq().expect("array").len(), 2);
    }

    #[test]
    fn windowed_series_render_and_track_the_cumulative_histogram() {
        let state = quick_state();
        let req = Request {
            method: "GET".into(),
            path: "/healthz".into(),
            body: String::new(),
            close: false,
        };
        for i in 0..50 {
            record_request(&state, &req, 200, 0.001 + f64::from(i) * 1e-5);
        }
        let text = state.render_metrics();
        validate_exposition(&text).expect("windowed series render validly");
        assert!(
            text.contains(
                "pulp_serve_request_seconds_window{endpoint=\"/healthz\",quantile=\"0.99\"}"
            ),
            "{text}"
        );
        // With every observation in the live window, windowed and
        // cumulative p99 agree to bucket resolution.
        let windowed = state
            .windowed_quantile(
                "pulp_serve_request_seconds_window",
                &[("endpoint", "/healthz")],
                0.99,
            )
            .expect("windowed p99");
        let cumulative = state
            .histogram_quantile(
                "pulp_http_request_seconds",
                &[("endpoint", "/healthz")],
                0.99,
            )
            .expect("cumulative p99");
        assert_eq!(windowed, cumulative);
    }

    #[test]
    fn slow_requests_emit_a_structured_log_line() {
        let state = Arc::new(quick_state().with_logger(Logger::to_sink(LogFormat::Json)));
        let mut t = tracer();
        let span = t.begin("handle");
        t.finish(span);
        finish_request(&state, 0, t, "/healthz", 200); // slow_ms=0: everything is slow
        let lines = state.log_lines().expect("sink logger");
        assert_eq!(lines.len(), 1, "{lines:?}");
        let v: Value = serde_json::from_str(&lines[0]).expect("json log line");
        assert_eq!(v.field("stage").and_then(Value::as_str), Ok("serve"));
        assert_eq!(v.field("msg").and_then(Value::as_str), Ok("slow request"));
        assert_eq!(v.field("endpoint").and_then(Value::as_str), Ok("/healthz"));
        assert!(v
            .field("spans")
            .and_then(Value::as_str)
            .expect("spans field")
            .contains("queue_wait="));
        assert_eq!(state.flight.len(), 1, "trace recorded");

        // A generous budget suppresses the line but still records the trace.
        let quiet = Arc::new(quick_state().with_logger(Logger::to_sink(LogFormat::Json)));
        let mut t = tracer();
        let span = t.begin("handle");
        t.finish(span);
        finish_request(&quiet, ServeOptions::default().slow_ms, t, "/healthz", 200);
        assert!(quiet.log_lines().expect("sink").is_empty());
        assert_eq!(quiet.flight.len(), 1);
    }
}

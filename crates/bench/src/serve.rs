//! The instrumented prediction service behind `pulp_cli serve`.
//!
//! A std-only, thread-per-connection HTTP/1.1 server exposing the paper's
//! end product — "static features in, minimum-energy core count out" — as
//! three endpoints:
//!
//! * `POST /predict` — body `{"kernel": "gemm", "dtype": "f32", "size":
//!   2048}` (a known kernel, features computed server-side) or
//!   `{"features": [/* full 20-dim static vector */]}`; replies with the
//!   predicted core count, the 0-based class, and — when the sample was in
//!   the training sweep — the expected energy at that core count.
//! * `GET /metrics` — Prometheus text exposition from a
//!   [`MetricsRegistry`]: request counts by endpoint/status, request and
//!   per-stage latency histograms, sweep-cache counters, model metadata
//!   and the startup-training stage histograms bridged from the pipeline
//!   `Recorder`.
//! * `GET /healthz` — `200 ok` once the model is trained (the server only
//!   starts accepting after training, so this is always `ok` when
//!   reachable).
//!
//! Everything rides on blocking `std::net` — no async runtime, no HTTP
//! crate — mirroring how the rest of the workspace treats dependencies.

use pulp_energy::manifest::RunManifest;
use pulp_energy::pipeline::{LabeledDataset, PipelineOptions};
use pulp_energy::{static_feature_vector, EnergyPredictor, PredictorMetadata, StaticFeatureSet};
use pulp_ml::TreeParams;
use pulp_obs::{validate_exposition, MetricsRegistry};
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Histogram bucket layout for request latencies: 100ns .. 10s.
fn latency_buckets() -> Vec<f64> {
    pulp_obs::metrics::log_buckets(1e-7, 10.0, 4)
}

/// Shared state of one running prediction service.
pub struct ServeState {
    predictor: EnergyPredictor,
    metadata: PredictorMetadata,
    /// Training samples by `(kernel, dtype, payload_bytes)` — used to
    /// answer "expected energy at the predicted core count" for kernels
    /// the sweep has measured.
    samples: Vec<(String, String, usize, Vec<f64>)>,
    metrics: Mutex<MetricsRegistry>,
    manifest: RunManifest,
}

impl ServeState {
    /// Trains the service model on `opts` (startup cost: the full dataset
    /// sweep unless cached) and prepares the metrics registry, seeding it
    /// with pipeline-stage histograms from the instrumented build, model
    /// metadata and sweep-cache counters.
    ///
    /// # Panics
    ///
    /// Panics when the dataset cannot be built or the model cannot be
    /// trained — the service is useless without either.
    pub fn train(opts: &PipelineOptions) -> Self {
        let mut metrics = MetricsRegistry::new();
        let data = LabeledDataset::build_with_metrics(opts, &mut metrics)
            .expect("serve: dataset build failed");
        let predictor = EnergyPredictor::train(&data, StaticFeatureSet::All, TreeParams::default())
            .expect("serve: model training failed");
        Self::from_parts(predictor, &data, metrics, opts)
    }

    /// Assembles the state from pre-built parts (the integration test
    /// trains offline and reuses the dataset).
    pub fn from_parts(
        predictor: EnergyPredictor,
        data: &LabeledDataset,
        mut metrics: MetricsRegistry,
        opts: &PipelineOptions,
    ) -> Self {
        let metadata = predictor.metadata();
        metrics.gauge_set(
            "pulp_model_info",
            "Model metadata (value is always 1; labels carry the info).",
            &[
                ("feature_set", metadata.feature_set.as_str()),
                ("n_features", &metadata.n_features.to_string()),
                ("n_classes", &metadata.n_classes.to_string()),
                ("tree_depth", &metadata.tree_depth.to_string()),
                ("tree_nodes", &metadata.tree_nodes.to_string()),
            ],
            1.0,
        );
        if let Some(cache) = &opts.cache {
            let stats = cache.stats();
            for (kind, v) in [
                ("hits", stats.hits),
                ("misses", stats.misses),
                ("invalidations", stats.invalidations),
            ] {
                metrics.gauge_set(
                    "pulp_sweep_cache_lookups",
                    "Sweep-cache lookup outcomes during startup training.",
                    &[("kind", kind)],
                    v as f64,
                );
            }
        }
        let mut manifest = RunManifest::new("pulp_cli serve", &opts.config, &opts.model)
            .with_extra("feature_set", &metadata.feature_set)
            .with_extra("samples", data.len());
        if let Some(cache) = &opts.cache {
            manifest = manifest.with_cache_stats(cache.stats());
        }
        let samples = data
            .samples
            .iter()
            .map(|s| {
                (
                    s.kernel.clone(),
                    s.dtype.to_string(),
                    s.payload_bytes,
                    s.energy.clone(),
                )
            })
            .collect();
        Self {
            predictor,
            metadata,
            samples,
            metrics: Mutex::new(metrics),
            manifest,
        }
    }

    /// The run manifest describing this service instance.
    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }

    /// Renders the current `/metrics` exposition.
    pub fn render_metrics(&self) -> String {
        self.metrics.lock().expect("metrics lock").render()
    }
}

/// A running server: the bound address plus its accept-loop thread.
pub struct Server {
    /// The actual bound address (useful with port 0).
    pub addr: SocketAddr,
    listener: TcpListener,
    state: Arc<ServeState>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) without
    /// accepting yet.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: &str, state: Arc<ServeState>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            addr,
            listener,
            state,
        })
    }

    /// Serves forever on the calling thread, spawning one thread per
    /// connection (`pulp_cli serve` calls this; the integration test calls
    /// it from a background thread).
    pub fn run(self) {
        for stream in self.listener.incoming() {
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || handle_connection(stream, &state));
        }
    }
}

/// Handles one HTTP connection: parse, route, respond, close.
fn handle_connection(stream: TcpStream, state: &ServeState) {
    let mut reader = BufReader::new(stream);
    let Some(request) = read_request(&mut reader) else {
        return;
    };
    let start = Instant::now();
    let (status, body, content_type) = route(&request, state);
    let elapsed = start.elapsed().as_secs_f64();
    record_request(state, &request, status, elapsed);
    let response = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason(status),
        body.len(),
    );
    let mut stream = reader.into_inner();
    // A peer that went away mid-response needs no cleanup.
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// One parsed request: method, path, body.
struct Request {
    method: String,
    path: String,
    body: String,
}

/// Reads one HTTP/1.1 request (request line, headers, Content-Length
/// body). Returns `None` on malformed or truncated input.
fn read_request(reader: &mut BufReader<TcpStream>) -> Option<Request> {
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).ok()?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    // Cap bodies at 1 MiB — feature vectors are tiny; anything larger is
    // not a legitimate request.
    if content_length > 1 << 20 {
        return None;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some(Request {
        method,
        path,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

/// Routes one request, returning `(status, body, content type)`.
fn route(req: &Request, state: &ServeState) -> (u16, String, &'static str) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, "ok\n".to_string(), "text/plain; charset=utf-8"),
        ("GET", "/metrics") => (
            200,
            state.render_metrics(),
            "text/plain; version=0.0.4; charset=utf-8",
        ),
        ("GET", "/manifest") => (200, state.manifest.to_json_pretty(), "application/json"),
        ("POST", "/predict") => match predict(req, state) {
            Ok(body) => (200, body, "application/json"),
            Err(msg) => (
                400,
                serde_json::to_string(&Value::Map(vec![("error".to_string(), Value::Str(msg))]))
                    .unwrap_or_default(),
                "application/json",
            ),
        },
        ("GET", "/predict") => (405, "use POST\n".to_string(), "text/plain; charset=utf-8"),
        _ => (404, "not found\n".to_string(), "text/plain; charset=utf-8"),
    }
}

/// Serves one `/predict` request body.
fn predict(req: &Request, state: &ServeState) -> Result<String, String> {
    let parse_start = Instant::now();
    let body: Value =
        serde_json::from_str(&req.body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let parse_s = parse_start.elapsed().as_secs_f64();

    let features_start = Instant::now();
    // Either a raw feature vector, or a known kernel to featurise.
    let (full, lookup) = if let Ok(seq) = body.field("features").and_then(Value::as_seq) {
        let full: Vec<f64> = seq
            .iter()
            .map(|v| {
                v.as_f64()
                    .map_err(|_| "features must be an array of numbers".to_string())
            })
            .collect::<Result<_, _>>()?;
        (full, None)
    } else {
        let name = body
            .field("kernel")
            .and_then(Value::as_str)
            .map_err(|_| "body needs `features` (array) or `kernel` (string)".to_string())?;
        let dtype_text = body.field("dtype").and_then(Value::as_str).unwrap_or("i32");
        let dtype = match dtype_text {
            "i32" => kernel_ir::DType::I32,
            "f32" => kernel_ir::DType::F32,
            other => return Err(format!("unknown dtype `{other}` (want i32 or f32)")),
        };
        let size = body.field("size").and_then(Value::as_u64).unwrap_or(2048) as usize;
        let def = pulp_kernels::registry()
            .into_iter()
            .find(|d| d.name == name)
            .ok_or_else(|| format!("unknown kernel `{name}`"))?;
        let kernel = def
            .build(&pulp_kernels::KernelParams::new(dtype, size))
            .map_err(|e| format!("kernel `{name}` rejects size {size}: {e}"))?;
        (
            static_feature_vector(&kernel),
            Some((name.to_string(), dtype.to_string(), size)),
        )
    };
    let features_s = features_start.elapsed().as_secs_f64();

    let predict_start = Instant::now();
    let cores = state
        .predictor
        .predict_cores_from_static(&full)
        .map_err(|e| e.to_string())?;
    let predict_s = predict_start.elapsed().as_secs_f64();

    // Expected energy at the predicted core count, when the training sweep
    // measured this exact sample.
    let expected = lookup.as_ref().and_then(|(name, dtype, size)| {
        state
            .samples
            .iter()
            .find(|(k, d, p, _)| k == name && d == dtype && *p == *size)
            .and_then(|(_, _, _, energy)| energy.get(cores - 1).copied())
    });

    if let Ok(mut metrics) = state.metrics.lock() {
        for (stage, s) in [
            ("parse", parse_s),
            ("features", features_s),
            ("predict", predict_s),
        ] {
            metrics.histogram_observe_with(
                "pulp_predict_stage_seconds",
                "Per-stage /predict latency.",
                &[("stage", stage)],
                s,
                latency_buckets,
            );
        }
        let outcome = if expected.is_some() { "hit" } else { "miss" };
        metrics.counter_add(
            "pulp_predict_energy_lookups_total",
            "Expected-energy lookups against the training sweep.",
            &[("outcome", outcome)],
            1.0,
        );
    }

    let mut reply = vec![
        ("cores".to_string(), Value::U64(cores as u64)),
        ("class".to_string(), Value::U64((cores - 1) as u64)),
        (
            "expected_energy_fj".to_string(),
            expected.map_or(Value::Null, Value::F64),
        ),
        (
            "model".to_string(),
            Value::Str(state.metadata.feature_set.clone()),
        ),
    ];
    if let Some((name, dtype, size)) = lookup {
        reply.push(("kernel".to_string(), Value::Str(name)));
        reply.push(("dtype".to_string(), Value::Str(dtype)));
        reply.push(("size".to_string(), Value::U64(size as u64)));
    }
    serde_json::to_string(&Value::Map(reply)).map_err(|e| e.to_string())
}

/// Folds one served request into the registry.
fn record_request(state: &ServeState, req: &Request, status: u16, elapsed_s: f64) {
    let endpoint = match req.path.as_str() {
        "/predict" | "/metrics" | "/healthz" | "/manifest" => req.path.as_str(),
        // Collapse arbitrary paths into one label value so a scanner
        // cannot blow up metric cardinality.
        _ => "other",
    };
    if let Ok(mut metrics) = state.metrics.lock() {
        metrics.counter_add(
            "pulp_http_requests_total",
            "HTTP requests served, by endpoint and status.",
            &[("endpoint", endpoint), ("status", &status.to_string())],
            1.0,
        );
        metrics.histogram_observe_with(
            "pulp_http_request_seconds",
            "End-to-end request latency.",
            &[("endpoint", endpoint)],
            elapsed_s,
            latency_buckets,
        );
    }
}

/// Sanity-checks a rendered exposition (`debug_assert` style helper for
/// callers that want the guarantee without importing pulp-obs).
///
/// # Errors
///
/// See [`validate_exposition`].
pub fn check_exposition(text: &str) -> Result<(), String> {
    validate_exposition(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_state() -> ServeState {
        let opts = PipelineOptions::quick(&["vec_scale", "fpu_storm"]);
        ServeState::train(&opts)
    }

    #[test]
    fn trained_state_renders_a_valid_exposition() {
        let state = quick_state();
        let text = state.render_metrics();
        validate_exposition(&text).expect("startup exposition valid");
        assert!(text.contains("pulp_model_info"));
        assert!(
            text.contains("pulp_pipeline_stage_ticks"),
            "training stage histograms bridged from the Recorder:\n{text}"
        );
    }

    #[test]
    fn predict_by_kernel_matches_offline_predictor() {
        let state = quick_state();
        let req = Request {
            method: "POST".into(),
            path: "/predict".into(),
            body: r#"{"kernel": "vec_scale", "dtype": "i32", "size": 2048}"#.into(),
        };
        let body = predict(&req, &state).expect("predicts");
        let v: Value = serde_json::from_str(&body).expect("json");
        let cores = v.field("cores").and_then(Value::as_u64).expect("cores") as usize;
        assert!((1..=8).contains(&cores));
        assert!(
            v.field("expected_energy_fj")
                .and_then(Value::as_f64)
                .is_ok(),
            "training sample must resolve an expected energy: {body}"
        );
    }

    #[test]
    fn predict_by_features_and_errors() {
        let state = quick_state();
        let mk = |body: &str| Request {
            method: "POST".into(),
            path: "/predict".into(),
            body: body.into(),
        };
        let features: Vec<String> = (0..20).map(|i| format!("{}.0", i + 1)).collect();
        let ok = predict(
            &mk(&format!("{{\"features\": [{}]}}", features.join(","))),
            &state,
        )
        .expect("full vector predicts");
        let v: Value = serde_json::from_str(&ok).expect("json");
        assert!(matches!(
            v.field("expected_energy_fj").expect("field"),
            Value::Null
        ));

        assert!(predict(&mk("{\"features\": [1.0]}"), &state)
            .unwrap_err()
            .contains("20"));
        assert!(predict(&mk("not json"), &state).is_err());
        assert!(predict(&mk("{\"kernel\": \"nope\"}"), &state)
            .unwrap_err()
            .contains("unknown kernel"));
        assert!(
            predict(&mk("{\"kernel\": \"gemm\", \"dtype\": \"f64\"}"), &state)
                .unwrap_err()
                .contains("dtype")
        );
    }

    #[test]
    fn request_metrics_move_in_lockstep() {
        let state = quick_state();
        let req = Request {
            method: "GET".into(),
            path: "/healthz".into(),
            body: String::new(),
        };
        record_request(&state, &req, 200, 0.001);
        record_request(&state, &req, 200, 0.002);
        let text = state.render_metrics();
        assert!(
            text.contains("pulp_http_requests_total{endpoint=\"/healthz\",status=\"200\"} 2"),
            "{text}"
        );
        validate_exposition(&text).expect("valid after traffic");
    }

    #[test]
    fn routes_cover_the_surface() {
        let state = quick_state();
        let get = |path: &str| Request {
            method: "GET".into(),
            path: path.into(),
            body: String::new(),
        };
        assert_eq!(route(&get("/healthz"), &state).0, 200);
        assert_eq!(route(&get("/metrics"), &state).0, 200);
        assert_eq!(route(&get("/manifest"), &state).0, 200);
        assert_eq!(route(&get("/predict"), &state).0, 405);
        assert_eq!(route(&get("/nope"), &state).0, 404);
    }
}

//! E6 — headline numbers of the paper, regenerated on our platform:
//!
//! * static features reach ~57% accuracy at 0% tolerance and approach 80%
//!   at 5% tolerance over eight classes;
//! * pruning to the most important features ("optimised") improves the
//!   0%-tolerance accuracy (paper: 61% / 79%);
//! * static features exceed 85% accuracy within an 8% tolerance;
//! * the static-vs-dynamic accuracy gap stays below ~10 points.
//!
//! `--model tree|forest|gbt` (default `tree`) swaps the classifier behind
//! every curve for another zoo member. The paper's reference numbers are
//! tree numbers, so non-tree runs write their record to
//! `BENCH_headline_<model>.json` by default — the committed tree baseline
//! is never clobbered by a zoo sweep — and the record names its model so
//! `bench diff` refuses cross-model comparisons via the accuracy map.

use pulp_bench::{load_or_build_dataset_observed, CommonArgs};
use pulp_energy::{
    default_tolerances, evaluation::curve_from_predictions, report::render_confusion,
    tolerance_curve, top_feature_columns, CacheStats, Protocol, StaticFeatureSet, ToleranceCurve,
};
use pulp_ml::{
    confusion_matrix, cross_val_predict, cv::repeated_cross_val_predict, DecisionTree,
    ForestParams, Gbt, GbtParams, RandomForest,
};
use pulp_obs::JournalEvent;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Headline {
    static_at_0: f64,
    static_at_5: f64,
    static_at_8: f64,
    optimized_at_0: f64,
    optimized_at_5: f64,
    dynamic_at_0: f64,
    dynamic_at_5: f64,
    gap_at_5: f64,
    always8_at_5: f64,
}

/// The benchmark-trajectory record `pulp_cli bench diff` consumes. The
/// `accuracy` map is compared field-by-field; everything else is context.
#[derive(Debug, Serialize)]
struct BenchHeadline {
    schema: &'static str,
    /// Zoo member behind every accuracy figure (`tree` unless `--model`).
    model: String,
    accuracy: Headline,
    /// How much the tree beats the always-8 naive policy at 5% tolerance.
    naive_delta: f64,
    wall_time_ms: u64,
    cache: Option<CacheStats>,
    manifest_hash: String,
}

/// `--bench-out <path>`; parsed directly because it is headline-specific
/// and `CommonArgs` ignores foreign flags. Defaults to
/// `BENCH_headline.json` for the tree (the paper's model, the committed
/// baseline) and `BENCH_headline_<model>.json` for other zoo members.
fn bench_out_path(model: &str) -> PathBuf {
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        if a == "--bench-out" {
            if let Some(p) = argv.next() {
                return PathBuf::from(p);
            }
        }
    }
    if model == "tree" {
        PathBuf::from("BENCH_headline.json")
    } else {
        PathBuf::from(format!("BENCH_headline_{model}.json"))
    }
}

/// `--model tree|forest|gbt` (default `tree`); bin-local like
/// `--bench-out`. An unknown model is a usage error, not a silent tree.
fn model_arg() -> String {
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        if a == "--model" {
            return match argv.next().as_deref() {
                Some(m @ ("tree" | "forest" | "gbt")) => m.to_string(),
                other => {
                    eprintln!("--model expects tree|forest|gbt, got {other:?}");
                    std::process::exit(2);
                }
            };
        }
    }
    "tree".to_string()
}

/// The tolerance curve of the selected zoo member over `data`. Trees use
/// the instrumented single-model path (identical to the historical
/// behaviour); ensembles run the same repeated-CV protocol with the
/// repetition count scaled down as in `bench models`, seeded per
/// repetition so the result is bit-identical at any `--cv-threads`.
fn model_curve(
    model: &str,
    label: &str,
    data: &pulp_ml::Dataset,
    energies: &[Vec<f64>],
    tolerances: &[f64],
    protocol: &Protocol,
) -> ToleranceCurve {
    let slow_repeats = (protocol.repeats / 10).max(2);
    match model {
        "tree" => tolerance_curve(label, data, energies, tolerances, protocol),
        "forest" => {
            let preds = repeated_cross_val_predict(
                data,
                protocol.folds,
                slow_repeats,
                protocol.seed,
                protocol.cv_threads,
                |seed| {
                    RandomForest::new(ForestParams {
                        n_trees: 50,
                        tree: protocol.tree,
                        max_features: None,
                        seed: seed + 1,
                    })
                },
            );
            curve_from_predictions(label, &preds, energies, tolerances)
        }
        "gbt" => {
            let preds = repeated_cross_val_predict(
                data,
                protocol.folds,
                slow_repeats,
                protocol.seed,
                protocol.cv_threads,
                |seed| {
                    Gbt::new(GbtParams {
                        seed,
                        ..GbtParams::default()
                    })
                },
            );
            curve_from_predictions(label, &preds, energies, tolerances)
        }
        other => unreachable!("model_arg validated {other}"),
    }
}

fn main() {
    let start = Instant::now();
    let args = CommonArgs::parse();
    let model = model_arg();
    let opts = args.pipeline_options();
    let protocol = args.protocol();
    let mut journal = args.journal_writer("headline", &opts, Some(&protocol));
    let data = load_or_build_dataset_observed(&opts, &args, journal.as_mut());
    let tolerances = default_tolerances();
    let energies = data.energies();

    // Journal writes must never fail the experiment; a full disk degrades
    // to a warning.
    let journal_event = |journal: &mut Option<pulp_obs::JournalWriter>, ev: JournalEvent| {
        if let Some(j) = journal {
            if let Err(e) = j.event(ev) {
                eprintln!("[headline] warning: journal write failed: {e}");
            }
        }
    };
    journal_event(
        &mut journal,
        JournalEvent::StageStart {
            stage: "train_eval".into(),
        },
    );
    let eval_t0 = Instant::now();

    let all = data.static_dataset(StaticFeatureSet::All).expect("static");
    let static_curve = model_curve(&model, "static", &all, &energies, &tolerances, &protocol);

    let top = top_feature_columns(&all, 6, &protocol);
    let optimized = all.select_features(&top);
    let optimized_curve = model_curve(
        &model,
        "optimised",
        &optimized,
        &energies,
        &tolerances,
        &protocol,
    );

    let dynamic = data.dynamic_dataset().expect("dynamic");
    let dynamic_curve = model_curve(
        &model,
        "dynamic",
        &dynamic,
        &energies,
        &tolerances,
        &protocol,
    );

    let naive = pulp_energy::always_n_curve(8, &energies, &tolerances);

    journal_event(
        &mut journal,
        JournalEvent::StageEnd {
            stage: "train_eval".into(),
            wall_ms: eval_t0.elapsed().as_secs_f64() * 1e3,
        },
    );

    let at = |c: &pulp_energy::ToleranceCurve, t: f64| c.at(t).expect("non-empty tolerance grid");
    let h = Headline {
        static_at_0: at(&static_curve, 0.0),
        static_at_5: at(&static_curve, 0.05),
        static_at_8: at(&static_curve, 0.08),
        optimized_at_0: at(&optimized_curve, 0.0),
        optimized_at_5: at(&optimized_curve, 0.05),
        dynamic_at_0: at(&dynamic_curve, 0.0),
        dynamic_at_5: at(&dynamic_curve, 0.05),
        gap_at_5: at(&dynamic_curve, 0.05) - at(&static_curve, 0.05),
        always8_at_5: at(&naive, 0.05),
    };

    println!("E6 — headline numbers (ours [{model}] vs paper [tree])\n");
    println!("{:<34} {:>8} {:>10}", "metric", "ours", "paper");
    let pct = |v: f64| format!("{:.1}%", v * 100.0);
    println!(
        "{:<34} {:>8} {:>10}",
        "static accuracy @0% tolerance",
        pct(h.static_at_0),
        "~57%"
    );
    println!(
        "{:<34} {:>8} {:>10}",
        "static accuracy @5% tolerance",
        pct(h.static_at_5),
        "~80%"
    );
    println!(
        "{:<34} {:>8} {:>10}",
        "static accuracy @8% tolerance",
        pct(h.static_at_8),
        ">85%"
    );
    println!(
        "{:<34} {:>8} {:>10}",
        "optimised accuracy @0%",
        pct(h.optimized_at_0),
        "61%"
    );
    println!(
        "{:<34} {:>8} {:>10}",
        "optimised accuracy @5%",
        pct(h.optimized_at_5),
        "79%"
    );
    println!(
        "{:<34} {:>8} {:>10}",
        "dynamic accuracy @5%",
        pct(h.dynamic_at_5),
        "-"
    );
    println!(
        "{:<34} {:>8} {:>10}",
        "static-dynamic gap @5%",
        pct(h.gap_at_5),
        "<10%"
    );
    println!(
        "{:<34} {:>8} {:>10}",
        "always-8 accuracy @5%",
        pct(h.always8_at_5),
        "-"
    );

    // One CV pass for the confusion structure: most confusion should sit
    // between adjacent core counts (near-ties), as on the real platform.
    let preds = match model.as_str() {
        "forest" => cross_val_predict(&all, protocol.folds, protocol.seed, || {
            RandomForest::new(ForestParams {
                n_trees: 50,
                tree: protocol.tree,
                max_features: None,
                seed: protocol.seed + 1,
            })
        }),
        "gbt" => cross_val_predict(&all, protocol.folds, protocol.seed, || {
            Gbt::new(GbtParams {
                seed: protocol.seed,
                ..GbtParams::default()
            })
        }),
        _ => cross_val_predict(&all, protocol.folds, protocol.seed, || {
            DecisionTree::new(protocol.tree)
        }),
    };
    let confusion = confusion_matrix(&preds, all.labels(), pulp_energy::NUM_CLASSES);
    println!("\nconfusion matrix (static features, one CV pass):");
    print!("{}", render_confusion(&confusion));

    println!("\nshape verdicts:");
    let verdict = |ok: bool| if ok { "OK" } else { "DEVIATES" };
    println!(
        "  [{}] tolerance helps a lot (@5% - @0% > 10 pts)",
        verdict(h.static_at_5 - h.static_at_0 > 0.10)
    );
    println!(
        "  [{}] static @5% is strong (>70%)",
        verdict(h.static_at_5 > 0.70)
    );
    println!(
        "  [{}] static @8% exceeds 85%%-ish (>80%)",
        verdict(h.static_at_8 > 0.80)
    );
    println!(
        "  [{}] dynamic beats static by a bounded margin (gap in [-2%, 15%])",
        verdict(h.gap_at_5 > -0.02 && h.gap_at_5 < 0.15)
    );
    println!(
        "  [{}] tree beats always-8 @5%",
        verdict(h.static_at_5 > h.always8_at_5)
    );

    args.dump_json(&h);

    // The headline accuracy figures land in the journal tail so
    // `pulp_cli bench history` can read trajectories from journals alone.
    for (name, value) in [
        ("static_at_0", h.static_at_0),
        ("static_at_5", h.static_at_5),
        ("static_at_8", h.static_at_8),
        ("optimized_at_0", h.optimized_at_0),
        ("optimized_at_5", h.optimized_at_5),
        ("dynamic_at_5", h.dynamic_at_5),
    ] {
        journal_event(
            &mut journal,
            JournalEvent::BenchRecord {
                bench: "headline".into(),
                name: name.into(),
                value,
            },
        );
    }
    args.finish_journal(journal);

    // Provenance + the benchmark-trajectory record `bench diff` compares.
    let manifest = args.write_manifest("headline", &opts, Some(&protocol), start);
    let bench = BenchHeadline {
        schema: "pulp-headline/v1",
        model: model.clone(),
        naive_delta: h.static_at_5 - h.always8_at_5,
        accuracy: h,
        wall_time_ms: start.elapsed().as_millis() as u64,
        cache: opts.cache.as_ref().map(|c| c.stats()),
        manifest_hash: manifest.manifest_hash(),
    };
    let out = bench_out_path(&model);
    match serde_json::to_string_pretty(&bench) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&out, s) {
                eprintln!("warning: cannot write {}: {e}", out.display());
            } else if !args.quiet {
                args.logger().info(
                    "bench",
                    "headline record written",
                    &[("path", out.display().to_string())],
                );
            }
        }
        Err(e) => eprintln!("warning: cannot serialise bench record: {e}"),
    }
}

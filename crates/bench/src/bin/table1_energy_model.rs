//! E1 — Table I: regenerate the per-instruction-class energy table.
//!
//! The paper derives Table I from post-layout simulation of synthetic
//! benchmarks, each containing a single class of instructions. This
//! experiment does the simulator-side equivalent: it runs
//! single-instruction-class microbenchmarks on one core and reports the
//! *marginal* energy per event next to the Table-I coefficient it should
//! reproduce. Deviations expose accounting bugs (each event must be
//! charged exactly once).

use pulp_energy_model::{energy_of, EnergyModel};
use pulp_sim::{
    simulate, AddrExpr, ClusterConfig, FpOp, OpKind, Program, SegOp, L2_BASE, TCDM_BASE,
};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    class: &'static str,
    table1_fj: f64,
    measured_fj_per_event: f64,
    error_percent: f64,
}

fn microbench(kind: OpKind, addr: Option<u32>, n: u64) -> Program {
    let instr = SegOp::Instr {
        kind,
        addr: addr.map(AddrExpr::constant),
    };
    Program::new(vec![vec![
        SegOp::LoopBegin { trip: n },
        instr,
        SegOp::LoopEnd,
    ]])
}

/// Marginal energy per event: subtract a baseline run with half the events
/// so the per-cycle platform overheads cancel exactly for 1-cycle ops.
fn marginal(config: &ClusterConfig, model: &EnergyModel, kind: OpKind, addr: Option<u32>) -> f64 {
    let n1 = 4096u64;
    let n0 = 2048u64;
    let e1 = energy_of(
        &simulate(config, &microbench(kind, addr, n1)).expect("sim"),
        model,
        config,
    );
    let e0 = energy_of(
        &simulate(config, &microbench(kind, addr, n0)).expect("sim"),
        model,
        config,
    );
    (e1.total() - e0.total()) / (n1 - n0) as f64
}

fn main() {
    let start = std::time::Instant::now();
    let args = pulp_bench::CommonArgs::parse();
    let config = ClusterConfig::default();
    let model = EnergyModel::table1();

    // Per-cycle platform overhead (leakage + idle of every component while
    // one core runs) — subtracted to isolate the PE-side op energy.
    let idle_per_cycle = {
        let a = energy_of(
            &simulate(&config, &microbench(OpKind::Nop, None, 4096)).expect("sim"),
            &model,
            &config,
        );
        let b = energy_of(
            &simulate(&config, &microbench(OpKind::Nop, None, 2048)).expect("sim"),
            &model,
            &config,
        );
        // Marginal energy of one NOP cycle minus the NOP coefficient and
        // I-cache use = platform per-cycle cost.
        (a.total() - b.total()) / 2048.0 - model.pe.nop - model.icache.use_
    };

    let cases: Vec<(&'static str, OpKind, Option<u32>, f64)> = vec![
        ("PE NOP", OpKind::Nop, None, model.pe.nop),
        ("PE ALU", OpKind::Alu, None, model.pe.alu),
        (
            "PE FP",
            OpKind::Fp(FpOp::Mul),
            None,
            model.pe.fp + model.fpu.operative,
        ),
        (
            "PE L1 (+bank read)",
            OpKind::Load,
            Some(TCDM_BASE),
            model.pe.l1 + model.l1_bank.read - model.l1_bank.idle,
        ),
        (
            "PE L1 (+bank write)",
            OpKind::Store,
            Some(TCDM_BASE),
            model.pe.l1 + model.l1_bank.write - model.l1_bank.idle,
        ),
        (
            "PE L2 (+bank read, +14 wait)",
            OpKind::Load,
            Some(L2_BASE),
            model.pe.l2 + model.l2_bank.read - model.l2_bank.idle
                + 14.0 * (model.pe.nop + idle_per_cycle),
        ),
    ];

    println!("E1 / Table I — energy model calibration (single-class microbenchmarks, 1 core)");
    println!("platform overhead per active cycle: {idle_per_cycle:.0} fJ");
    println!(
        "{:<30} {:>12} {:>12} {:>8}",
        "class", "table1 fJ", "measured fJ", "err%"
    );
    let mut rows = Vec::new();
    for (class, kind, addr, expected) in cases {
        let measured = marginal(&config, &model, kind, addr)
            - model.icache.use_
            - if kind == OpKind::Nop {
                0.0
            } else {
                idle_per_cycle
            };
        // Expected includes the per-event coefficients; measured removes
        // the I-cache fetch and platform overhead shared by all classes.
        let adjusted_expected = expected
            + if kind == OpKind::Nop {
                idle_per_cycle
            } else {
                0.0
            };
        let err = 100.0 * (measured - adjusted_expected) / adjusted_expected;
        println!("{class:<30} {adjusted_expected:>12.0} {measured:>12.0} {err:>7.2}%");
        rows.push(Row {
            class,
            table1_fj: adjusted_expected,
            measured_fj_per_event: measured,
            error_percent: err,
        });
    }
    args.dump_json(&rows);

    let worst = rows
        .iter()
        .map(|r| r.error_percent.abs())
        .fold(0.0, f64::max);
    println!("\nmax |error| = {worst:.2}% (expected ~0: the accounting charges each event once)");
    args.write_manifest("table1_energy_model", &args.pipeline_options(), None, start);
}

//! E5 — Table IV: most relevant features.
//!
//! Ranks dynamic and static features by decision-tree importance. Expected
//! shape (paper): `PE_sleep` at extreme parallelism dominates the dynamic
//! ranking; `avgws`, `F4` and `F1` dominate the static ranking, with a few
//! MCA port pressures in the tail.

use pulp_bench::{load_or_build_dataset, CommonArgs};
use pulp_energy::{rank_features, report::render_importances, StaticFeatureSet};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Record {
    dynamic: Vec<pulp_energy::RankedFeature>,
    static_: Vec<pulp_energy::RankedFeature>,
}

fn main() {
    let start = std::time::Instant::now();
    let args = CommonArgs::parse();
    let opts = args.pipeline_options();
    let data = load_or_build_dataset(&opts, &args);
    let protocol = args.protocol();

    let dynamic = rank_features(&data.dynamic_dataset().expect("dynamic"), &protocol);
    let static_ = rank_features(
        &data.static_dataset(StaticFeatureSet::All).expect("static"),
        &protocol,
    );

    println!("E5 / Table IV — most relevant features\n");
    print!(
        "{}",
        render_importances("Dynamic features (top 12):", &dynamic, 12)
    );
    println!();
    print!(
        "{}",
        render_importances("Static features (top 9):", &static_, 9)
    );

    println!("\nshape checks:");
    let top_dynamic: Vec<&str> = dynamic.iter().take(4).map(|r| r.name.as_str()).collect();
    println!(
        "  PE_sleep among top dynamic features: {} (top 4: {:?})",
        top_dynamic.iter().any(|n| n.starts_with("PE_sleep")),
        top_dynamic
    );
    let top_static: Vec<&str> = static_.iter().take(3).map(|r| r.name.as_str()).collect();
    println!(
        "  avgws/F-features lead static ranking: {} (top 3: {:?})",
        top_static
            .iter()
            .any(|n| matches!(*n, "avgws" | "F1" | "F3" | "F4" | "transfer")),
        top_static
    );

    args.dump_json(&Record { dynamic, static_ });
    args.write_manifest("table4_importance", &opts, Some(&protocol), start);
}

//! E8 (extension) — decision tree vs random forest.
//!
//! The paper's future work proposes stronger models; its related work uses
//! random forests for energy prediction. This experiment runs both on the
//! same static features and protocol.

use pulp_bench::{load_or_build_dataset, CommonArgs};
use pulp_energy::{
    default_tolerances, evaluation::curve_from_predictions, report::render_curves, StaticFeatureSet,
};
use pulp_ml::{
    cv::repeated_cross_val_predict, DecisionTree, ForestParams, KNearestNeighbors, KnnParams,
    RandomForest,
};

fn main() {
    let start = std::time::Instant::now();
    let args = CommonArgs::parse();
    let opts = args.pipeline_options();
    let data = load_or_build_dataset(&opts, &args);
    let protocol = args.protocol();
    let tolerances = default_tolerances();
    let energies = data.energies();
    let all = data.static_dataset(StaticFeatureSet::All).expect("static");

    // Forests are ~50x the training cost of a tree; scale repetitions down
    // while keeping the fold structure.
    let forest_repeats = (protocol.repeats / 10).max(2);

    if !args.quiet {
        args.logger().info(
            "forest",
            "repetition plan",
            &[
                ("tree_reps", protocol.repeats.to_string()),
                ("forest_reps", forest_repeats.to_string()),
            ],
        );
    }
    let tree_preds = repeated_cross_val_predict(
        &all,
        protocol.folds,
        protocol.repeats,
        protocol.seed,
        protocol.cv_threads,
        |_seed| DecisionTree::new(protocol.tree),
    );
    let tree_curve = curve_from_predictions("tree", &tree_preds, &energies, &tolerances);

    // Each repetition's forest is seeded from the repetition seed itself, so
    // the run is deterministic at any `--cv-threads` value.
    let forest_preds = repeated_cross_val_predict(
        &all,
        protocol.folds,
        forest_repeats,
        protocol.seed,
        protocol.cv_threads,
        |seed| {
            RandomForest::new(ForestParams {
                n_trees: 50,
                tree: protocol.tree,
                max_features: None,
                seed: seed + 1,
            })
        },
    );
    let forest_curve = curve_from_predictions("forest", &forest_preds, &energies, &tolerances);

    let knn_preds = repeated_cross_val_predict(
        &all,
        protocol.folds,
        protocol.repeats,
        protocol.seed,
        protocol.cv_threads,
        |_seed| KNearestNeighbors::new(KnnParams::default()),
    );
    let knn_curve = curve_from_predictions("knn(5)", &knn_preds, &energies, &tolerances);

    let curves = vec![tree_curve, forest_curve, knn_curve];
    println!("E8 — decision tree vs random forest (static ALL features)\n");
    print!("{}", render_curves(&curves));
    println!("\nshape checks:");
    let at = |i: usize, t: f64| curves[i].at(t).expect("non-empty tolerance grid");
    println!(
        "  forest >= tree @0%: {} ({:.1}% vs {:.1}%)",
        at(1, 0.0) >= at(0, 0.0) - 0.02,
        at(1, 0.0) * 100.0,
        at(0, 0.0) * 100.0
    );
    println!(
        "  forest >= tree @5%: {} ({:.1}% vs {:.1}%)",
        at(1, 0.05) >= at(0, 0.05) - 0.02,
        at(1, 0.05) * 100.0,
        at(0, 0.05) * 100.0
    );
    args.dump_json(&curves);
    args.write_manifest("forest_extension", &opts, Some(&protocol), start);
}

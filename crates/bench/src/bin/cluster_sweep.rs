//! E11 (extension) — beyond `8c4flp`: energy/parallelism landscapes on
//! alternative cluster shapes.
//!
//! The paper fixes the platform to the 8-core/4-FPU instance. This
//! experiment sweeps the team size on three cluster shapes — the paper's
//! `8c4flp`, a 16-core/8-FPU scale-up, and an FPU-starved 8-core/2-FPU
//! variant — and reports where the minimum-energy configuration lands for
//! representative kernels. It shows the labels are a property of the
//! *platform*, not the kernel alone: the same source moves its optimum
//! when the cluster shape changes.

use kernel_ir::{lower, DType};
use pulp_bench::CommonArgs;
use pulp_energy_model::{energy_of, EnergyModel};
use pulp_kernels::{registry, KernelParams};
use pulp_sim::{simulate, ClusterConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    cluster: String,
    kernel: String,
    dtype: String,
    optimal_cores: usize,
    max_cores: usize,
    energy_at_optimum_uj: f64,
}

fn shapes() -> Vec<(String, ClusterConfig)> {
    let base = ClusterConfig::default();
    let mut big = base.clone().with_cores(16);
    big.num_fpus = 8;
    big.tcdm_banks = 32;
    let mut starved = base.clone();
    starved.num_fpus = 2;
    vec![
        ("8c4f (paper)".to_string(), base),
        ("16c8f".to_string(), big),
        ("8c2f".to_string(), starved),
    ]
}

fn main() {
    let start = std::time::Instant::now();
    let args = CommonArgs::parse();
    let model = EnergyModel::table1();
    let kernels = [
        ("gemm", DType::F32),
        ("fpu_storm", DType::F32),
        ("bank_hammer", DType::I32),
        ("compute_dense", DType::I32),
        ("fir", DType::F32),
    ];

    println!("E11 — cluster-shape sweep (payload 8196 B)\n");
    println!(
        "{:<14} {:<16} {:>6} {:>10} {:>14}",
        "cluster", "kernel", "dtype", "best", "E@best [uJ]"
    );
    let mut rows = Vec::new();
    for (cluster_name, config) in shapes() {
        for (name, dtype) in kernels {
            let def = registry()
                .into_iter()
                .find(|d| d.name == name)
                .expect("kernel");
            let kernel = def.build(&KernelParams::new(dtype, 8196)).expect("build");
            let mut best = (0usize, f64::INFINITY);
            for team in 1..=config.num_cores {
                let lowered = lower(&kernel, team, &config).expect("lower");
                let stats = simulate(&config, &lowered.program).expect("simulate");
                let e = energy_of(&stats, &model, &config).total();
                if e < best.1 {
                    best = (team, e);
                }
            }
            println!(
                "{:<14} {:<16} {:>6} {:>7}/{:<2} {:>14.4}",
                cluster_name,
                name,
                dtype.to_string(),
                best.0,
                config.num_cores,
                best.1 * 1e-9
            );
            rows.push(Row {
                cluster: cluster_name.clone(),
                kernel: name.to_string(),
                dtype: dtype.to_string(),
                optimal_cores: best.0,
                max_cores: config.num_cores,
                energy_at_optimum_uj: best.1 * 1e-9,
            });
        }
    }

    println!("\nshape checks:");
    let opt = |cluster: &str, kernel: &str| {
        rows.iter()
            .find(|r| r.cluster.starts_with(cluster) && r.kernel == kernel)
            .map(|r| r.optimal_cores)
            .unwrap_or(0)
    };
    println!(
        "  fpu_storm/f32 optimum tracks the FPU count: 8c2f={} 8c4f={} 16c8f={}",
        opt("8c2f", "fpu_storm"),
        opt("8c4f", "fpu_storm"),
        opt("16c8f", "fpu_storm")
    );
    println!(
        "  bank_hammer stays low everywhere: 8c4f={} 16c8f={}",
        opt("8c4f", "bank_hammer"),
        opt("16c8f", "bank_hammer")
    );
    args.dump_json(&rows);
    // The manifest records the paper-shape baseline; the alternative
    // cluster shapes are derived from it in `shapes()`.
    args.write_manifest("cluster_sweep", &args.pipeline_options(), None, start);
}

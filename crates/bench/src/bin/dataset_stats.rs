//! E2 — §IV-B dataset statistics.
//!
//! The paper reports 448 samples with "a class unbalance between 5% and
//! 15%, except for the class with label 8 which accounts for the 34.8% of
//! the samples collection". This experiment regenerates the class
//! distribution of our measured dataset, plus per-suite and per-dtype
//! breakdowns.

use pulp_bench::{load_or_build_dataset, CommonArgs};
use pulp_energy::report::render_class_distribution;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Debug, Serialize)]
struct Record {
    total_samples: usize,
    class_counts: Vec<usize>,
    class_shares: Vec<f64>,
    by_suite: BTreeMap<String, usize>,
    by_dtype: BTreeMap<String, usize>,
    mean_label_by_payload: BTreeMap<usize, f64>,
}

fn main() {
    let start = std::time::Instant::now();
    let args = CommonArgs::parse();
    let opts = args.pipeline_options();
    let data = load_or_build_dataset(&opts, &args);

    println!("E2 / §IV-B — dataset statistics\n");
    println!("samples: {} (paper: 448)", data.len());
    let counts = data.class_counts();
    println!("\nminimum-energy class distribution:");
    print!("{}", render_class_distribution(&counts));

    let total = data.len() as f64;
    let shares: Vec<f64> = counts.iter().map(|&c| c as f64 / total).collect();
    println!(
        "\nlargest class: {} cores with {:.1}% (paper: class 8 at 34.8%)",
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i + 1)
            .unwrap_or(0),
        shares.iter().cloned().fold(0.0, f64::max) * 100.0
    );

    let mut by_suite: BTreeMap<String, usize> = BTreeMap::new();
    let mut by_dtype: BTreeMap<String, usize> = BTreeMap::new();
    for s in &data.samples {
        *by_suite.entry(s.suite.to_string()).or_insert(0) += 1;
        *by_dtype.entry(s.dtype.to_string()).or_insert(0) += 1;
    }
    println!("\nby suite: {by_suite:?}");
    println!("by dtype: {by_dtype:?}");

    // Problem size influences the optimum: report the mean optimal core
    // count per payload size.
    let mut by_payload: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
    for s in &data.samples {
        let e = by_payload.entry(s.payload_bytes).or_insert((0, 0));
        e.0 += s.label + 1;
        e.1 += 1;
    }
    println!("\nmean optimal cores by payload size:");
    let mut mean_label_by_payload = BTreeMap::new();
    for (size, (sum, n)) in &by_payload {
        let mean = *sum as f64 / *n as f64;
        println!("  {size:>6} B: {mean:.2} cores");
        mean_label_by_payload.insert(*size, mean);
    }

    args.dump_json(&Record {
        total_samples: data.len(),
        class_counts: counts.to_vec(),
        class_shares: shares,
        by_suite,
        by_dtype,
        mean_label_by_payload,
    });
    args.write_manifest("dataset_stats", &opts, None, start);
}

//! E3 — Figure 2 (left): classification accuracy vs energy tolerance for
//! static (AGG) features, dynamic features, and the naive always-8 policy.
//!
//! Expected shape (paper): the decision tree always beats always-8; AGG
//! static features exceed 75% accuracy at 5% tolerance; dynamic features
//! sit above static ones by a bounded margin.

use pulp_bench::{load_or_build_dataset, CommonArgs};
use pulp_energy::{
    always_n_curve, default_tolerances, report::render_curves, tolerance_curve, StaticFeatureSet,
};

fn main() {
    let start = std::time::Instant::now();
    let args = CommonArgs::parse();
    let opts = args.pipeline_options();
    let data = load_or_build_dataset(&opts, &args);
    let protocol = args.protocol();
    let tolerances = default_tolerances();
    let energies = data.energies();

    if !args.quiet {
        args.logger().info(
            "fig2-left",
            "cross-validating",
            &[
                ("folds", protocol.folds.to_string()),
                ("repeats", protocol.repeats.to_string()),
                ("samples", data.len().to_string()),
            ],
        );
    }

    let agg = data
        .static_dataset(StaticFeatureSet::Agg)
        .expect("static dataset");
    let static_curve = tolerance_curve("static(AGG)", &agg, &energies, &tolerances, &protocol);

    let dyn_data = data.dynamic_dataset().expect("dynamic dataset");
    let dynamic_curve = tolerance_curve("dynamic", &dyn_data, &energies, &tolerances, &protocol);

    let naive = always_n_curve(8, &energies, &tolerances);

    let curves = vec![static_curve, dynamic_curve, naive];
    println!("E3 / Figure 2 (left) — accuracy vs energy tolerance\n");
    print!("{}", render_curves(&curves));

    println!("\nshape checks:");
    let at = |i: usize, t: f64| curves[i].at(t).expect("non-empty tolerance grid");
    let s0 = at(0, 0.0);
    let s5 = at(0, 0.05);
    let d5 = at(1, 0.05);
    let n5 = at(2, 0.05);
    println!("  static(AGG) @5%  = {:.1}%  (paper: >75%)", s5 * 100.0);
    println!("  static(AGG) @0%  = {:.1}%", s0 * 100.0);
    println!("  dynamic     @5%  = {:.1}%", d5 * 100.0);
    println!("  always-8    @5%  = {:.1}%", n5 * 100.0);
    println!(
        "  tree beats always-8 at every tolerance: {}",
        curves[0].tolerances.iter().all(|&t| at(0, t) >= at(2, t))
    );
    args.dump_json(&curves);
    args.write_manifest("fig2_left", &opts, Some(&protocol), start);
}

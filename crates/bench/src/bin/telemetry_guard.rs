//! `telemetry_guard` — keeps the telemetry hooks zero-cost.
//!
//! `simulate` monomorphises its generic telemetry parameter with
//! [`NoTelemetry`], whose hooks are empty `#[inline(always)]` methods, so
//! the instrumented loop must compile to the uninstrumented one. This
//! guard measures both entry points on the same workload, interleaved, and
//! compares medians: a real regression (someone making the hooks
//! non-inlinable or adding work outside them) shows up as a stable gap.
//!
//! ```text
//! telemetry_guard [--iters N] [--threshold PCT] [--strict]
//! ```
//!
//! Exits nonzero only with `--strict` (CI noise on shared runners makes a
//! hard default gate flaky; the 2% threshold is the contract).

use kernel_ir::{lower, DType};
use pulp_kernels::{registry, KernelParams};
use pulp_sim::{
    simulate_instrumented, simulate_traced, ClusterConfig, NoTelemetry, NullSink, Program,
};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    iters: usize,
    threshold: f64,
    strict: bool,
}

fn parse_args() -> Option<Args> {
    let mut args = Args {
        iters: 21,
        threshold: 2.0,
        strict: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--iters" => args.iters = argv.next()?.parse().ok()?,
            "--threshold" => args.threshold = argv.next()?.parse().ok()?,
            "--strict" => args.strict = true,
            other => {
                eprintln!("unknown argument {other}");
                return None;
            }
        }
    }
    Some(args)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn workload(config: &ClusterConfig) -> Program {
    let defs = registry();
    let def = defs
        .iter()
        .find(|d| d.name == "gemm")
        .expect("gemm in registry");
    // Large enough that one run takes tens of milliseconds: timing noise on
    // a shared runner stays well under the threshold being enforced.
    let kernel = def
        .build(&KernelParams::new(DType::F32, 32768))
        .expect("gemm instantiates");
    lower(&kernel, 8, config).expect("gemm lowers").program
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        eprintln!("usage: telemetry_guard [--iters N] [--threshold PCT] [--strict]");
        return ExitCode::FAILURE;
    };
    let config = ClusterConfig::default();
    let program = workload(&config);

    // Warm up both paths once.
    let baseline_stats =
        simulate_traced(&config, &program, 100_000_000, &mut NullSink).expect("simulate");
    let hooked_stats = simulate_instrumented(
        &config,
        &program,
        100_000_000,
        &mut NullSink,
        &mut NoTelemetry,
    )
    .expect("simulate");
    assert_eq!(baseline_stats, hooked_stats, "both entry points must agree");

    let mut base = Vec::with_capacity(args.iters);
    let mut hooked = Vec::with_capacity(args.iters);
    for _ in 0..args.iters {
        let t = Instant::now();
        let s = simulate_traced(&config, &program, 100_000_000, &mut NullSink).expect("simulate");
        base.push(t.elapsed().as_secs_f64());
        std::hint::black_box(s.cycles);

        let t = Instant::now();
        let s = simulate_instrumented(
            &config,
            &program,
            100_000_000,
            &mut NullSink,
            &mut NoTelemetry,
        )
        .expect("simulate");
        hooked.push(t.elapsed().as_secs_f64());
        std::hint::black_box(s.cycles);
    }

    let cycles = baseline_stats.cycles as f64;
    let m_base = median(base);
    let m_hooked = median(hooked);
    let delta_pct = 100.0 * (m_hooked - m_base) / m_base;
    println!(
        "workload: gemm f32 32768B team 8 ({} cycles)",
        baseline_stats.cycles
    );
    println!(
        "baseline (simulate):              median {:>9.3} ms  {:>8.2} Mcycles/s",
        m_base * 1e3,
        cycles / m_base / 1e6
    );
    println!(
        "no-op telemetry (instrumented):   median {:>9.3} ms  {:>8.2} Mcycles/s",
        m_hooked * 1e3,
        cycles / m_hooked / 1e6
    );
    println!("delta: {delta_pct:+.2}% (threshold {:.2}%)", args.threshold);

    if delta_pct > args.threshold {
        eprintln!(
            "telemetry overhead exceeds the {:.2}% contract",
            args.threshold
        );
        if args.strict {
            return ExitCode::FAILURE;
        }
    } else {
        println!("OK: no-op telemetry is within the contract");
    }
    ExitCode::SUCCESS
}

//! Exports the measured dataset as CSV for external analysis
//! (spreadsheets, pandas, R) — one row per sample with identity columns,
//! the full static feature vector, the per-class energies and the label.
//!
//! ```text
//! cargo run --release -p pulp-bench --bin dataset_export            # stdout
//! cargo run --release -p pulp-bench --bin dataset_export -- --json d.json
//! ```
//!
//! (`--json` dumps the raw `LabeledDataset` record instead of CSV.)

use pulp_bench::{load_or_build_dataset, CommonArgs};
use pulp_energy::{dynamic_feature_names, static_feature_names};

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn main() {
    let start = std::time::Instant::now();
    let args = CommonArgs::parse();
    let opts = args.pipeline_options();
    let data = load_or_build_dataset(&opts, &args);

    // Header.
    let mut cols: Vec<String> = vec![
        "id".into(),
        "kernel".into(),
        "suite".into(),
        "dtype".into(),
        "payload_bytes".into(),
        "label_cores".into(),
    ];
    cols.extend((1..=8).map(|c| format!("energy_fj_{c}c")));
    cols.extend((1..=8).map(|c| format!("cycles_{c}c")));
    cols.extend(static_feature_names());
    cols.extend(dynamic_feature_names());
    println!("{}", cols.join(","));

    for s in &data.samples {
        let mut row: Vec<String> = vec![
            csv_escape(&s.id),
            csv_escape(&s.kernel),
            s.suite.to_string(),
            s.dtype.to_string(),
            s.payload_bytes.to_string(),
            (s.label + 1).to_string(),
        ];
        row.extend(s.energy.iter().map(|e| format!("{e}")));
        row.extend(s.cycles.iter().map(|c| c.to_string()));
        row.extend(s.static_x.iter().map(|v| format!("{v}")));
        row.extend(s.dynamic_x.iter().map(|v| format!("{v}")));
        println!("{}", row.join(","));
    }
    if !args.quiet {
        args.logger().info(
            "export",
            "rows written to stdout",
            &[
                ("rows", data.len().to_string()),
                ("columns", cols.len().to_string()),
            ],
        );
    }
    args.dump_json(&data);
    args.write_manifest("dataset_export", &opts, None, start);
}

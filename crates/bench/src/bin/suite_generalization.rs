//! E12 (extension) — leave-one-suite-out generalisation.
//!
//! The paper's 10-fold CV mixes samples from all three suites, so a
//! kernel's sibling instantiations (other sizes/dtypes) can appear in the
//! training folds. This experiment asks the harder question a deployed
//! predictor faces: **does the model generalise to kernel families it has
//! never seen?** Train on two suites, test on the third — and, stricter
//! still, leave single kernels out entirely.

use pulp_bench::{load_or_build_dataset, CommonArgs};
use pulp_energy::StaticFeatureSet;
use pulp_ml::{tolerance_accuracy, DecisionTree, TreeParams};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    held_out: String,
    test_samples: usize,
    acc_at_0: f64,
    acc_at_5: f64,
    acc_at_10: f64,
}

fn main() {
    let start = std::time::Instant::now();
    let args = CommonArgs::parse();
    let opts = args.pipeline_options();
    let data = load_or_build_dataset(&opts, &args);
    let all = data.static_dataset(StaticFeatureSet::All).expect("static");
    let energies = data.energies();

    let eval = |test_rows: &[usize], train_rows: &[usize]| -> (f64, f64, f64) {
        let mut tree = DecisionTree::new(TreeParams::default());
        tree.fit_rows(&all, train_rows);
        let preds: Vec<usize> = test_rows
            .iter()
            .map(|&r| tree.predict(all.row(r)))
            .collect();
        let e: Vec<Vec<f64>> = test_rows.iter().map(|&r| energies[r].clone()).collect();
        (
            tolerance_accuracy(&preds, &e, 0.0),
            tolerance_accuracy(&preds, &e, 0.05),
            tolerance_accuracy(&preds, &e, 0.10),
        )
    };

    println!("E12 — leave-one-suite-out generalisation (static ALL features)\n");
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8}",
        "held-out", "samples", "acc@0%", "acc@5%", "acc@10%"
    );
    let mut rows = Vec::new();
    for suite in ["polybench", "utdsp", "custom"] {
        let test: Vec<usize> = (0..data.len())
            .filter(|&i| data.samples[i].suite.to_string() == suite)
            .collect();
        let train: Vec<usize> = (0..data.len())
            .filter(|&i| data.samples[i].suite.to_string() != suite)
            .collect();
        let (a0, a5, a10) = eval(&test, &train);
        println!(
            "{:<22} {:>8} {:>7.1}% {:>7.1}% {:>7.1}%",
            format!("suite:{suite}"),
            test.len(),
            a0 * 100.0,
            a5 * 100.0,
            a10 * 100.0
        );
        rows.push(Row {
            held_out: format!("suite:{suite}"),
            test_samples: test.len(),
            acc_at_0: a0,
            acc_at_5: a5,
            acc_at_10: a10,
        });
    }

    // Leave-one-kernel-out over every kernel, aggregated.
    let kernels: std::collections::BTreeSet<String> =
        data.samples.iter().map(|s| s.kernel.clone()).collect();
    let mut loko_preds: Vec<usize> = Vec::new();
    let mut loko_energy: Vec<Vec<f64>> = Vec::new();
    for kernel in &kernels {
        let test: Vec<usize> = (0..data.len())
            .filter(|&i| &data.samples[i].kernel == kernel)
            .collect();
        let train: Vec<usize> = (0..data.len())
            .filter(|&i| &data.samples[i].kernel != kernel)
            .collect();
        let mut tree = DecisionTree::new(TreeParams::default());
        tree.fit_rows(&all, &train);
        for &r in &test {
            loko_preds.push(tree.predict(all.row(r)));
            loko_energy.push(energies[r].clone());
        }
    }
    let a0 = tolerance_accuracy(&loko_preds, &loko_energy, 0.0);
    let a5 = tolerance_accuracy(&loko_preds, &loko_energy, 0.05);
    let a10 = tolerance_accuracy(&loko_preds, &loko_energy, 0.10);
    println!(
        "{:<22} {:>8} {:>7.1}% {:>7.1}% {:>7.1}%",
        "kernel (LOKO, pooled)",
        loko_preds.len(),
        a0 * 100.0,
        a5 * 100.0,
        a10 * 100.0
    );
    rows.push(Row {
        held_out: "kernel:LOKO".into(),
        test_samples: loko_preds.len(),
        acc_at_0: a0,
        acc_at_5: a5,
        acc_at_10: a10,
    });

    println!("\nshape checks:");
    let within_suite = rows
        .iter()
        .take(3)
        .map(|r| r.acc_at_5)
        .fold(f64::INFINITY, f64::min);
    println!(
        "  worst held-out-suite acc@5%: {:.1}%",
        within_suite * 100.0
    );
    println!(
        "  LOKO acc@5% {:.1}% vs mixed-CV ~94%: unseen-kernel generalisation is the hard case",
        a5 * 100.0
    );
    args.dump_json(&rows);
    args.write_manifest("suite_generalization", &opts, None, start);
}

//! E7 (ablation) — which platform mechanisms create the labels?
//!
//! DESIGN.md claims the energy/parallelism trade-off is driven by clock
//! gating, FPU sharing and TCDM bank conflicts. This experiment relabels
//! the dataset with each mechanism disabled and reports how the class
//! distribution and the labels move. If an ablated platform leaves labels
//! unchanged, that mechanism was irrelevant — the paper's premise would
//! not hold on our substrate.

use pulp_bench::{CommonArgs, QUICK_KERNELS};
use pulp_energy::pipeline::{LabeledDataset, PipelineOptions};
use pulp_energy::report::render_class_distribution;
use pulp_sim::ClusterConfig;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Debug, Serialize)]
struct AblationRecord {
    name: String,
    class_counts: Vec<usize>,
    label_agreement_with_baseline: f64,
    mean_label: f64,
}

fn build(name: &str, config: ClusterConfig, args: &CommonArgs) -> LabeledDataset {
    let mut opts = if args.quick {
        PipelineOptions::quick(QUICK_KERNELS)
    } else {
        PipelineOptions {
            // The ablation sweep rebuilds the dataset 4x; keep the full
            // kernel set but the two payload extremes unless --quick.
            payload_sizes: vec![512, 32768],
            ..PipelineOptions::default()
        }
    };
    opts.threads = args.threads;
    opts.config = config;
    if !args.quiet {
        args.logger().info(
            "ablation",
            "building dataset",
            &[("variant", name.to_string())],
        );
    }
    LabeledDataset::build(&opts).expect("dataset build failed")
}

fn main() {
    let start = std::time::Instant::now();
    let args = CommonArgs::parse();
    let base_cfg = ClusterConfig::default();
    let variants: Vec<(&str, ClusterConfig)> = vec![
        ("baseline", base_cfg.clone()),
        ("no-clock-gating", base_cfg.clone().without_clock_gating()),
        (
            "no-fpu-contention",
            base_cfg.clone().without_fpu_contention(),
        ),
        (
            "no-bank-conflicts",
            base_cfg.clone().without_bank_conflicts(),
        ),
    ];

    let mut datasets: BTreeMap<&str, LabeledDataset> = BTreeMap::new();
    for (name, cfg) in &variants {
        datasets.insert(name, build(name, cfg.clone(), &args));
    }
    let baseline = &datasets["baseline"];
    let base_labels = baseline.labels();

    println!(
        "E7 — platform-mechanism ablation ({} samples per variant)\n",
        baseline.len()
    );
    let mut records = Vec::new();
    for (name, _) in &variants {
        let d = &datasets[name];
        let labels = d.labels();
        let agree = labels
            .iter()
            .zip(&base_labels)
            .filter(|(a, b)| a == b)
            .count() as f64
            / labels.len() as f64;
        let mean = labels.iter().map(|&l| (l + 1) as f64).sum::<f64>() / labels.len() as f64;
        println!("--- {name} ---");
        print!("{}", render_class_distribution(&d.class_counts()));
        println!("label agreement with baseline: {:.1}%", agree * 100.0);
        println!("mean optimal cores: {mean:.2}\n");
        records.push(AblationRecord {
            name: name.to_string(),
            class_counts: d.class_counts().to_vec(),
            label_agreement_with_baseline: agree,
            mean_label: mean,
        });
    }

    println!("shape checks:");
    let mean_of = |n: &str| {
        records
            .iter()
            .find(|r| r.name == n)
            .map(|r| r.mean_label)
            .unwrap_or(0.0)
    };
    println!(
        "  removing clock gating changes labels ({}% agreement)",
        (records
            .iter()
            .find(|r| r.name == "no-clock-gating")
            .map(|r| r.label_agreement_with_baseline)
            .unwrap_or(1.0)
            * 100.0)
            .round()
    );
    println!(
        "  removing FPU contention pushes optima to more cores: {:.2} -> {:.2}",
        mean_of("baseline"),
        mean_of("no-fpu-contention")
    );
    println!(
        "  removing bank conflicts pushes optima to more cores: {:.2} -> {:.2}",
        mean_of("baseline"),
        mean_of("no-bank-conflicts")
    );
    args.dump_json(&records);

    // The manifest records the *baseline* configuration; the ablated
    // variants are derived from it deterministically.
    let mut manifest_opts = args.pipeline_options();
    manifest_opts.config = base_cfg;
    args.write_manifest("ablation_platform", &manifest_opts, None, start);
}

//! E10 (extension) — learning curve: how many measured samples does the
//! static classifier need?
//!
//! Building the training set is the expensive part of the paper's pipeline
//! (each sample costs 8 cycle-accurate simulations). This experiment
//! trains on a growing stratified fraction of the dataset and tests on
//! the held-out remainder, answering how quickly accuracy saturates —
//! i.e. how much smaller the paper's measurement campaign could have been.

use pulp_bench::{load_or_build_dataset, CommonArgs};
use pulp_energy::StaticFeatureSet;
use pulp_ml::{
    mean_std, parallel_seeds, stratified_folds, tolerance_accuracy, DecisionTree, TreeParams,
};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    train_fraction: f64,
    train_samples: usize,
    acc_at_0_mean: f64,
    acc_at_0_std: f64,
    acc_at_5_mean: f64,
    acc_at_5_std: f64,
}

fn main() {
    let start = std::time::Instant::now();
    let args = CommonArgs::parse();
    let opts = args.pipeline_options();
    let data = load_or_build_dataset(&opts, &args);
    let protocol = args.protocol();
    let all = data.static_dataset(StaticFeatureSet::All).expect("static");
    let energies = data.energies();

    // 10 stratified folds; training on the first `k` of them sweeps the
    // fraction in 10% steps while keeping class balance.
    let folds_per_step = 10usize;
    let repeats = protocol.repeats.clamp(3, 30);

    println!("E10 — learning curve (static ALL features, {repeats} repetitions)\n");
    println!(
        "{:>10} {:>9} {:>16} {:>16}",
        "fraction", "samples", "acc@0% (std)", "acc@5% (std)"
    );
    let mut points = Vec::new();
    for train_folds in 1..folds_per_step {
        // Each repetition derives everything from its index, so fanning
        // them over `--cv-threads` workers is deterministic.
        let reps = parallel_seeds(repeats, protocol.cv_threads, |rep| {
            let folds = stratified_folds(all.labels(), folds_per_step, rep as u64);
            let train: Vec<usize> = folds[..train_folds].iter().flatten().copied().collect();
            let test: Vec<usize> = folds[train_folds..].iter().flatten().copied().collect();
            let mut tree = DecisionTree::new(TreeParams::default());
            tree.fit_rows(&all, &train);
            let preds: Vec<usize> = test.iter().map(|&r| tree.predict(all.row(r))).collect();
            let test_energies: Vec<Vec<f64>> = test.iter().map(|&r| energies[r].clone()).collect();
            (
                train.len(),
                tolerance_accuracy(&preds, &test_energies, 0.0),
                tolerance_accuracy(&preds, &test_energies, 0.05),
            )
        });
        let train_samples = reps.last().map_or(0, |r| r.0);
        let acc0: Vec<f64> = reps.iter().map(|r| r.1).collect();
        let acc5: Vec<f64> = reps.iter().map(|r| r.2).collect();
        let (m0, s0) = mean_std(&acc0);
        let (m5, s5) = mean_std(&acc5);
        let fraction = train_folds as f64 / folds_per_step as f64;
        println!(
            "{:>9.0}% {:>9} {:>9.1}% ({:>4.1}) {:>9.1}% ({:>4.1})",
            fraction * 100.0,
            train_samples,
            m0 * 100.0,
            s0 * 100.0,
            m5 * 100.0,
            s5 * 100.0
        );
        points.push(Point {
            train_fraction: fraction,
            train_samples,
            acc_at_0_mean: m0,
            acc_at_0_std: s0,
            acc_at_5_mean: m5,
            acc_at_5_std: s5,
        });
    }

    println!("\nshape checks:");
    let first = points.first().expect("points");
    let last = points.last().expect("points");
    println!(
        "  accuracy grows with data: {:.1}% -> {:.1}% @5% tolerance",
        first.acc_at_5_mean * 100.0,
        last.acc_at_5_mean * 100.0
    );
    let half = &points[points.len() / 2];
    println!(
        "  half the dataset already reaches {:.1}% of the full-data accuracy",
        100.0 * half.acc_at_5_mean / last.acc_at_5_mean
    );
    args.dump_json(&points);
    args.write_manifest("learning_curve", &opts, Some(&protocol), start);
}

//! `pulp_cli` — command-line front end to the whole stack.
//!
//! ```text
//! pulp_cli list                                   # dataset kernels
//! pulp_cli pretty   <kernel> [--dtype d] [--size n]   # pseudo-C source
//! pulp_cli features <kernel> [--dtype d] [--size n]   # static features
//! pulp_cli disasm   <kernel> [--team t] [...]         # lowered program
//! pulp_cli measure  <kernel> [...]                    # energy at 1..=8 cores
//! pulp_cli classify <kernel> [...]                    # train + predict
//! pulp_cli mca      <kernel> [...]                    # LLVM-MCA-style report
//! pulp_cli profile  <kernel> [...]                    # stall causes + energy, 1..=8 cores
//! pulp_cli trace    <kernel> [--team t] [...]         # GVSOC-style trace
//! pulp_cli trace    <kernel> --chrome out.json [...]  # Chrome trace-event JSON
//! pulp_cli cache    stats --cache-dir DIR             # sweep-cache usage
//! pulp_cli cache    clear --cache-dir DIR             # delete cached sweeps
//! pulp_cli serve    [--addr HOST:PORT] [--full]       # HTTP prediction service
//! pulp_cli bench    diff OLD.json NEW.json            # accuracy-regression gate
//! pulp_cli bench    sim [--quick] [--out PATH]        # simulator perf benchmark
//! ```
//!
//! Defaults: `--dtype f32` (or the kernel's only supported type),
//! `--size 2048`, `--team 4`, `--addr 127.0.0.1:7878`,
//! `--max-cycles 100000000` for profile/trace runs.
//!
//! `bench sim` runs the fixed kernel basket (ALU-bound, TCDM-conflict,
//! barrier/DMA-heavy, FP-contended) at 1/2/4/8 cores with the event-horizon
//! fast-forward and the single-step oracle, verifies the two agree
//! bit-for-bit, and writes `BENCH_sim.json` (override with `--out`).

use kernel_ir::{lower, DType, Kernel};
use pulp_bench::serve::{ServeState, Server};
use pulp_bench::{profile_run, recorder_of_run, run_sim_bench, SimBenchOptions, QUICK_KERNELS};
use pulp_energy::{
    default_cache_version, measure_kernel,
    pipeline::{LabeledDataset, PipelineOptions},
    static_feature_names, static_feature_vector, StaticFeatureSet, SweepCache,
};
use pulp_energy_model::{energy_waterfall, EnergyModel};
use pulp_kernels::{registry, KernelDef, KernelParams};
use pulp_ml::{DecisionTree, TreeParams};
use pulp_sim::{simulate_traced, ClusterConfig, TextSink};
use serde::Value;
use std::process::ExitCode;
use std::sync::Arc;

#[derive(Debug)]
struct Args {
    command: String,
    kernel: Option<String>,
    /// Positional arguments after the first (e.g. `bench diff` paths).
    rest: Vec<String>,
    dtype: Option<DType>,
    size: usize,
    team: usize,
    chrome: Option<String>,
    cache_dir: Option<String>,
    addr: Option<String>,
    full: bool,
    quick: bool,
    out: Option<String>,
    max_cycles: Option<u64>,
}

fn parse_args() -> Option<Args> {
    parse_from(std::env::args().skip(1))
}

fn parse_from(mut argv: impl Iterator<Item = String>) -> Option<Args> {
    let command = argv.next()?;
    let mut args = Args {
        command,
        kernel: None,
        rest: Vec::new(),
        dtype: None,
        size: 2048,
        team: 4,
        chrome: None,
        cache_dir: None,
        addr: None,
        full: false,
        quick: false,
        out: None,
        max_cycles: None,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--chrome" => args.chrome = Some(argv.next()?),
            "--cache-dir" => args.cache_dir = Some(argv.next()?),
            "--addr" => args.addr = Some(argv.next()?),
            "--full" => args.full = true,
            "--quick" => args.quick = true,
            "--out" => args.out = Some(argv.next()?),
            "--max-cycles" => {
                let raw = argv.next()?;
                match raw.parse::<u64>() {
                    Ok(n) if n > 0 => args.max_cycles = Some(n),
                    _ => {
                        eprintln!("--max-cycles expects a positive integer, got {raw:?}");
                        return None;
                    }
                }
            }
            "--dtype" => {
                args.dtype = match argv.next().as_deref() {
                    Some("i32") => Some(DType::I32),
                    Some("f32") => Some(DType::F32),
                    other => {
                        eprintln!("unknown dtype {other:?} (use i32 or f32)");
                        return None;
                    }
                };
            }
            "--size" => args.size = argv.next()?.parse().ok()?,
            "--team" => args.team = argv.next()?.parse().ok()?,
            other if !other.starts_with("--") && args.kernel.is_none() => {
                args.kernel = Some(other.to_string());
            }
            other if !other.starts_with("--") => {
                args.rest.push(other.to_string());
            }
            other => {
                eprintln!("unknown argument {other}");
                return None;
            }
        }
    }
    Some(args)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: pulp_cli <list|pretty|features|disasm|measure|classify|mca|profile|trace> \
         [kernel] [--dtype i32|f32] [--size BYTES] [--team N] [--chrome OUT.json]\n   \
         or: pulp_cli cache <stats|clear> --cache-dir DIR\n   \
         or: pulp_cli serve [--addr HOST:PORT] [--full] [--cache-dir DIR]\n   \
         or: pulp_cli bench diff OLD.json NEW.json\n   \
         or: pulp_cli bench sim [--quick] [--out PATH] [--max-cycles N]"
    );
    ExitCode::FAILURE
}

/// Default cycle budget for interactive `profile`/`trace` runs
/// (override with `--max-cycles`).
const DEFAULT_RUN_BUDGET: u64 = 100_000_000;

/// Maximum tolerated accuracy drop between baseline and candidate before
/// `bench diff` fails: one percentage point.
const REGRESSION_TOLERANCE: f64 = 0.01;

/// Compares two `BENCH_headline.json` records field-by-field over their
/// `accuracy` maps; returns the regressions found.
fn bench_regressions(old: &Value, new: &Value) -> Result<Vec<String>, String> {
    let old_acc = old
        .field("accuracy")
        .and_then(Value::as_map)
        .map_err(|e| format!("baseline: {e}"))?;
    let new_acc = new
        .field("accuracy")
        .and_then(Value::as_map)
        .map_err(|e| format!("candidate: {e}"))?;
    let mut regressions = Vec::new();
    for (name, old_v) in old_acc {
        let Ok(old_v) = old_v.as_f64() else { continue };
        let Some(new_v) = new_acc
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_f64().ok())
        else {
            regressions.push(format!("{name}: missing from candidate"));
            continue;
        };
        if new_v < old_v - REGRESSION_TOLERANCE {
            regressions.push(format!(
                "{name}: {:.1}% -> {:.1}% (drop {:.1} pts > {:.0} pt tolerance)",
                old_v * 100.0,
                new_v * 100.0,
                (old_v - new_v) * 100.0,
                REGRESSION_TOLERANCE * 100.0
            ));
        }
    }
    Ok(regressions)
}

fn cmd_bench_diff(old_path: &str, new_path: &str) -> ExitCode {
    let load = |path: &str| -> Result<Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    match bench_regressions(&old, &new) {
        Ok(regressions) if regressions.is_empty() => {
            println!("bench diff: no accuracy regressions ({old_path} -> {new_path})");
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            eprintln!("bench diff: {} accuracy regression(s):", regressions.len());
            for r in &regressions {
                eprintln!("  {r}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench diff: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the simulator performance benchmark and writes `BENCH_sim.json`
/// (or `--out PATH`). Fails if any fast-forward run diverges from its
/// single-step oracle or if the barrier/DMA basket never skips a cycle.
fn cmd_bench_sim(args: &Args) -> ExitCode {
    let mut opts = if args.quick {
        SimBenchOptions::quick()
    } else {
        SimBenchOptions::default()
    };
    if let Some(n) = args.max_cycles {
        opts.max_cycles = n;
    }
    eprintln!(
        "bench sim: {} run ({} baskets x {} team sizes, {} timing iteration(s))...",
        if opts.quick { "quick" } else { "full" },
        pulp_bench::sim_bench::BASKETS.len(),
        pulp_bench::sim_bench::TEAM_SIZES.len(),
        opts.iters
    );
    let report = run_sim_bench(&opts);
    print!("{}", report.render_table());
    let out_path = args.out.as_deref().unwrap_or("BENCH_sim.json");
    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench sim: cannot serialise report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(out_path, json) {
        eprintln!("bench sim: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    match report.verify() {
        Ok(()) => {
            println!("bench sim: all runs bit-identical to the single-step oracle");
            ExitCode::SUCCESS
        }
        Err(problems) => {
            eprintln!("bench sim: {} invariant violation(s):", problems.len());
            for p in &problems {
                eprintln!("  {p}");
            }
            ExitCode::FAILURE
        }
    }
}

fn cmd_serve(args: &Args) -> ExitCode {
    let mut opts = if args.full {
        PipelineOptions::default()
    } else {
        PipelineOptions::quick(QUICK_KERNELS)
    };
    if let Some(dir) = &args.cache_dir {
        match SweepCache::new(dir) {
            Ok(cache) => opts.cache = Some(Arc::new(cache)),
            Err(e) => eprintln!("warning: cannot open cache dir {dir}: {e}; continuing uncached"),
        }
    }
    eprintln!(
        "[serve] training {} model (this simulates the training sweep unless cached)...",
        if args.full { "full" } else { "quick" }
    );
    let state = Arc::new(ServeState::train(&opts));
    let addr = args.addr.as_deref().unwrap_or("127.0.0.1:7878");
    let server = match Server::bind(addr, state) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[serve] listening on {} — POST /predict, GET /metrics, GET /healthz, GET /manifest",
        server.addr
    );
    server.run();
    ExitCode::SUCCESS
}

fn find_kernel<'a>(defs: &'a [KernelDef], name: &str) -> Option<&'a KernelDef> {
    let found = defs.iter().find(|d| d.name == name);
    if found.is_none() {
        eprintln!("unknown kernel `{name}`; run `pulp_cli list`");
    }
    found
}

fn instantiate(def: &KernelDef, args: &Args) -> Option<Kernel> {
    let dtype = args.dtype.unwrap_or_else(|| {
        if def.supports(DType::F32) {
            DType::F32
        } else {
            DType::I32
        }
    });
    if !def.supports(dtype) {
        eprintln!("kernel {} does not support {dtype}", def.name);
        return None;
    }
    match def.build(&KernelParams::new(dtype, args.size)) {
        Ok(k) => Some(k),
        Err(e) => {
            eprintln!("cannot instantiate {}: {e}", def.name);
            None
        }
    }
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    let defs = registry();
    let config = ClusterConfig::default();

    match args.command.as_str() {
        "list" => {
            println!("{:<24} {:<10} dtypes", "kernel", "suite");
            for d in &defs {
                let dtypes: Vec<String> = d.dtypes.iter().map(|t| t.to_string()).collect();
                println!(
                    "{:<24} {:<10} {}",
                    d.name,
                    d.suite.to_string(),
                    dtypes.join(",")
                );
            }
            ExitCode::SUCCESS
        }
        "pretty" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            print!("{kernel}");
            ExitCode::SUCCESS
        }
        "features" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            for (n, v) in static_feature_names()
                .iter()
                .zip(static_feature_vector(&kernel))
            {
                println!("{n:>10} = {v:.4}");
            }
            ExitCode::SUCCESS
        }
        "disasm" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            match lower(&kernel, args.team, &config) {
                Ok(lowered) => {
                    print!("{}", lowered.program.disassemble());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("lowering failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "measure" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            match measure_kernel(&kernel, &config, &EnergyModel::table1()) {
                Ok(profile) => {
                    println!(
                        "{:>6} {:>12} {:>10} {:>9}",
                        "cores", "energy [uJ]", "cycles", "speedup"
                    );
                    for c in 0..8 {
                        let mark = if c == profile.label() {
                            "  <== min energy"
                        } else {
                            ""
                        };
                        println!(
                            "{:>6} {:>12.4} {:>10} {:>8.2}x{mark}",
                            c + 1,
                            profile.energy[c] * 1e-9,
                            profile.cycles[c],
                            profile.speedup(c)
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("measurement failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "classify" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            eprintln!("training on the quick kernel set...");
            let data = match LabeledDataset::build(&PipelineOptions::quick(QUICK_KERNELS)) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("training-set build failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let ds = match data.static_dataset(StaticFeatureSet::All) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("dataset assembly failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut tree = DecisionTree::new(TreeParams::default());
            tree.fit(&ds);
            let predicted = tree.predict(&static_feature_vector(&kernel));
            println!(
                "predicted minimum-energy configuration: {} cores",
                predicted + 1
            );
            if let Ok(profile) = measure_kernel(&kernel, &config, &EnergyModel::table1()) {
                println!(
                    "simulated ground truth: {} cores (waste of prediction: {:.2}%)",
                    profile.label() + 1,
                    profile.waste(predicted) * 100.0
                );
            }
            ExitCode::SUCCESS
        }
        "mca" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            let block = pulp_mca::kernel_block(&kernel);
            let features = pulp_mca::analyze_block(&block, pulp_mca::DEFAULT_ITERATIONS);
            print!(
                "{}",
                pulp_mca::render_report(block.len(), pulp_mca::DEFAULT_ITERATIONS, &features)
            );
            ExitCode::SUCCESS
        }
        "profile" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            let model = EnergyModel::table1();
            for team in 1..=config.num_cores {
                let lowered = match lower(&kernel, team, &config) {
                    Ok(l) => l,
                    Err(e) => {
                        eprintln!("lowering failed at team {team}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let run = match profile_run(
                    &config,
                    &lowered.program,
                    args.max_cycles.unwrap_or(DEFAULT_RUN_BUDGET),
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("simulation failed at team {team}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = run.stats.check_consistency() {
                    eprintln!("attribution inconsistent at team {team}: {e}");
                    return ExitCode::FAILURE;
                }
                let attributed = run.stats.breakdown_totals().total();
                println!("== {name} team {team} ==");
                print!("{}", run.stats.summary());
                println!(
                    "attribution: {attributed} cycle-cells = {} cycles x {} cores (exclusive)",
                    run.stats.cycles,
                    run.stats.cores.len()
                );
                for r in &run.regions {
                    println!(
                        "  {:<12} cycles {:>8}..{:<8} ({} cycles, {} executed)",
                        r.label(),
                        r.start_cycle,
                        r.end_cycle,
                        r.cycles(),
                        r.breakdown.execute
                    );
                }
                print!("{}", energy_waterfall(&run.stats, &model, &config));
                println!();
            }
            ExitCode::SUCCESS
        }
        "trace" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            let lowered = match lower(&kernel, args.team, &config) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("lowering failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(path) = &args.chrome {
                let run = match profile_run(
                    &config,
                    &lowered.program,
                    args.max_cycles.unwrap_or(DEFAULT_RUN_BUDGET),
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("simulation failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let mut rec = recorder_of_run(&run);
                energy_waterfall(&run.stats, &EnergyModel::table1(), &config).record(&mut rec);
                let json = pulp_obs::chrome_trace(&rec, &format!("pulp_cli {name} t{}", args.team));
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "wrote {path}: {} cycles, {} spans (load in chrome://tracing or ui.perfetto.dev)",
                    run.stats.cycles,
                    rec.spans().len()
                );
                ExitCode::SUCCESS
            } else {
                let mut sink = TextSink::new();
                match simulate_traced(
                    &config,
                    &lowered.program,
                    args.max_cycles.unwrap_or(DEFAULT_RUN_BUDGET),
                    &mut sink,
                ) {
                    Ok(_) => {
                        print!("{}", sink.text);
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("simulation failed: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
        }
        "cache" => {
            let Some(action) = args.kernel.as_deref() else {
                return usage();
            };
            let Some(dir) = args.cache_dir.as_deref() else {
                eprintln!("cache {action}: --cache-dir DIR is required");
                return ExitCode::FAILURE;
            };
            let dir = std::path::Path::new(dir);
            match action {
                "stats" => match SweepCache::dir_stats(dir) {
                    Ok(stats) => {
                        println!("cache dir : {}", dir.display());
                        println!("version   : {}", default_cache_version());
                        println!("entries   : {}", stats.entries);
                        println!("size      : {} bytes", stats.bytes);
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("cannot read {}: {e}", dir.display());
                        ExitCode::FAILURE
                    }
                },
                "clear" => match SweepCache::clear(dir) {
                    Ok(removed) => {
                        println!("removed {removed} cached sweep(s) from {}", dir.display());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("cannot clear {}: {e}", dir.display());
                        ExitCode::FAILURE
                    }
                },
                _ => usage(),
            }
        }
        "serve" => cmd_serve(&args),
        "bench" => match args.kernel.as_deref() {
            Some("diff") if args.rest.len() == 2 => cmd_bench_diff(&args.rest[0], &args.rest[1]),
            Some("sim") if args.rest.is_empty() => cmd_bench_sim(&args),
            _ => usage(),
        },
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Option<Args> {
        parse_from(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_full_command_line() {
        let a = parse(&[
            "measure", "gemm", "--dtype", "i32", "--size", "512", "--team", "6",
        ])
        .expect("parse");
        assert_eq!(a.command, "measure");
        assert_eq!(a.kernel.as_deref(), Some("gemm"));
        assert_eq!(a.dtype, Some(DType::I32));
        assert_eq!(a.size, 512);
        assert_eq!(a.team, 6);
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["pretty", "fir"]).expect("parse");
        assert_eq!(a.dtype, None);
        assert_eq!(a.size, 2048);
        assert_eq!(a.team, 4);
    }

    #[test]
    fn rejects_bad_dtype_and_flags() {
        assert!(parse(&["measure", "gemm", "--dtype", "f64"]).is_none());
        assert!(parse(&["measure", "gemm", "--bogus"]).is_none());
        assert!(parse(&[]).is_none());
    }

    #[test]
    fn chrome_flag_takes_a_path() {
        let a = parse(&["trace", "fir", "--chrome", "out.json"]).expect("parse");
        assert_eq!(a.chrome.as_deref(), Some("out.json"));
        assert!(parse(&["trace", "fir", "--chrome"]).is_none());
    }

    #[test]
    fn serve_and_bench_subcommands_parse() {
        let a = parse(&["serve", "--addr", "0.0.0.0:9000", "--full"]).expect("parse");
        assert_eq!(a.command, "serve");
        assert_eq!(a.addr.as_deref(), Some("0.0.0.0:9000"));
        assert!(a.full);

        let a = parse(&["bench", "diff", "old.json", "new.json"]).expect("parse");
        assert_eq!(a.kernel.as_deref(), Some("diff"));
        assert_eq!(a.rest, vec!["old.json".to_string(), "new.json".to_string()]);
    }

    #[test]
    fn bench_sim_flags_parse_strictly() {
        let a = parse(&[
            "bench",
            "sim",
            "--quick",
            "--out",
            "custom.json",
            "--max-cycles",
            "5000",
        ])
        .expect("parse");
        assert_eq!(a.kernel.as_deref(), Some("sim"));
        assert!(a.quick);
        assert_eq!(a.out.as_deref(), Some("custom.json"));
        assert_eq!(a.max_cycles, Some(5_000));
        // Zero, negative and garbage budgets are rejected outright.
        assert!(parse(&["bench", "sim", "--max-cycles", "0"]).is_none());
        assert!(parse(&["bench", "sim", "--max-cycles", "-3"]).is_none());
        assert!(parse(&["bench", "sim", "--max-cycles", "many"]).is_none());
        assert!(parse(&["bench", "sim", "--max-cycles"]).is_none());
    }

    fn headline_value(static_at_5: f64) -> Value {
        Value::Map(vec![(
            "accuracy".to_string(),
            Value::Map(vec![
                ("static_at_0".to_string(), Value::F64(0.55)),
                ("static_at_5".to_string(), Value::F64(static_at_5)),
            ]),
        )])
    }

    #[test]
    fn bench_diff_flags_only_real_regressions() {
        let base = headline_value(0.80);
        // Within tolerance: a 1-point drop passes.
        let ok = bench_regressions(&base, &headline_value(0.79)).expect("compare");
        assert!(ok.is_empty(), "{ok:?}");
        // Beyond tolerance fails and names the field.
        let bad = bench_regressions(&base, &headline_value(0.70)).expect("compare");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("static_at_5"), "{bad:?}");
        // Improvements never fail.
        assert!(bench_regressions(&base, &headline_value(0.95))
            .expect("compare")
            .is_empty());
        // A field missing from the candidate is a failure, not a skip.
        let missing = Value::Map(vec![(
            "accuracy".to_string(),
            Value::Map(vec![("static_at_0".to_string(), Value::F64(0.55))]),
        )]);
        let out = bench_regressions(&base, &missing).expect("compare");
        assert!(out.iter().any(|r| r.contains("missing")), "{out:?}");
        // Records without an accuracy map are an error.
        assert!(bench_regressions(&Value::Map(vec![]), &base).is_err());
    }

    #[test]
    fn cache_subcommand_parses() {
        let a = parse(&["cache", "stats", "--cache-dir", "/tmp/sweeps"]).expect("parse");
        assert_eq!(a.command, "cache");
        assert_eq!(a.kernel.as_deref(), Some("stats"));
        assert_eq!(a.cache_dir.as_deref(), Some("/tmp/sweeps"));
        assert!(parse(&["cache", "clear", "--cache-dir"]).is_none());
    }
}

//! `pulp_cli` — command-line front end to the whole stack.
//!
//! ```text
//! pulp_cli list                                   # dataset kernels
//! pulp_cli pretty   <kernel> [--dtype d] [--size n]   # pseudo-C source
//! pulp_cli features <kernel> [--dtype d] [--size n]   # static features
//! pulp_cli disasm   <kernel> [--team t] [...]         # lowered program
//! pulp_cli measure  <kernel> [...]                    # energy at 1..=8 cores
//! pulp_cli classify <kernel> [...]                    # train + predict
//! pulp_cli mca      <kernel> [...]                    # LLVM-MCA-style report
//! pulp_cli profile  <kernel> [...]                    # stall causes + energy, 1..=8 cores
//! pulp_cli trace    <kernel> [--team t] [...]         # GVSOC-style trace
//! pulp_cli trace    <kernel> --chrome out.json [...]  # Chrome trace-event JSON
//! pulp_cli cache    stats --cache-dir DIR             # sweep-cache usage
//! pulp_cli cache    clear --cache-dir DIR             # delete cached sweeps
//! pulp_cli serve    [--addr HOST:PORT] [--full]       # HTTP prediction service
//! pulp_cli bench    diff OLD.json NEW.json            # regression gate (headline/sim/serve/models)
//! pulp_cli bench    sim [--quick] [--out PATH]        # simulator perf benchmark
//! pulp_cli bench    serve [--quick] [--out PATH]      # serving-layer load benchmark
//! pulp_cli bench    models [--quick] [--out PATH]     # model-zoo accuracy + flat-parity benchmark
//! pulp_cli bench    history DIR                       # benchmark trajectory over committed records
//! pulp_cli report   RUN.jsonl                         # deterministic report from a run journal
//! pulp_cli journal  validate RUN.jsonl [...]          # structural check of run journals
//! ```
//!
//! Defaults: `--dtype f32` (or the kernel's only supported type),
//! `--size 2048`, `--team 4`, `--addr 127.0.0.1:7878`,
//! `--max-cycles 100000000` for profile/trace runs.
//!
//! `serve` capacity knobs: `--workers N` (worker threads), `--queue-depth N`
//! (bounded accept queue; overflow sheds with 503 + `Retry-After`),
//! `--timeout-ms N` (per-connection read/write deadline), `--max-body-bytes
//! N` (413 above this), `--keepalive-max N` (requests per keep-alive
//! connection). SIGTERM/ctrl-c or `POST /admin/shutdown` drain gracefully.
//! Observability knobs: `--slow-ms N` (structured log line for requests
//! slower than N ms; 0 logs everything), `--flight-capacity N` (completed
//! traces retained for `GET /debug/requests` / `GET /debug/slow`),
//! `--log-json` (JSON-lines on stderr instead of `[serve]` text).
//!
//! `bench sim` runs the fixed kernel basket (ALU-bound, TCDM-conflict,
//! barrier/DMA-heavy, FP-contended) at 1/2/4/8 cores with the event-horizon
//! fast-forward and the single-step oracle, verifies the two agree
//! bit-for-bit, and writes `BENCH_sim.json` (override with `--out`).
//!
//! `bench serve` boots the prediction server in-process and drives it with
//! concurrent keep-alive clients over kernel-name, raw-feature and batch
//! request mixes, reporting throughput, per-mix p50/p90/p99 latency and the
//! shed/timeout counters; writes `BENCH_serve.json` (override with
//! `--out`). `--trace-out PATH` additionally captures `GET /debug/requests`
//! (the flight recorder's tail of the load) as Chrome-trace JSON; the
//! capture is validated either way.
//!
//! `bench models` evaluates the whole model zoo (tree, random forest,
//! gradient-boosted trees, kNN) under the repeated-CV protocol and checks
//! the quantized flat compilation of each tree-backed model against the
//! float reference on every dataset row; writes `BENCH_models.json`
//! (override with `--out`). `--cv-threads N` pins the CV worker count —
//! the record is bit-identical at any value. `--predictor flat|float` on
//! `bench serve` selects the model form the server under test walks.
//!
//! `bench diff OLD NEW` dispatches on the record's `bench` field:
//! headline records gate on accuracy (>1 pt drop fails), `BENCH_sim.json`
//! on fast-forward throughput (>20% cycles-per-wall-second drop on any
//! basket fails), `BENCH_serve.json` on tail latency (p99 regression beyond
//! `--p99-tolerance`, default 20%, on any mix, or any shed in the quick
//! profile, fails), `BENCH_models.json` on per-model accuracy (>1 pt
//! static@5 drop fails) and flat/float parity (any mismatch fails).
//!
//! `bench history DIR` reads every `BENCH_*.json` record in `DIR` (sorted by
//! file name), groups them by benchmark kind and profile, prints the
//! trajectory as a table, and flags regressions between consecutive records
//! of a group using the same thresholds as `bench diff`. Run journals
//! (`*.jsonl`) in the directory contribute their `bench_record` tails.
//!
//! `report RUN.jsonl` validates a run journal and renders its deterministic
//! report: per-stage wall breakdown, shard throughput table, top-K slowest
//! kernels and cache attribution. `journal validate` runs just the
//! structural check (schema version, gap-free sequence, framing, stage
//! discipline) over any number of journals. `bench sim --journal PATH` and
//! the dataset-building bins' `--journal PATH` write such journals.

use kernel_ir::{lower, DType, Kernel};
use pulp_bench::serve::{
    install_signal_shutdown, PredictorBackend, ServeOptions, ServeState, Server,
};
use pulp_bench::{
    profile_run, recorder_of_run, run_models_bench, run_serve_bench, CommonArgs, ServeBenchOptions,
    SimBenchOptions, QUICK_KERNELS,
};
use pulp_energy::{
    default_cache_version, measure_kernel,
    pipeline::{LabeledDataset, PipelineOptions},
    static_feature_names, static_feature_vector, StaticFeatureSet, SweepCache,
};
use pulp_energy_model::{energy_waterfall, EnergyModel};
use pulp_kernels::{registry, KernelDef, KernelParams};
use pulp_ml::{DecisionTree, TreeParams};
use pulp_obs::{LogFormat, Logger};
use pulp_sim::{simulate_traced, ClusterConfig, TextSink};
use serde::Value;
use std::process::ExitCode;
use std::sync::Arc;

#[derive(Debug)]
struct Args {
    command: String,
    kernel: Option<String>,
    /// Positional arguments after the first (e.g. `bench diff` paths).
    rest: Vec<String>,
    dtype: Option<DType>,
    size: usize,
    team: usize,
    chrome: Option<String>,
    cache_dir: Option<String>,
    addr: Option<String>,
    full: bool,
    quick: bool,
    out: Option<String>,
    max_cycles: Option<u64>,
    iters: Option<u32>,
    workers: Option<usize>,
    queue_depth: Option<usize>,
    timeout_ms: Option<u64>,
    max_body_bytes: Option<usize>,
    keepalive_max: Option<usize>,
    slow_ms: Option<u64>,
    flight_capacity: Option<usize>,
    retry_after_secs: Option<u64>,
    rate: Option<f64>,
    hist_out: Option<String>,
    log_json: bool,
    trace_out: Option<String>,
    p99_tolerance: Option<f64>,
    journal: Option<String>,
    cv_threads: Option<usize>,
    predictor: Option<PredictorBackend>,
}

fn parse_args() -> Option<Args> {
    parse_from(std::env::args().skip(1))
}

fn parse_from(mut argv: impl Iterator<Item = String>) -> Option<Args> {
    let command = argv.next()?;
    let mut args = Args {
        command,
        kernel: None,
        rest: Vec::new(),
        dtype: None,
        size: 2048,
        team: 4,
        chrome: None,
        cache_dir: None,
        addr: None,
        full: false,
        quick: false,
        out: None,
        max_cycles: None,
        iters: None,
        workers: None,
        queue_depth: None,
        timeout_ms: None,
        max_body_bytes: None,
        keepalive_max: None,
        slow_ms: None,
        flight_capacity: None,
        retry_after_secs: None,
        rate: None,
        hist_out: None,
        log_json: false,
        trace_out: None,
        p99_tolerance: None,
        journal: None,
        cv_threads: None,
        predictor: None,
    };
    // `--flag N` where N must be a strictly positive integer.
    fn positive<T: std::str::FromStr + PartialOrd + From<u8>>(
        argv: &mut impl Iterator<Item = String>,
        flag: &str,
    ) -> Option<T> {
        let raw = argv.next()?;
        match raw.parse::<T>() {
            Ok(n) if n >= T::from(1u8) => Some(n),
            _ => {
                eprintln!("{flag} expects a positive integer, got {raw:?}");
                None
            }
        }
    }
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--chrome" => args.chrome = Some(argv.next()?),
            "--cache-dir" => args.cache_dir = Some(argv.next()?),
            "--addr" => args.addr = Some(argv.next()?),
            "--full" => args.full = true,
            "--quick" => args.quick = true,
            "--out" => args.out = Some(argv.next()?),
            "--max-cycles" => args.max_cycles = Some(positive(&mut argv, "--max-cycles")?),
            "--iters" => args.iters = Some(positive(&mut argv, "--iters")?),
            "--workers" => args.workers = Some(positive(&mut argv, "--workers")?),
            "--queue-depth" => args.queue_depth = Some(positive(&mut argv, "--queue-depth")?),
            "--timeout-ms" => args.timeout_ms = Some(positive(&mut argv, "--timeout-ms")?),
            "--max-body-bytes" => {
                args.max_body_bytes = Some(positive(&mut argv, "--max-body-bytes")?);
            }
            "--keepalive-max" => args.keepalive_max = Some(positive(&mut argv, "--keepalive-max")?),
            "--slow-ms" => {
                // Zero is meaningful: log every request.
                let raw = argv.next()?;
                match raw.parse::<u64>() {
                    Ok(n) => args.slow_ms = Some(n),
                    Err(_) => {
                        eprintln!("--slow-ms expects a non-negative integer, got {raw:?}");
                        return None;
                    }
                }
            }
            "--flight-capacity" => {
                args.flight_capacity = Some(positive(&mut argv, "--flight-capacity")?);
            }
            "--retry-after-secs" => {
                args.retry_after_secs = Some(positive(&mut argv, "--retry-after-secs")?);
            }
            "--rate" => {
                let raw = argv.next()?;
                match raw.parse::<f64>() {
                    Ok(x) if x > 0.0 && x.is_finite() => args.rate = Some(x),
                    _ => {
                        eprintln!("--rate expects a positive requests/second, got {raw:?}");
                        return None;
                    }
                }
            }
            "--hist-out" => args.hist_out = Some(argv.next()?),
            "--cv-threads" => args.cv_threads = Some(positive(&mut argv, "--cv-threads")?),
            "--predictor" => {
                let raw = argv.next()?;
                match PredictorBackend::parse(&raw) {
                    Some(b) => args.predictor = Some(b),
                    None => {
                        eprintln!("--predictor expects `flat` or `float`, got {raw:?}");
                        return None;
                    }
                }
            }
            "--log-json" => args.log_json = true,
            "--trace-out" => args.trace_out = Some(argv.next()?),
            "--journal" => args.journal = Some(argv.next()?),
            "--p99-tolerance" => {
                let raw = argv.next()?;
                match raw.parse::<f64>() {
                    Ok(x) if x > 0.0 && x.is_finite() => args.p99_tolerance = Some(x),
                    _ => {
                        eprintln!("--p99-tolerance expects a positive number, got {raw:?}");
                        return None;
                    }
                }
            }
            "--dtype" => {
                args.dtype = match argv.next().as_deref() {
                    Some("i32") => Some(DType::I32),
                    Some("f32") => Some(DType::F32),
                    other => {
                        eprintln!("unknown dtype {other:?} (use i32 or f32)");
                        return None;
                    }
                };
            }
            "--size" => args.size = argv.next()?.parse().ok()?,
            "--team" => args.team = argv.next()?.parse().ok()?,
            other if !other.starts_with("--") && args.kernel.is_none() => {
                args.kernel = Some(other.to_string());
            }
            other if !other.starts_with("--") => {
                args.rest.push(other.to_string());
            }
            other => {
                eprintln!("unknown argument {other}");
                return None;
            }
        }
    }
    Some(args)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: pulp_cli <list|pretty|features|disasm|measure|classify|mca|profile|trace> \
         [kernel] [--dtype i32|f32] [--size BYTES] [--team N] [--chrome OUT.json]\n   \
         or: pulp_cli cache <stats|clear> --cache-dir DIR\n   \
         or: pulp_cli serve [--addr HOST:PORT] [--full] [--cache-dir DIR] [--workers N]\n   \
                [--queue-depth N] [--timeout-ms N] [--max-body-bytes N] [--keepalive-max N]\n   \
                [--slow-ms N] [--flight-capacity N] [--retry-after-secs N] [--log-json]\n   \
         or: pulp_cli bench diff OLD.json NEW.json [--p99-tolerance X]\n   \
         or: pulp_cli bench sim [--quick] [--out PATH] [--max-cycles N] [--iters N] [--journal PATH]\n   \
         or: pulp_cli bench serve [--quick] [--out PATH] [--trace-out PATH] [--rate RPS]\n   \
                [--hist-out PATH] [--predictor flat|float]\n   \
         or: pulp_cli bench models [--quick] [--out PATH] [--cv-threads N] [--journal PATH]\n   \
                [--cache-dir DIR]\n   \
         or: pulp_cli bench history DIR [--p99-tolerance X]\n   \
         or: pulp_cli report RUN.jsonl\n   \
         or: pulp_cli journal validate RUN.jsonl [RUN2.jsonl ...]"
    );
    ExitCode::FAILURE
}

/// Default cycle budget for interactive `profile`/`trace` runs
/// (override with `--max-cycles`).
const DEFAULT_RUN_BUDGET: u64 = 100_000_000;

/// Maximum tolerated accuracy drop between baseline and candidate before
/// `bench diff` fails: one percentage point.
const REGRESSION_TOLERANCE: f64 = 0.01;

/// Maximum tolerated relative drop in simulator throughput
/// (`ff_cycles_per_s`) per basket before `bench diff` fails: 20%.
const SIM_THROUGHPUT_TOLERANCE: f64 = 0.20;

/// Minimum fast-forward speedup over the single-step oracle tolerated on
/// any candidate basket: the fast-forward path must never be slower than
/// just stepping. Guards the contended-path regression (PR 4 shipped ALU
/// baskets at 0.64–0.89×) from coming back.
const SIM_SPEEDUP_FLOOR: f64 = 1.0;

/// Wall-clock jitter allowance on the speedup floor. Contended baskets sit
/// at parity (speedup ≈ 1.00 — nothing is skippable, so the fast-forward
/// does the same work as the oracle), and a knife-edge `< 1.0` check would
/// flake on scheduler noise; the regression this gate guards shipped at
/// 0.64–0.89×, far below the 0.95 effective floor.
const SIM_SPEEDUP_NOISE: f64 = 0.05;

/// Maximum tolerated relative drop in labeling throughput
/// (`labeling_samples_per_s`) before `bench diff` fails: 20%. Only gated
/// when both records carry the measurement (older baselines predate it).
const SIM_LABELING_TOLERANCE: f64 = 0.20;

/// Default maximum tolerated relative p99-latency regression per serve
/// mix before `bench diff` fails: 20%. Override with `--p99-tolerance`
/// (CI's recorder-overhead gate tightens it to 10%).
const SERVE_P99_TOLERANCE: f64 = 0.20;

/// Compares two benchmark records, dispatching on their `bench` field:
/// `"sim"` gates on per-basket fast-forward throughput, `"serve"` on
/// per-mix p99 latency plus shedding (tolerance from `--p99-tolerance`,
/// default [`SERVE_P99_TOLERANCE`]), anything else on the headline
/// `accuracy` map. Returns the regressions found.
fn bench_regressions_with(
    old: &Value,
    new: &Value,
    serve_p99_tolerance: f64,
) -> Result<Vec<String>, String> {
    let kind = old.field("bench").and_then(Value::as_str).unwrap_or("");
    match kind {
        "sim" => sim_regressions(old, new),
        "serve" => serve_regressions(old, new, serve_p99_tolerance),
        "models" => models_regressions(old, new),
        _ => headline_regressions(old, new),
    }
}

/// Both records must come from the same profile — a `--quick` candidate
/// against a full baseline (or vice versa) compares different workloads.
fn check_same_profile(old: &Value, new: &Value) -> Result<(), String> {
    let profile = |v: &Value, side: &str| {
        v.field("quick")
            .and_then(Value::as_bool)
            .map_err(|e| format!("{side}: {e}"))
    };
    let (old_quick, new_quick) = (profile(old, "baseline")?, profile(new, "candidate")?);
    if old_quick != new_quick {
        return Err(format!(
            "profiles differ (baseline quick={old_quick}, candidate quick={new_quick}); \
             records are not comparable"
        ));
    }
    Ok(())
}

/// Pulls the `rows` sequence out of a benchmark record, labelling parse
/// failures with which side (baseline/candidate) was at fault.
fn record_rows<'a>(v: &'a Value, side: &str) -> Result<&'a [Value], String> {
    v.field("rows")
        .and_then(Value::as_seq)
        .map_err(|e| format!("{side}: {e}"))
}

/// `BENCH_sim.json`: fail on >20% `ff_cycles_per_s` drop on any
/// (basket, cores) row, a row missing from the candidate, any candidate
/// row with fast-forward `speedup` below [`SIM_SPEEDUP_FLOOR`], or a >20%
/// drop in labeling throughput when both records measure it.
fn sim_regressions(old: &Value, new: &Value) -> Result<Vec<String>, String> {
    check_same_profile(old, new)?;
    let (old_rows, new_rows) = (
        record_rows(old, "baseline")?,
        record_rows(new, "candidate")?,
    );
    let key = |r: &Value| -> Option<(String, u64)> {
        Some((
            r.field("basket").and_then(Value::as_str).ok()?.to_string(),
            r.field("cores").and_then(Value::as_u64).ok()?,
        ))
    };
    let mut regressions = Vec::new();
    for old_row in old_rows {
        let Some((basket, cores)) = key(old_row) else {
            return Err("baseline: row without basket/cores".to_string());
        };
        let Ok(old_cps) = old_row.field("ff_cycles_per_s").and_then(Value::as_f64) else {
            continue;
        };
        let Some(new_cps) = new_rows
            .iter()
            .filter(|r| key(r).as_ref() == Some(&(basket.clone(), cores)))
            .find_map(|r| r.field("ff_cycles_per_s").and_then(Value::as_f64).ok())
        else {
            regressions.push(format!("{basket} @ {cores} cores: missing from candidate"));
            continue;
        };
        if new_cps < old_cps * (1.0 - SIM_THROUGHPUT_TOLERANCE) {
            regressions.push(format!(
                "{basket} @ {cores} cores: {old_cps:.3e} -> {new_cps:.3e} cycles/s \
                 (drop {:.1}% > {:.0}% tolerance)",
                (1.0 - new_cps / old_cps) * 100.0,
                SIM_THROUGHPUT_TOLERANCE * 100.0
            ));
        }
    }
    // Absolute floor on every candidate row: the fast-forward must beat
    // (or match) the oracle on all baskets, not just avoid drops vs the
    // previous record.
    for new_row in new_rows {
        let Some((basket, cores)) = key(new_row) else {
            return Err("candidate: row without basket/cores".to_string());
        };
        let Ok(speedup) = new_row.field("speedup").and_then(Value::as_f64) else {
            continue;
        };
        if speedup < SIM_SPEEDUP_FLOOR - SIM_SPEEDUP_NOISE {
            regressions.push(format!(
                "{basket} @ {cores} cores: fast-forward speedup {speedup:.2}x \
                 below the {SIM_SPEEDUP_FLOOR:.1}x floor (with {:.0}% jitter \
                 allowance) — the skipping path is slower than single-stepping",
                SIM_SPEEDUP_NOISE * 100.0
            ));
        }
    }
    // Labeling throughput: gate only when both records carry a positive
    // measurement (baselines from before the column lack it).
    let labeling = |v: &Value| {
        v.field("labeling_samples_per_s")
            .and_then(Value::as_f64)
            .ok()
            .filter(|&s| s > 0.0)
    };
    if let (Some(old_sps), Some(new_sps)) = (labeling(old), labeling(new)) {
        if new_sps < old_sps * (1.0 - SIM_LABELING_TOLERANCE) {
            regressions.push(format!(
                "labeling throughput: {old_sps:.1} -> {new_sps:.1} samples/s \
                 (drop {:.1}% > {:.0}% tolerance)",
                (1.0 - new_sps / old_sps) * 100.0,
                SIM_LABELING_TOLERANCE * 100.0
            ));
        }
    }
    Ok(regressions)
}

/// `BENCH_serve.json`: fail on a p99 regression beyond `p99_tolerance` on
/// any mix, a mix missing from the candidate, any shed in a quick-profile
/// candidate, or candidate correctness errors.
fn serve_regressions(old: &Value, new: &Value, p99_tolerance: f64) -> Result<Vec<String>, String> {
    check_same_profile(old, new)?;
    let (old_rows, new_rows) = (
        record_rows(old, "baseline")?,
        record_rows(new, "candidate")?,
    );
    let mut regressions = Vec::new();
    for old_row in old_rows {
        let Ok(mix) = old_row.field("mix").and_then(Value::as_str) else {
            return Err("baseline: row without mix".to_string());
        };
        let Ok(old_p99) = old_row.field("p99_us").and_then(Value::as_f64) else {
            continue;
        };
        let Some(new_p99) = new_rows
            .iter()
            .filter(|r| r.field("mix").and_then(Value::as_str) == Ok(mix))
            .find_map(|r| r.field("p99_us").and_then(Value::as_f64).ok())
        else {
            regressions.push(format!("mix {mix}: missing from candidate"));
            continue;
        };
        if new_p99 > old_p99 * (1.0 + p99_tolerance) {
            regressions.push(format!(
                "mix {mix}: p99 {old_p99:.0}us -> {new_p99:.0}us \
                 (+{:.1}% > {:.0}% tolerance)",
                (new_p99 / old_p99 - 1.0) * 100.0,
                p99_tolerance * 100.0
            ));
        }
    }
    let quick = new.field("quick").and_then(Value::as_bool).unwrap_or(false);
    let shed = new
        .field("shed_total")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    if quick && shed > 0.0 {
        regressions.push(format!(
            "candidate shed {shed} connection(s); the quick profile must never shed"
        ));
    }
    let errors = new.field("errors").and_then(Value::as_u64).unwrap_or(0);
    if errors > 0 {
        regressions.push(format!("candidate had {errors} failed request(s)"));
    }
    // Open-loop (coordinated-omission-safe) envelope: gated only when the
    // baseline carries the section, so pre-open-loop records keep diffing.
    let open_p99 = |record: &Value| {
        record
            .field("open_loop")
            .ok()
            .and_then(|o| o.field("p99_us").and_then(Value::as_f64).ok())
    };
    if let Some(old_p99) = open_p99(old) {
        match open_p99(new) {
            None => regressions
                .push("open-loop results missing from candidate (baseline has them)".to_string()),
            Some(new_p99) if new_p99 > old_p99 * (1.0 + p99_tolerance) => {
                regressions.push(format!(
                    "open-loop: p99 {old_p99:.0}us -> {new_p99:.0}us \
                     (+{:.1}% > {:.0}% tolerance)",
                    (new_p99 / old_p99 - 1.0) * 100.0,
                    p99_tolerance * 100.0
                ));
            }
            Some(_) => {}
        }
    }
    Ok(regressions)
}

/// `BENCH_models.json`: fail on a >1-pt `static_at_5` accuracy drop for
/// any zoo model, a model missing from the candidate, or any candidate
/// row reporting flat/float prediction mismatches — the quantized flat
/// path must stay bit-exact with the float reference on the dataset.
fn models_regressions(old: &Value, new: &Value) -> Result<Vec<String>, String> {
    check_same_profile(old, new)?;
    let (old_rows, new_rows) = (
        record_rows(old, "baseline")?,
        record_rows(new, "candidate")?,
    );
    let mut regressions = Vec::new();
    for old_row in old_rows {
        let Ok(model) = old_row.field("model").and_then(Value::as_str) else {
            return Err("baseline: row without model".to_string());
        };
        let Ok(old_acc) = old_row.field("static_at_5").and_then(Value::as_f64) else {
            continue;
        };
        let Some(new_acc) = new_rows
            .iter()
            .filter(|r| r.field("model").and_then(Value::as_str) == Ok(model))
            .find_map(|r| r.field("static_at_5").and_then(Value::as_f64).ok())
        else {
            regressions.push(format!("model {model}: missing from candidate"));
            continue;
        };
        if new_acc < old_acc - REGRESSION_TOLERANCE {
            regressions.push(format!(
                "model {model}: static@5 {:.1}% -> {:.1}% (drop {:.1} pts > {:.0} pt tolerance)",
                old_acc * 100.0,
                new_acc * 100.0,
                (old_acc - new_acc) * 100.0,
                REGRESSION_TOLERANCE * 100.0
            ));
        }
    }
    for new_row in new_rows {
        let model = new_row
            .field("model")
            .and_then(Value::as_str)
            .unwrap_or("?");
        if let Ok(m) = new_row.field("flat_mismatches").and_then(Value::as_u64) {
            if m > 0 {
                regressions.push(format!(
                    "model {model}: flat inference diverged from the float reference \
                     on {m} row(s); the quantized path must be bit-exact"
                ));
            }
        }
    }
    Ok(regressions)
}

/// Compares two `BENCH_headline.json` records field-by-field over their
/// `accuracy` maps; returns the regressions found.
fn headline_regressions(old: &Value, new: &Value) -> Result<Vec<String>, String> {
    let old_acc = old
        .field("accuracy")
        .and_then(Value::as_map)
        .map_err(|e| format!("baseline: {e}"))?;
    let new_acc = new
        .field("accuracy")
        .and_then(Value::as_map)
        .map_err(|e| format!("candidate: {e}"))?;
    let mut regressions = Vec::new();
    for (name, old_v) in old_acc {
        let Ok(old_v) = old_v.as_f64() else { continue };
        let Some(new_v) = new_acc
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_f64().ok())
        else {
            regressions.push(format!("{name}: missing from candidate"));
            continue;
        };
        if new_v < old_v - REGRESSION_TOLERANCE {
            regressions.push(format!(
                "{name}: {:.1}% -> {:.1}% (drop {:.1} pts > {:.0} pt tolerance)",
                old_v * 100.0,
                new_v * 100.0,
                (old_v - new_v) * 100.0,
                REGRESSION_TOLERANCE * 100.0
            ));
        }
    }
    Ok(regressions)
}

fn cmd_bench_diff(old_path: &str, new_path: &str, p99_tolerance: Option<f64>) -> ExitCode {
    let load = |path: &str| -> Result<Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench diff: {e}");
            return ExitCode::FAILURE;
        }
    };
    match bench_regressions_with(&old, &new, p99_tolerance.unwrap_or(SERVE_P99_TOLERANCE)) {
        Ok(regressions) if regressions.is_empty() => {
            println!("bench diff: no regressions ({old_path} -> {new_path})");
            ExitCode::SUCCESS
        }
        Ok(regressions) => {
            eprintln!("bench diff: {} regression(s):", regressions.len());
            for r in &regressions {
                eprintln!("  {r}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench diff: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Validates a run journal and prints its deterministic report: per-stage
/// wall breakdown, shard throughput table, top-K slowest kernels and cache
/// attribution. The output is a pure function of the journal bytes.
fn cmd_report(path: &str) -> ExitCode {
    match pulp_obs::JournalReader::read_file(std::path::Path::new(path)) {
        Ok(journal) => {
            print!("{}", pulp_obs::render_report(&journal));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("report: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Structurally validates each journal: schema version, gap-free sequence
/// numbers, run_start/run_end framing, stage discipline, trailing newline.
/// Prints one line per file; any invalid journal fails the command.
fn cmd_journal_validate(paths: &[String]) -> ExitCode {
    let mut failed = false;
    for path in paths {
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| pulp_obs::validate_journal(&text).map_err(|e| e.to_string()));
        match outcome {
            Ok(()) => println!("journal validate: {path}: ok"),
            Err(e) => {
                eprintln!("journal validate: {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// One line summarising a benchmark record for the `bench history` table.
fn record_summary(kind: &str, v: &Value) -> String {
    match kind {
        "sim" => {
            let sps = v
                .field("labeling_samples_per_s")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            let min_speedup = v
                .field("rows")
                .and_then(Value::as_seq)
                .ok()
                .and_then(|rows| {
                    rows.iter()
                        .filter_map(|r| r.field("speedup").and_then(Value::as_f64).ok())
                        .min_by(f64::total_cmp)
                });
            match min_speedup {
                Some(s) => format!("labeling {sps:.1} samples/s, min speedup {s:.2}x"),
                None => format!("labeling {sps:.1} samples/s"),
            }
        }
        "serve" => {
            let max_p99 = v
                .field("rows")
                .and_then(Value::as_seq)
                .ok()
                .and_then(|rows| {
                    rows.iter()
                        .filter_map(|r| r.field("p99_us").and_then(Value::as_f64).ok())
                        .max_by(f64::total_cmp)
                });
            match max_p99 {
                Some(p) => format!("worst-mix p99 {p:.0}us"),
                None => "no rows".to_string(),
            }
        }
        "models" => match v.field("rows").and_then(Value::as_seq) {
            Ok(rows) => {
                let mut parts: Vec<String> = rows
                    .iter()
                    .filter_map(|r| {
                        let model = r.field("model").and_then(Value::as_str).ok()?;
                        let acc = r.field("static_at_5").and_then(Value::as_f64).ok()?;
                        Some(format!("{model}@5={:.1}%", acc * 100.0))
                    })
                    .collect();
                let mismatches: u64 = rows
                    .iter()
                    .filter_map(|r| r.field("flat_mismatches").and_then(Value::as_u64).ok())
                    .sum();
                parts.push(if mismatches == 0 {
                    "flat=exact".to_string()
                } else {
                    format!("flat={mismatches} mismatch(es)")
                });
                parts.join(" ")
            }
            Err(_) => "no rows".to_string(),
        },
        _ => match v.field("accuracy").and_then(Value::as_map) {
            Ok(acc) => acc
                .iter()
                .filter_map(|(k, val)| val.as_f64().ok().map(|x| format!("{k}={:.1}%", x * 100.0)))
                .collect::<Vec<_>>()
                .join(" "),
            Err(_) => "no accuracy map".to_string(),
        },
    }
}

/// Reads every `BENCH_*.json` record in `dir` (sorted by file name), groups
/// them by `(bench kind, quick)`, prints the trajectory, and flags
/// regressions between consecutive records of a group with the same
/// thresholds as `bench diff`. Journals (`*.jsonl`) in the directory
/// contribute their `bench_record` tails.
fn cmd_bench_history(dir: &str, p99_tolerance: Option<f64>) -> ExitCode {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("bench history: cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut records: Vec<String> = Vec::new();
    let mut journals: Vec<String> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            records.push(name);
        } else if name.ends_with(".jsonl") {
            journals.push(name);
        }
    }
    records.sort();
    journals.sort();
    if records.is_empty() && journals.is_empty() {
        println!("bench history: no BENCH_*.json records or *.jsonl journals in {dir}");
        return ExitCode::SUCCESS;
    }
    // Parse and group by (kind, quick); groups keep file-name order.
    // One group: the (bench kind, quick profile) key plus its (file, record) rows.
    type HistoryGroup = ((String, bool), Vec<(String, Value)>);
    let mut groups: Vec<HistoryGroup> = Vec::new();
    for name in &records {
        let path = format!("{dir}/{name}");
        let parsed: Result<Value, String> = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()));
        let v = match parsed {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench history: skipping {name}: {e}");
                continue;
            }
        };
        let kind = v
            .field("bench")
            .and_then(Value::as_str)
            .unwrap_or("headline")
            .to_string();
        let quick = v.field("quick").and_then(Value::as_bool).unwrap_or(false);
        let key = (kind, quick);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, list)) => list.push((name.clone(), v)),
            None => groups.push((key, vec![(name.clone(), v)])),
        }
    }
    groups.sort_by(|(a, _), (b, _)| a.cmp(b));
    let mut flagged = 0usize;
    for ((kind, quick), list) in &groups {
        println!(
            "== {kind} ({} profile), {} record(s) ==",
            if *quick { "quick" } else { "full" },
            list.len()
        );
        for (name, v) in list {
            println!("  {name:<28} {}", record_summary(kind, v));
        }
        for pair in list.windows(2) {
            let (old_name, old) = &pair[0];
            let (new_name, new) = &pair[1];
            match bench_regressions_with(old, new, p99_tolerance.unwrap_or(SERVE_P99_TOLERANCE)) {
                Ok(regressions) => {
                    for r in &regressions {
                        println!("  REGRESSION {old_name} -> {new_name}: {r}");
                    }
                    flagged += regressions.len();
                }
                Err(e) => println!("  (cannot compare {old_name} -> {new_name}: {e})"),
            }
        }
    }
    for name in &journals {
        let path = format!("{dir}/{name}");
        match pulp_obs::JournalReader::read_file(std::path::Path::new(&path)) {
            Ok(journal) => {
                let (tool, _, _) = journal.run_start();
                println!("== journal {name} (run {}, tool {tool}) ==", journal.run_id);
                for ev in &journal.events {
                    if let pulp_obs::JournalEvent::BenchRecord { bench, name, value } = ev {
                        println!("  {bench:<8} {name:<36} {value:.3}");
                    }
                }
            }
            Err(e) => println!("== journal {name}: invalid ({e}) =="),
        }
    }
    if flagged > 0 {
        println!("bench history: {flagged} regression(s) flagged");
    } else {
        println!("bench history: no regressions across consecutive records");
    }
    ExitCode::SUCCESS
}

/// Runs the simulator performance benchmark and writes `BENCH_sim.json`
/// (or `--out PATH`). Fails if any fast-forward run diverges from its
/// single-step oracle or if the barrier/DMA basket never skips a cycle.
fn cmd_bench_sim(args: &Args) -> ExitCode {
    let mut opts = if args.quick {
        SimBenchOptions::quick()
    } else {
        SimBenchOptions::default()
    };
    if let Some(n) = args.max_cycles {
        opts.max_cycles = n;
    }
    if let Some(n) = args.iters {
        opts.iters = n;
    }
    eprintln!(
        "bench sim: {} run ({} baskets x {} team sizes, {} timing iteration(s))...",
        if opts.quick { "quick" } else { "full" },
        pulp_bench::sim_bench::BASKETS.len(),
        pulp_bench::sim_bench::TEAM_SIZES.len(),
        opts.iters
    );
    // The journal's run id is seeded from the pre-run provenance manifest
    // (wall times excluded), so re-running the same configuration re-derives
    // the same id.
    let mut journal = args.journal.as_deref().and_then(|path| {
        let pre = pulp_energy::RunManifest::new(
            "bench_sim",
            &ClusterConfig::default(),
            &EnergyModel::table1(),
        )
        .with_extra("quick", opts.quick);
        match pulp_obs::JournalWriter::create(
            std::path::Path::new(path),
            "bench_sim",
            &pre.manifest_hash(),
            pre.seed,
        ) {
            Ok(j) => Some(j),
            Err(e) => {
                eprintln!("bench sim: cannot open journal {path}: {e}");
                None
            }
        }
    });
    let report = pulp_bench::sim_bench::run_sim_bench_journaled(&opts, journal.as_mut());
    if let Some(j) = journal {
        let run = j.run_id().to_string();
        match j.finalize() {
            Ok(()) => {
                if let Some(path) = &args.journal {
                    println!("wrote {path} (run journal, run {run})");
                }
            }
            Err(e) => eprintln!("bench sim: cannot finalize journal: {e}"),
        }
    }
    print!("{}", report.render_table());
    let out_path = args.out.as_deref().unwrap_or("BENCH_sim.json");
    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench sim: cannot serialise report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(out_path, json) {
        eprintln!("bench sim: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    match report.verify() {
        Ok(()) => {
            println!("bench sim: all runs bit-identical to the single-step oracle");
            ExitCode::SUCCESS
        }
        Err(problems) => {
            eprintln!("bench sim: {} invariant violation(s):", problems.len());
            for p in &problems {
                eprintln!("  {p}");
            }
            ExitCode::FAILURE
        }
    }
}

/// The server capacity knobs implied by the command line.
fn serve_options(args: &Args) -> ServeOptions {
    let mut o = ServeOptions::default();
    if let Some(n) = args.workers {
        o.workers = n;
    }
    if let Some(n) = args.queue_depth {
        o.queue_depth = n;
    }
    if let Some(n) = args.timeout_ms {
        o.timeout_ms = n;
    }
    if let Some(n) = args.max_body_bytes {
        o.max_body_bytes = n;
    }
    if let Some(n) = args.keepalive_max {
        o.keepalive_max_requests = n;
    }
    if let Some(n) = args.slow_ms {
        o.slow_ms = n;
    }
    if let Some(n) = args.flight_capacity {
        o.flight_capacity = n;
    }
    if let Some(n) = args.retry_after_secs {
        o.retry_after_secs = n;
    }
    o
}

/// The log format implied by `--log-json`.
fn log_format(args: &Args) -> LogFormat {
    if args.log_json {
        LogFormat::Json
    } else {
        LogFormat::Text
    }
}

fn cmd_serve(args: &Args) -> ExitCode {
    let log = Logger::new(log_format(args));
    let mut opts = if args.full {
        PipelineOptions::default()
    } else {
        PipelineOptions::quick(QUICK_KERNELS)
    };
    if let Some(dir) = &args.cache_dir {
        match SweepCache::new(dir) {
            Ok(cache) => opts.cache = Some(Arc::new(cache)),
            Err(e) => log.warn(
                "serve",
                "cannot open cache dir; continuing uncached",
                &[("dir", dir.clone()), ("error", e.to_string())],
            ),
        }
    }
    log.info(
        "serve",
        "training model (this simulates the training sweep unless cached)...",
        &[(
            "profile",
            if args.full { "full" } else { "quick" }.to_string(),
        )],
    );
    let serve_opts = serve_options(args);
    // The request-path logger moves into the server state: slow-request
    // lines from worker threads honour `--log-json` too.
    let state = Arc::new(
        ServeState::train(&opts)
            .with_flight_capacity(serve_opts.flight_capacity)
            .with_logger(Logger::new(log_format(args))),
    );
    let addr = args.addr.as_deref().unwrap_or("127.0.0.1:7878");
    let server = match Server::bind_with(addr, state, serve_opts) {
        Ok(s) => s,
        Err(e) => {
            log.warn(
                "serve",
                "cannot bind",
                &[("addr", addr.to_string()), ("error", e.to_string())],
            );
            return ExitCode::FAILURE;
        }
    };
    install_signal_shutdown(server.shutdown_handle());
    log.info(
        "serve",
        "listening — POST /predict, POST /predict/batch, GET /metrics, GET /healthz, \
         GET /manifest, GET /debug/requests, GET /debug/slow, POST /admin/shutdown",
        &[("addr", server.addr.to_string())],
    );
    log.info(
        "serve",
        "capacity",
        &[
            ("workers", serve_opts.workers.to_string()),
            ("queue_depth", serve_opts.queue_depth.to_string()),
            ("timeout_ms", serve_opts.timeout_ms.to_string()),
            ("max_body_bytes", serve_opts.max_body_bytes.to_string()),
            (
                "keepalive_max",
                serve_opts.keepalive_max_requests.to_string(),
            ),
            ("slow_ms", serve_opts.slow_ms.to_string()),
            ("flight_capacity", serve_opts.flight_capacity.to_string()),
            ("retry_after_secs", serve_opts.retry_after_secs.to_string()),
        ],
    );
    server.run();
    log.info("serve", "drained; all workers joined", &[]);
    ExitCode::SUCCESS
}

/// Runs the serving-layer load benchmark and writes `BENCH_serve.json`
/// (or `--out PATH`). Fails on correctness errors, a batch/sequential
/// divergence, or (in the quick profile) any shed or timeout.
fn cmd_bench_serve(args: &Args) -> ExitCode {
    let mut opts = if args.quick {
        ServeBenchOptions::quick()
    } else {
        ServeBenchOptions::default()
    };
    if let Some(rate) = args.rate {
        opts.open_loop_rate_rps = rate;
    }
    if let Some(backend) = args.predictor {
        opts.backend = backend;
    }
    eprintln!(
        "bench serve: {} run, {} predictor ({} rounds of {} clients x {} requests, {} workers, \
         queue depth {}, open-loop {} rps)...",
        if opts.quick { "quick" } else { "full" },
        opts.backend.name(),
        opts.rounds,
        opts.clients,
        opts.requests_per_client,
        opts.serve.workers,
        opts.serve.queue_depth,
        opts.open_loop_rate_rps
    );
    let run = run_serve_bench(&opts);
    print!("{}", run.report.render_table());
    let out_path = args.out.as_deref().unwrap_or("BENCH_serve.json");
    let json = match serde_json::to_string_pretty(&run.report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench serve: cannot serialise report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(out_path, json) {
        eprintln!("bench serve: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if let Some(trace_path) = &args.trace_out {
        if let Err(e) = std::fs::write(trace_path, &run.trace_json) {
            eprintln!("bench serve: cannot write {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {trace_path} (flight-recorder Chrome trace)");
    }
    if let Some(hist_path) = &args.hist_out {
        if let Err(e) = std::fs::write(hist_path, run.open_loop_histogram_json()) {
            eprintln!("bench serve: cannot write {hist_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {hist_path} (open-loop latency histogram)");
    }
    match run.verify() {
        Ok(()) => {
            println!("bench serve: all invariants hold");
            ExitCode::SUCCESS
        }
        Err(problems) => {
            eprintln!("bench serve: {} invariant violation(s):", problems.len());
            for p in &problems {
                eprintln!("  {p}");
            }
            ExitCode::FAILURE
        }
    }
}

/// Runs the model-zoo evaluation benchmark and writes `BENCH_models.json`
/// (or `--out PATH`). Builds (or loads) the dataset with the usual
/// pipeline caches, evaluates every zoo model under the repeated-CV
/// protocol, checks flat/float parity on the full dataset, and wires the
/// run manifest + journal exactly like the other benches.
fn cmd_bench_models(args: &Args) -> ExitCode {
    let start = std::time::Instant::now();
    let common = CommonArgs {
        quick: args.quick,
        cv_threads: args.cv_threads.unwrap_or(0),
        cache_dir: args.cache_dir.clone().map(std::path::PathBuf::from),
        journal: args.journal.clone().map(std::path::PathBuf::from),
        ..CommonArgs::default()
    };
    let opts = common.pipeline_options();
    let protocol = common.protocol();
    eprintln!(
        "bench models: {} run ({} folds x {} repeats, cv-threads {})...",
        if args.quick { "quick" } else { "full" },
        protocol.folds,
        protocol.repeats,
        if protocol.cv_threads == 0 {
            "all".to_string()
        } else {
            protocol.cv_threads.to_string()
        }
    );
    let mut journal = common.journal_writer("bench_models", &opts, Some(&protocol));
    let data = pulp_bench::load_or_build_dataset_observed(&opts, &common, journal.as_mut());
    let mut report = run_models_bench(&data, &protocol, args.quick);
    let manifest = common.write_manifest("bench_models", &opts, Some(&protocol), start);
    report.manifest_hash = manifest.manifest_hash();
    if let Some(j) = journal.as_mut() {
        for row in &report.rows {
            let record = |name: String, value: f64| pulp_obs::JournalEvent::BenchRecord {
                bench: "models".to_string(),
                name,
                value,
            };
            let _ = j.event(record(
                format!("{}_static_at_5", row.model),
                row.static_at_5,
            ));
            if let Some(m) = row.flat_mismatches {
                let _ = j.event(record(format!("{}_flat_mismatches", row.model), m as f64));
            }
        }
    }
    common.finish_journal(journal);
    print!("{}", report.render_table());
    let out_path = args.out.as_deref().unwrap_or("BENCH_models.json");
    let json = match serde_json::to_string_pretty(&report) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench models: cannot serialise report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(out_path, json) {
        eprintln!("bench models: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    match report.verify() {
        Ok(()) => {
            println!("bench models: flat inference bit-exact with the float reference");
            ExitCode::SUCCESS
        }
        Err(problems) => {
            eprintln!("bench models: {} invariant violation(s):", problems.len());
            for p in &problems {
                eprintln!("  {p}");
            }
            ExitCode::FAILURE
        }
    }
}

fn find_kernel<'a>(defs: &'a [KernelDef], name: &str) -> Option<&'a KernelDef> {
    let found = defs.iter().find(|d| d.name == name);
    if found.is_none() {
        eprintln!("unknown kernel `{name}`; run `pulp_cli list`");
    }
    found
}

fn instantiate(def: &KernelDef, args: &Args) -> Option<Kernel> {
    let dtype = args.dtype.unwrap_or_else(|| {
        if def.supports(DType::F32) {
            DType::F32
        } else {
            DType::I32
        }
    });
    if !def.supports(dtype) {
        eprintln!("kernel {} does not support {dtype}", def.name);
        return None;
    }
    match def.build(&KernelParams::new(dtype, args.size)) {
        Ok(k) => Some(k),
        Err(e) => {
            eprintln!("cannot instantiate {}: {e}", def.name);
            None
        }
    }
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    let defs = registry();
    let config = ClusterConfig::default();

    match args.command.as_str() {
        "list" => {
            println!("{:<24} {:<10} dtypes", "kernel", "suite");
            for d in &defs {
                let dtypes: Vec<String> = d.dtypes.iter().map(|t| t.to_string()).collect();
                println!(
                    "{:<24} {:<10} {}",
                    d.name,
                    d.suite.to_string(),
                    dtypes.join(",")
                );
            }
            ExitCode::SUCCESS
        }
        "pretty" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            print!("{kernel}");
            ExitCode::SUCCESS
        }
        "features" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            for (n, v) in static_feature_names()
                .iter()
                .zip(static_feature_vector(&kernel))
            {
                println!("{n:>10} = {v:.4}");
            }
            ExitCode::SUCCESS
        }
        "disasm" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            match lower(&kernel, args.team, &config) {
                Ok(lowered) => {
                    print!("{}", lowered.program.disassemble());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("lowering failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "measure" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            match measure_kernel(&kernel, &config, &EnergyModel::table1()) {
                Ok(profile) => {
                    println!(
                        "{:>6} {:>12} {:>10} {:>9}",
                        "cores", "energy [uJ]", "cycles", "speedup"
                    );
                    for c in 0..8 {
                        let mark = if c == profile.label() {
                            "  <== min energy"
                        } else {
                            ""
                        };
                        println!(
                            "{:>6} {:>12.4} {:>10} {:>8.2}x{mark}",
                            c + 1,
                            profile.energy[c] * 1e-9,
                            profile.cycles[c],
                            profile.speedup(c)
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("measurement failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "classify" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            eprintln!("training on the quick kernel set...");
            let data = match LabeledDataset::build(&PipelineOptions::quick(QUICK_KERNELS)) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("training-set build failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let ds = match data.static_dataset(StaticFeatureSet::All) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("dataset assembly failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut tree = DecisionTree::new(TreeParams::default());
            tree.fit(&ds);
            let predicted = tree.predict(&static_feature_vector(&kernel));
            println!(
                "predicted minimum-energy configuration: {} cores",
                predicted + 1
            );
            if let Ok(profile) = measure_kernel(&kernel, &config, &EnergyModel::table1()) {
                println!(
                    "simulated ground truth: {} cores (waste of prediction: {:.2}%)",
                    profile.label() + 1,
                    profile.waste(predicted) * 100.0
                );
            }
            ExitCode::SUCCESS
        }
        "mca" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            let block = pulp_mca::kernel_block(&kernel);
            let features = pulp_mca::analyze_block(&block, pulp_mca::DEFAULT_ITERATIONS);
            print!(
                "{}",
                pulp_mca::render_report(block.len(), pulp_mca::DEFAULT_ITERATIONS, &features)
            );
            ExitCode::SUCCESS
        }
        "profile" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            let model = EnergyModel::table1();
            for team in 1..=config.num_cores {
                let lowered = match lower(&kernel, team, &config) {
                    Ok(l) => l,
                    Err(e) => {
                        eprintln!("lowering failed at team {team}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let run = match profile_run(
                    &config,
                    &lowered.program,
                    args.max_cycles.unwrap_or(DEFAULT_RUN_BUDGET),
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("simulation failed at team {team}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = run.stats.check_consistency() {
                    eprintln!("attribution inconsistent at team {team}: {e}");
                    return ExitCode::FAILURE;
                }
                let attributed = run.stats.breakdown_totals().total();
                println!("== {name} team {team} ==");
                print!("{}", run.stats.summary());
                println!(
                    "attribution: {attributed} cycle-cells = {} cycles x {} cores (exclusive)",
                    run.stats.cycles,
                    run.stats.cores.len()
                );
                for r in &run.regions {
                    println!(
                        "  {:<12} cycles {:>8}..{:<8} ({} cycles, {} executed)",
                        r.label(),
                        r.start_cycle,
                        r.end_cycle,
                        r.cycles(),
                        r.breakdown.execute
                    );
                }
                print!("{}", energy_waterfall(&run.stats, &model, &config));
                println!();
            }
            ExitCode::SUCCESS
        }
        "trace" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            let lowered = match lower(&kernel, args.team, &config) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("lowering failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(path) = &args.chrome {
                let run = match profile_run(
                    &config,
                    &lowered.program,
                    args.max_cycles.unwrap_or(DEFAULT_RUN_BUDGET),
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("simulation failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let mut rec = recorder_of_run(&run);
                energy_waterfall(&run.stats, &EnergyModel::table1(), &config).record(&mut rec);
                let json = pulp_obs::chrome_trace(&rec, &format!("pulp_cli {name} t{}", args.team));
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "wrote {path}: {} cycles, {} spans (load in chrome://tracing or ui.perfetto.dev)",
                    run.stats.cycles,
                    rec.spans().len()
                );
                ExitCode::SUCCESS
            } else {
                let mut sink = TextSink::new();
                match simulate_traced(
                    &config,
                    &lowered.program,
                    args.max_cycles.unwrap_or(DEFAULT_RUN_BUDGET),
                    &mut sink,
                ) {
                    Ok(_) => {
                        print!("{}", sink.text);
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("simulation failed: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
        }
        "cache" => {
            let Some(action) = args.kernel.as_deref() else {
                return usage();
            };
            let Some(dir) = args.cache_dir.as_deref() else {
                eprintln!("cache {action}: --cache-dir DIR is required");
                return ExitCode::FAILURE;
            };
            let dir = std::path::Path::new(dir);
            match action {
                "stats" => match SweepCache::dir_stats(dir) {
                    Ok(stats) => {
                        println!("cache dir : {}", dir.display());
                        println!("version   : {}", default_cache_version());
                        println!("entries   : {}", stats.entries);
                        println!("size      : {} bytes", stats.bytes);
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("cannot read {}: {e}", dir.display());
                        ExitCode::FAILURE
                    }
                },
                "clear" => match SweepCache::clear(dir) {
                    Ok(removed) => {
                        println!("removed {removed} cached sweep(s) from {}", dir.display());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("cannot clear {}: {e}", dir.display());
                        ExitCode::FAILURE
                    }
                },
                _ => usage(),
            }
        }
        "serve" => cmd_serve(&args),
        "report" => match args.kernel.as_deref() {
            Some(path) if args.rest.is_empty() => cmd_report(path),
            _ => usage(),
        },
        "journal" => match args.kernel.as_deref() {
            Some("validate") if !args.rest.is_empty() => cmd_journal_validate(&args.rest),
            _ => usage(),
        },
        "bench" => match args.kernel.as_deref() {
            Some("diff") if args.rest.len() == 2 => {
                cmd_bench_diff(&args.rest[0], &args.rest[1], args.p99_tolerance)
            }
            Some("sim") if args.rest.is_empty() => cmd_bench_sim(&args),
            Some("serve") if args.rest.is_empty() => cmd_bench_serve(&args),
            Some("models") if args.rest.is_empty() => cmd_bench_models(&args),
            Some("history") if args.rest.len() == 1 => {
                cmd_bench_history(&args.rest[0], args.p99_tolerance)
            }
            _ => usage(),
        },
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Option<Args> {
        parse_from(words.iter().map(|s| s.to_string()))
    }

    /// [`bench_regressions_with`] at the default serve p99 tolerance.
    fn bench_regressions(old: &Value, new: &Value) -> Result<Vec<String>, String> {
        bench_regressions_with(old, new, SERVE_P99_TOLERANCE)
    }

    #[test]
    fn parses_full_command_line() {
        let a = parse(&[
            "measure", "gemm", "--dtype", "i32", "--size", "512", "--team", "6",
        ])
        .expect("parse");
        assert_eq!(a.command, "measure");
        assert_eq!(a.kernel.as_deref(), Some("gemm"));
        assert_eq!(a.dtype, Some(DType::I32));
        assert_eq!(a.size, 512);
        assert_eq!(a.team, 6);
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["pretty", "fir"]).expect("parse");
        assert_eq!(a.dtype, None);
        assert_eq!(a.size, 2048);
        assert_eq!(a.team, 4);
    }

    #[test]
    fn rejects_bad_dtype_and_flags() {
        assert!(parse(&["measure", "gemm", "--dtype", "f64"]).is_none());
        assert!(parse(&["measure", "gemm", "--bogus"]).is_none());
        assert!(parse(&[]).is_none());
    }

    #[test]
    fn chrome_flag_takes_a_path() {
        let a = parse(&["trace", "fir", "--chrome", "out.json"]).expect("parse");
        assert_eq!(a.chrome.as_deref(), Some("out.json"));
        assert!(parse(&["trace", "fir", "--chrome"]).is_none());
    }

    #[test]
    fn serve_and_bench_subcommands_parse() {
        let a = parse(&["serve", "--addr", "0.0.0.0:9000", "--full"]).expect("parse");
        assert_eq!(a.command, "serve");
        assert_eq!(a.addr.as_deref(), Some("0.0.0.0:9000"));
        assert!(a.full);

        let a = parse(&["bench", "diff", "old.json", "new.json"]).expect("parse");
        assert_eq!(a.kernel.as_deref(), Some("diff"));
        assert_eq!(a.rest, vec!["old.json".to_string(), "new.json".to_string()]);
    }

    #[test]
    fn bench_sim_flags_parse_strictly() {
        let a = parse(&[
            "bench",
            "sim",
            "--quick",
            "--out",
            "custom.json",
            "--max-cycles",
            "5000",
        ])
        .expect("parse");
        assert_eq!(a.kernel.as_deref(), Some("sim"));
        assert!(a.quick);
        assert_eq!(a.out.as_deref(), Some("custom.json"));
        assert_eq!(a.max_cycles, Some(5_000));
        // Zero, negative and garbage budgets are rejected outright.
        assert!(parse(&["bench", "sim", "--max-cycles", "0"]).is_none());
        assert!(parse(&["bench", "sim", "--max-cycles", "-3"]).is_none());
        assert!(parse(&["bench", "sim", "--max-cycles", "many"]).is_none());
        assert!(parse(&["bench", "sim", "--max-cycles"]).is_none());
    }

    fn headline_value(static_at_5: f64) -> Value {
        Value::Map(vec![(
            "accuracy".to_string(),
            Value::Map(vec![
                ("static_at_0".to_string(), Value::F64(0.55)),
                ("static_at_5".to_string(), Value::F64(static_at_5)),
            ]),
        )])
    }

    #[test]
    fn bench_diff_flags_only_real_regressions() {
        let base = headline_value(0.80);
        // Within tolerance: a 1-point drop passes.
        let ok = bench_regressions(&base, &headline_value(0.79)).expect("compare");
        assert!(ok.is_empty(), "{ok:?}");
        // Beyond tolerance fails and names the field.
        let bad = bench_regressions(&base, &headline_value(0.70)).expect("compare");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("static_at_5"), "{bad:?}");
        // Improvements never fail.
        assert!(bench_regressions(&base, &headline_value(0.95))
            .expect("compare")
            .is_empty());
        // A field missing from the candidate is a failure, not a skip.
        let missing = Value::Map(vec![(
            "accuracy".to_string(),
            Value::Map(vec![("static_at_0".to_string(), Value::F64(0.55))]),
        )]);
        let out = bench_regressions(&base, &missing).expect("compare");
        assert!(out.iter().any(|r| r.contains("missing")), "{out:?}");
        // Records without an accuracy map are an error.
        assert!(bench_regressions(&Value::Map(vec![]), &base).is_err());
    }

    #[test]
    fn serve_capacity_flags_parse_strictly() {
        let a = parse(&[
            "serve",
            "--workers",
            "8",
            "--queue-depth",
            "128",
            "--timeout-ms",
            "250",
            "--max-body-bytes",
            "4096",
            "--keepalive-max",
            "32",
        ])
        .expect("parse");
        assert_eq!(a.workers, Some(8));
        assert_eq!(a.queue_depth, Some(128));
        assert_eq!(a.timeout_ms, Some(250));
        assert_eq!(a.max_body_bytes, Some(4096));
        assert_eq!(a.keepalive_max, Some(32));
        let o = serve_options(&a);
        assert_eq!((o.workers, o.queue_depth, o.timeout_ms), (8, 128, 250));
        assert_eq!((o.max_body_bytes, o.keepalive_max_requests), (4096, 32));
        // Defaults flow through when flags are absent.
        let defaults = serve_options(&parse(&["serve"]).expect("parse"));
        assert_eq!(defaults, ServeOptions::default());
        // Zero, negatives and garbage are rejected outright.
        assert!(parse(&["serve", "--workers", "0"]).is_none());
        assert!(parse(&["serve", "--queue-depth", "-1"]).is_none());
        assert!(parse(&["serve", "--timeout-ms", "soon"]).is_none());
        assert!(parse(&["serve", "--max-body-bytes"]).is_none());
    }

    #[test]
    fn retry_after_flag_parses_strictly_and_reaches_the_options() {
        let a = parse(&["serve", "--retry-after-secs", "5"]).expect("parse");
        assert_eq!(a.retry_after_secs, Some(5));
        assert_eq!(serve_options(&a).retry_after_secs, 5);
        // Default is 1 second, unchanged from the pre-flag behaviour.
        let d = serve_options(&parse(&["serve"]).expect("parse"));
        assert_eq!(d.retry_after_secs, 1);
        // Zero, negatives and garbage are rejected outright.
        assert!(parse(&["serve", "--retry-after-secs", "0"]).is_none());
        assert!(parse(&["serve", "--retry-after-secs", "-2"]).is_none());
        assert!(parse(&["serve", "--retry-after-secs", "soon"]).is_none());
        assert!(parse(&["serve", "--retry-after-secs"]).is_none());
    }

    #[test]
    fn open_loop_flags_parse_strictly() {
        let a = parse(&[
            "bench",
            "serve",
            "--quick",
            "--rate",
            "750.5",
            "--hist-out",
            "H.json",
        ])
        .expect("parse");
        assert_eq!(a.rate, Some(750.5));
        assert_eq!(a.hist_out.as_deref(), Some("H.json"));
        // Zero, negatives, garbage and missing values are rejected.
        assert!(parse(&["bench", "serve", "--rate", "0"]).is_none());
        assert!(parse(&["bench", "serve", "--rate", "-100"]).is_none());
        assert!(parse(&["bench", "serve", "--rate", "fast"]).is_none());
        assert!(parse(&["bench", "serve", "--rate", "inf"]).is_none());
        assert!(parse(&["bench", "serve", "--hist-out"]).is_none());
    }

    #[test]
    fn bench_serve_subcommand_parses() {
        let a = parse(&["bench", "serve", "--quick", "--out", "S.json"]).expect("parse");
        assert_eq!(a.kernel.as_deref(), Some("serve"));
        assert!(a.quick);
        assert_eq!(a.out.as_deref(), Some("S.json"));
        let a = parse(&["bench", "serve", "--quick", "--trace-out", "T.json"]).expect("parse");
        assert_eq!(a.trace_out.as_deref(), Some("T.json"));
        assert!(parse(&["bench", "serve", "--trace-out"]).is_none());
    }

    #[test]
    fn observability_flags_parse_strictly() {
        let a = parse(&[
            "serve",
            "--slow-ms",
            "0",
            "--flight-capacity",
            "512",
            "--log-json",
        ])
        .expect("parse");
        assert_eq!(a.slow_ms, Some(0));
        assert_eq!(a.flight_capacity, Some(512));
        assert!(a.log_json);
        let o = serve_options(&a);
        assert_eq!((o.slow_ms, o.flight_capacity), (0, 512));
        // Defaults flow through when the flags are absent.
        let d = serve_options(&parse(&["serve"]).expect("parse"));
        assert_eq!(d.slow_ms, ServeOptions::default().slow_ms);
        assert_eq!(d.flight_capacity, ServeOptions::default().flight_capacity);
        // Garbage and missing values are rejected outright.
        assert!(parse(&["serve", "--slow-ms", "fast"]).is_none());
        assert!(parse(&["serve", "--slow-ms", "-1"]).is_none());
        assert!(parse(&["serve", "--flight-capacity", "0"]).is_none());
        assert!(parse(&["serve", "--flight-capacity"]).is_none());
    }

    #[test]
    fn p99_tolerance_parses_and_tightens_the_serve_gate() {
        let a = parse(&[
            "bench",
            "diff",
            "a.json",
            "b.json",
            "--p99-tolerance",
            "0.10",
        ])
        .expect("parse");
        assert_eq!(a.p99_tolerance, Some(0.10));
        assert!(parse(&["bench", "diff", "a.json", "b.json", "--p99-tolerance", "0"]).is_none());
        assert!(parse(&["bench", "diff", "a.json", "b.json", "--p99-tolerance", "x"]).is_none());
        // +15% p99 passes the default 20% gate but fails a 10% one.
        let base = serve_value(true, 500.0, 0.0, 0);
        let cand = serve_value(true, 575.0, 0.0, 0);
        assert!(bench_regressions(&base, &cand).expect("compare").is_empty());
        let tight = bench_regressions_with(&base, &cand, 0.10).expect("compare");
        assert_eq!(tight.len(), 1);
        assert!(tight[0].contains("mix kernel"), "{tight:?}");
    }

    fn sim_value(quick: bool, alu1_cps: f64) -> Value {
        let row = |basket: &str, cores: u64, cps: f64| {
            Value::Map(vec![
                ("basket".to_string(), Value::Str(basket.to_string())),
                ("cores".to_string(), Value::U64(cores)),
                ("ff_cycles_per_s".to_string(), Value::F64(cps)),
            ])
        };
        Value::Map(vec![
            ("bench".to_string(), Value::Str("sim".to_string())),
            ("quick".to_string(), Value::Bool(quick)),
            (
                "rows".to_string(),
                Value::Seq(vec![row("alu", 1, alu1_cps), row("barrier_dma", 8, 5e8)]),
            ),
        ])
    }

    #[test]
    fn bench_diff_gates_sim_throughput() {
        let base = sim_value(true, 1e7);
        // Within 20% passes; beyond fails and names the basket.
        assert!(bench_regressions(&base, &sim_value(true, 0.85e7))
            .expect("compare")
            .is_empty());
        let bad = bench_regressions(&base, &sim_value(true, 0.5e7)).expect("compare");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("alu @ 1 cores"), "{bad:?}");
        // Improvements never fail.
        assert!(bench_regressions(&base, &sim_value(true, 5e7))
            .expect("compare")
            .is_empty());
        // Quick-vs-full comparisons are refused, not silently compared.
        let err = bench_regressions(&base, &sim_value(false, 1e7)).unwrap_err();
        assert!(err.contains("not comparable"), "{err}");
        // A missing row is a regression.
        let mut missing = sim_value(true, 1e7);
        if let Value::Map(entries) = &mut missing {
            for (k, v) in entries.iter_mut() {
                if k == "rows" {
                    if let Value::Seq(rows) = v {
                        rows.truncate(1);
                    }
                }
            }
        }
        let out = bench_regressions(&base, &missing).expect("compare");
        assert!(out.iter().any(|r| r.contains("missing")), "{out:?}");
    }

    fn sim_value_gated(speedups: &[(&str, u64, f64)], labeling_sps: Option<f64>) -> Value {
        let rows = speedups
            .iter()
            .map(|(basket, cores, speedup)| {
                Value::Map(vec![
                    ("basket".to_string(), Value::Str((*basket).to_string())),
                    ("cores".to_string(), Value::U64(*cores)),
                    ("ff_cycles_per_s".to_string(), Value::F64(1e7)),
                    ("speedup".to_string(), Value::F64(*speedup)),
                ])
            })
            .collect();
        let mut entries = vec![
            ("bench".to_string(), Value::Str("sim".to_string())),
            ("quick".to_string(), Value::Bool(true)),
            ("rows".to_string(), Value::Seq(rows)),
        ];
        if let Some(sps) = labeling_sps {
            entries.push(("labeling_samples_per_s".to_string(), Value::F64(sps)));
        }
        Value::Map(entries)
    }

    #[test]
    fn bench_diff_gates_sim_speedup_floor() {
        let base = sim_value_gated(&[("alu", 1, 1.2)], None);
        // At or above 1.0x passes even when the baseline was faster, and
        // parity within the jitter allowance (0.96x) is tolerated.
        assert!(
            bench_regressions(&base, &sim_value_gated(&[("alu", 1, 1.0)], None))
                .expect("compare")
                .is_empty()
        );
        assert!(
            bench_regressions(&base, &sim_value_gated(&[("alu", 1, 0.96)], None))
                .expect("compare")
                .is_empty()
        );
        // Any candidate basket below 1.0x fails, regardless of the baseline
        // (extra candidate rows are still gated).
        let bad = bench_regressions(
            &base,
            &sim_value_gated(&[("alu", 1, 1.1), ("tcdm_conflict", 8, 0.84)], None),
        )
        .expect("compare");
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(
            bad[0].contains("tcdm_conflict @ 8 cores") && bad[0].contains("floor"),
            "{bad:?}"
        );
        // Rows without the column (older records) are skipped, not failed.
        assert!(bench_regressions(&base, &sim_value(true, 1e7))
            .expect("compare")
            .is_empty());
    }

    #[test]
    fn bench_diff_gates_labeling_throughput() {
        let base = sim_value_gated(&[("alu", 1, 1.2)], Some(100.0));
        // Within 20% passes; beyond fails and names the column.
        assert!(
            bench_regressions(&base, &sim_value_gated(&[("alu", 1, 1.2)], Some(85.0)))
                .expect("compare")
                .is_empty()
        );
        let bad = bench_regressions(&base, &sim_value_gated(&[("alu", 1, 1.2)], Some(50.0)))
            .expect("compare");
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("labeling throughput"), "{bad:?}");
        // Either side missing (or zero) disables the gate: old baselines
        // predate the column.
        assert!(
            bench_regressions(&base, &sim_value_gated(&[("alu", 1, 1.2)], None))
                .expect("compare")
                .is_empty()
        );
        assert!(bench_regressions(
            &sim_value_gated(&[("alu", 1, 1.2)], Some(0.0)),
            &sim_value_gated(&[("alu", 1, 1.2)], Some(50.0))
        )
        .expect("compare")
        .is_empty());
    }

    fn serve_value(quick: bool, kernel_p99: f64, shed: f64, errors: u64) -> Value {
        let row = |mix: &str, p99: f64| {
            Value::Map(vec![
                ("mix".to_string(), Value::Str(mix.to_string())),
                ("p99_us".to_string(), Value::F64(p99)),
            ])
        };
        Value::Map(vec![
            ("bench".to_string(), Value::Str("serve".to_string())),
            ("quick".to_string(), Value::Bool(quick)),
            ("shed_total".to_string(), Value::F64(shed)),
            ("errors".to_string(), Value::U64(errors)),
            (
                "rows".to_string(),
                Value::Seq(vec![row("kernel", kernel_p99), row("batch", 900.0)]),
            ),
        ])
    }

    #[test]
    fn bench_diff_gates_serve_latency_and_shed() {
        let base = serve_value(true, 500.0, 0.0, 0);
        // Within 20% passes.
        assert!(bench_regressions(&base, &serve_value(true, 590.0, 0.0, 0))
            .expect("compare")
            .is_empty());
        // A >20% p99 regression fails and names the mix.
        let bad = bench_regressions(&base, &serve_value(true, 700.0, 0.0, 0)).expect("compare");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("mix kernel"), "{bad:?}");
        // Any shed in a quick candidate fails even with great latency.
        let shed = bench_regressions(&base, &serve_value(true, 100.0, 3.0, 0)).expect("compare");
        assert!(shed.iter().any(|r| r.contains("shed")), "{shed:?}");
        // Candidate correctness errors fail.
        let err = bench_regressions(&base, &serve_value(true, 100.0, 0.0, 2)).expect("compare");
        assert!(err.iter().any(|r| r.contains("failed request")), "{err:?}");
        // Quick-vs-full refused.
        assert!(bench_regressions(&base, &serve_value(false, 500.0, 0.0, 0)).is_err());
    }

    /// `serve_value` plus an `open_loop` section at the given p99.
    fn serve_value_with_open_loop(p99: f64) -> Value {
        let Value::Map(mut fields) = serve_value(true, 500.0, 0.0, 0) else {
            unreachable!("serve_value builds a map");
        };
        fields.push((
            "open_loop".to_string(),
            Value::Map(vec![("p99_us".to_string(), Value::F64(p99))]),
        ));
        Value::Map(fields)
    }

    #[test]
    fn bench_diff_gates_the_open_loop_envelope() {
        let base = serve_value_with_open_loop(1000.0);
        // Within tolerance passes.
        assert!(
            bench_regressions(&base, &serve_value_with_open_loop(1100.0))
                .expect("compare")
                .is_empty()
        );
        // Beyond tolerance fails and names the open-loop gate.
        let bad = bench_regressions(&base, &serve_value_with_open_loop(1500.0)).expect("compare");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("open-loop"), "{bad:?}");
        // A candidate that silently dropped its open-loop section fails.
        let dropped = bench_regressions(&base, &serve_value(true, 500.0, 0.0, 0)).expect("compare");
        assert!(
            dropped.iter().any(|r| r.contains("missing from candidate")),
            "{dropped:?}"
        );
        // Old baselines without the section never engage the gate.
        let old_base = serve_value(true, 500.0, 0.0, 0);
        assert!(
            bench_regressions(&old_base, &serve_value_with_open_loop(99999.0))
                .expect("compare")
                .is_empty()
        );
    }

    /// A `BENCH_models.json`-shaped record with the given per-model
    /// static@5 accuracies and flat mismatch counts (`None` = kNN-style
    /// row without a flat form).
    fn models_value(rows: &[(&str, f64, Option<u64>)]) -> Value {
        let rows = rows
            .iter()
            .map(|(model, at5, mismatches)| {
                Value::Map(vec![
                    ("model".to_string(), Value::Str((*model).to_string())),
                    ("static_at_5".to_string(), Value::F64(*at5)),
                    (
                        "flat_mismatches".to_string(),
                        mismatches.map_or(Value::Null, Value::U64),
                    ),
                ])
            })
            .collect();
        Value::Map(vec![
            ("bench".to_string(), Value::Str("models".to_string())),
            ("quick".to_string(), Value::Bool(true)),
            ("rows".to_string(), Value::Seq(rows)),
        ])
    }

    #[test]
    fn bench_diff_gates_model_zoo_accuracy_and_flat_parity() {
        let base = models_value(&[
            ("tree", 0.93, Some(0)),
            ("gbt", 0.94, Some(0)),
            ("knn", 0.90, None),
        ]);
        // Within 1 pt passes.
        let ok = bench_regressions(
            &base,
            &models_value(&[
                ("tree", 0.925, Some(0)),
                ("gbt", 0.935, Some(0)),
                ("knn", 0.91, None),
            ]),
        )
        .expect("compare");
        assert!(ok.is_empty(), "{ok:?}");
        // A >1-pt static@5 drop fails and names the model.
        let bad = bench_regressions(
            &base,
            &models_value(&[
                ("tree", 0.90, Some(0)),
                ("gbt", 0.94, Some(0)),
                ("knn", 0.90, None),
            ]),
        )
        .expect("compare");
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].contains("model tree"), "{bad:?}");
        // Any flat mismatch fails even with perfect accuracy.
        let diverged = bench_regressions(
            &base,
            &models_value(&[
                ("tree", 0.99, Some(2)),
                ("gbt", 0.99, Some(0)),
                ("knn", 0.99, None),
            ]),
        )
        .expect("compare");
        assert_eq!(diverged.len(), 1, "{diverged:?}");
        assert!(
            diverged[0].contains("bit-exact") && diverged[0].contains("2 row(s)"),
            "{diverged:?}"
        );
        // A model missing from the candidate is a failure, not a skip.
        let missing = bench_regressions(
            &base,
            &models_value(&[("tree", 0.93, Some(0)), ("knn", 0.90, None)]),
        )
        .expect("compare");
        assert!(
            missing
                .iter()
                .any(|r| r.contains("gbt") && r.contains("missing")),
            "{missing:?}"
        );
        // Quick-vs-full refused.
        let mut full = models_value(&[("tree", 0.93, Some(0))]);
        if let Value::Map(fields) = &mut full {
            for (k, v) in fields.iter_mut() {
                if k == "quick" {
                    *v = Value::Bool(false);
                }
            }
        }
        assert!(bench_regressions(&base, &full).is_err());
    }

    #[test]
    fn bench_models_subcommand_and_flags_parse() {
        let a = parse(&[
            "bench",
            "models",
            "--quick",
            "--out",
            "M.json",
            "--cv-threads",
            "4",
            "--journal",
            "R.jsonl",
        ])
        .expect("parse");
        assert_eq!(a.kernel.as_deref(), Some("models"));
        assert!(a.quick);
        assert_eq!(a.out.as_deref(), Some("M.json"));
        assert_eq!(a.cv_threads, Some(4));
        assert_eq!(a.journal.as_deref(), Some("R.jsonl"));
        // Zero, garbage and missing cv-thread counts are rejected.
        assert!(parse(&["bench", "models", "--cv-threads", "0"]).is_none());
        assert!(parse(&["bench", "models", "--cv-threads", "x"]).is_none());
        assert!(parse(&["bench", "models", "--cv-threads"]).is_none());
    }

    #[test]
    fn predictor_flag_parses_strictly() {
        let a = parse(&["bench", "serve", "--quick", "--predictor", "float"]).expect("parse");
        assert_eq!(a.predictor, Some(PredictorBackend::Float));
        let a = parse(&["bench", "serve", "--predictor", "flat"]).expect("parse");
        assert_eq!(a.predictor, Some(PredictorBackend::Flat));
        // Default: no override, the bench keeps its flat default.
        assert_eq!(parse(&["bench", "serve"]).expect("parse").predictor, None);
        assert!(parse(&["bench", "serve", "--predictor", "boxed"]).is_none());
        assert!(parse(&["bench", "serve", "--predictor"]).is_none());
    }

    #[test]
    fn models_record_summary_names_models_and_parity() {
        let v = models_value(&[
            ("tree", 0.93, Some(0)),
            ("gbt", 0.94, Some(0)),
            ("knn", 0.90, None),
        ]);
        let s = record_summary("models", &v);
        assert!(s.contains("tree@5=93.0%"), "{s}");
        assert!(s.contains("gbt@5=94.0%"), "{s}");
        assert!(s.contains("flat=exact"), "{s}");
        let diverged = models_value(&[("tree", 0.93, Some(4))]);
        let s = record_summary("models", &diverged);
        assert!(s.contains("flat=4 mismatch(es)"), "{s}");
    }

    #[test]
    fn report_and_journal_subcommands_parse() {
        let a = parse(&["report", "RUN.jsonl"]).expect("parse");
        assert_eq!(a.command, "report");
        assert_eq!(a.kernel.as_deref(), Some("RUN.jsonl"));

        let a = parse(&["journal", "validate", "a.jsonl", "b.jsonl"]).expect("parse");
        assert_eq!(a.command, "journal");
        assert_eq!(a.kernel.as_deref(), Some("validate"));
        assert_eq!(a.rest, vec!["a.jsonl".to_string(), "b.jsonl".to_string()]);

        let a = parse(&["bench", "history", "baselines"]).expect("parse");
        assert_eq!(a.kernel.as_deref(), Some("history"));
        assert_eq!(a.rest, vec!["baselines".to_string()]);

        let a = parse(&["bench", "sim", "--quick", "--journal", "R.jsonl"]).expect("parse");
        assert_eq!(a.journal.as_deref(), Some("R.jsonl"));
        assert!(parse(&["bench", "sim", "--journal"]).is_none());
    }

    #[test]
    fn record_summaries_name_the_headline_figures() {
        let sim = sim_value_gated(&[("alu", 1, 1.2)], Some(100.0));
        let s = record_summary("sim", &sim);
        assert!(s.contains("labeling 100.0 samples/s"), "{s}");
        assert!(s.contains("min speedup 1.20x"), "{s}");
        let serve = serve_value(true, 500.0, 0.0, 0);
        assert_eq!(record_summary("serve", &serve), "worst-mix p99 900us");
        let headline = headline_value(0.80);
        let s = record_summary("headline", &headline);
        assert!(s.contains("static_at_5=80.0%"), "{s}");
    }

    #[test]
    fn cache_subcommand_parses() {
        let a = parse(&["cache", "stats", "--cache-dir", "/tmp/sweeps"]).expect("parse");
        assert_eq!(a.command, "cache");
        assert_eq!(a.kernel.as_deref(), Some("stats"));
        assert_eq!(a.cache_dir.as_deref(), Some("/tmp/sweeps"));
        assert!(parse(&["cache", "clear", "--cache-dir"]).is_none());
    }
}

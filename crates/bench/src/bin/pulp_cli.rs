//! `pulp_cli` — command-line front end to the whole stack.
//!
//! ```text
//! pulp_cli list                                   # dataset kernels
//! pulp_cli pretty   <kernel> [--dtype d] [--size n]   # pseudo-C source
//! pulp_cli features <kernel> [--dtype d] [--size n]   # static features
//! pulp_cli disasm   <kernel> [--team t] [...]         # lowered program
//! pulp_cli measure  <kernel> [...]                    # energy at 1..=8 cores
//! pulp_cli classify <kernel> [...]                    # train + predict
//! pulp_cli mca      <kernel> [...]                    # LLVM-MCA-style report
//! pulp_cli profile  <kernel> [...]                    # stall causes + energy, 1..=8 cores
//! pulp_cli trace    <kernel> [--team t] [...]         # GVSOC-style trace
//! pulp_cli trace    <kernel> --chrome out.json [...]  # Chrome trace-event JSON
//! pulp_cli cache    stats --cache-dir DIR             # sweep-cache usage
//! pulp_cli cache    clear --cache-dir DIR             # delete cached sweeps
//! ```
//!
//! Defaults: `--dtype f32` (or the kernel's only supported type),
//! `--size 2048`, `--team 4`.

use kernel_ir::{lower, DType, Kernel};
use pulp_bench::{profile_run, recorder_of_run, QUICK_KERNELS};
use pulp_energy::{
    default_cache_version, measure_kernel,
    pipeline::{LabeledDataset, PipelineOptions},
    static_feature_names, static_feature_vector, StaticFeatureSet, SweepCache,
};
use pulp_energy_model::{energy_waterfall, EnergyModel};
use pulp_kernels::{registry, KernelDef, KernelParams};
use pulp_ml::{DecisionTree, TreeParams};
use pulp_sim::{simulate_traced, ClusterConfig, TextSink};
use std::process::ExitCode;

#[derive(Debug)]
struct Args {
    command: String,
    kernel: Option<String>,
    dtype: Option<DType>,
    size: usize,
    team: usize,
    chrome: Option<String>,
    cache_dir: Option<String>,
}

fn parse_args() -> Option<Args> {
    parse_from(std::env::args().skip(1))
}

fn parse_from(mut argv: impl Iterator<Item = String>) -> Option<Args> {
    let command = argv.next()?;
    let mut args = Args {
        command,
        kernel: None,
        dtype: None,
        size: 2048,
        team: 4,
        chrome: None,
        cache_dir: None,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--chrome" => args.chrome = Some(argv.next()?),
            "--cache-dir" => args.cache_dir = Some(argv.next()?),
            "--dtype" => {
                args.dtype = match argv.next().as_deref() {
                    Some("i32") => Some(DType::I32),
                    Some("f32") => Some(DType::F32),
                    other => {
                        eprintln!("unknown dtype {other:?} (use i32 or f32)");
                        return None;
                    }
                };
            }
            "--size" => args.size = argv.next()?.parse().ok()?,
            "--team" => args.team = argv.next()?.parse().ok()?,
            other if !other.starts_with("--") && args.kernel.is_none() => {
                args.kernel = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument {other}");
                return None;
            }
        }
    }
    Some(args)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: pulp_cli <list|pretty|features|disasm|measure|classify|mca|profile|trace> \
         [kernel] [--dtype i32|f32] [--size BYTES] [--team N] [--chrome OUT.json]\n   \
         or: pulp_cli cache <stats|clear> --cache-dir DIR"
    );
    ExitCode::FAILURE
}

fn find_kernel<'a>(defs: &'a [KernelDef], name: &str) -> Option<&'a KernelDef> {
    let found = defs.iter().find(|d| d.name == name);
    if found.is_none() {
        eprintln!("unknown kernel `{name}`; run `pulp_cli list`");
    }
    found
}

fn instantiate(def: &KernelDef, args: &Args) -> Option<Kernel> {
    let dtype = args.dtype.unwrap_or_else(|| {
        if def.supports(DType::F32) {
            DType::F32
        } else {
            DType::I32
        }
    });
    if !def.supports(dtype) {
        eprintln!("kernel {} does not support {dtype}", def.name);
        return None;
    }
    match def.build(&KernelParams::new(dtype, args.size)) {
        Ok(k) => Some(k),
        Err(e) => {
            eprintln!("cannot instantiate {}: {e}", def.name);
            None
        }
    }
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    let defs = registry();
    let config = ClusterConfig::default();

    match args.command.as_str() {
        "list" => {
            println!("{:<24} {:<10} dtypes", "kernel", "suite");
            for d in &defs {
                let dtypes: Vec<String> = d.dtypes.iter().map(|t| t.to_string()).collect();
                println!(
                    "{:<24} {:<10} {}",
                    d.name,
                    d.suite.to_string(),
                    dtypes.join(",")
                );
            }
            ExitCode::SUCCESS
        }
        "pretty" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            print!("{kernel}");
            ExitCode::SUCCESS
        }
        "features" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            for (n, v) in static_feature_names()
                .iter()
                .zip(static_feature_vector(&kernel))
            {
                println!("{n:>10} = {v:.4}");
            }
            ExitCode::SUCCESS
        }
        "disasm" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            match lower(&kernel, args.team, &config) {
                Ok(lowered) => {
                    print!("{}", lowered.program.disassemble());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("lowering failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "measure" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            match measure_kernel(&kernel, &config, &EnergyModel::table1()) {
                Ok(profile) => {
                    println!(
                        "{:>6} {:>12} {:>10} {:>9}",
                        "cores", "energy [uJ]", "cycles", "speedup"
                    );
                    for c in 0..8 {
                        let mark = if c == profile.label() {
                            "  <== min energy"
                        } else {
                            ""
                        };
                        println!(
                            "{:>6} {:>12.4} {:>10} {:>8.2}x{mark}",
                            c + 1,
                            profile.energy[c] * 1e-9,
                            profile.cycles[c],
                            profile.speedup(c)
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("measurement failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "classify" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            eprintln!("training on the quick kernel set...");
            let data = match LabeledDataset::build(&PipelineOptions::quick(QUICK_KERNELS)) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("training-set build failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let ds = match data.static_dataset(StaticFeatureSet::All) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("dataset assembly failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut tree = DecisionTree::new(TreeParams::default());
            tree.fit(&ds);
            let predicted = tree.predict(&static_feature_vector(&kernel));
            println!(
                "predicted minimum-energy configuration: {} cores",
                predicted + 1
            );
            if let Ok(profile) = measure_kernel(&kernel, &config, &EnergyModel::table1()) {
                println!(
                    "simulated ground truth: {} cores (waste of prediction: {:.2}%)",
                    profile.label() + 1,
                    profile.waste(predicted) * 100.0
                );
            }
            ExitCode::SUCCESS
        }
        "mca" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            let block = pulp_mca::kernel_block(&kernel);
            let features = pulp_mca::analyze_block(&block, pulp_mca::DEFAULT_ITERATIONS);
            print!(
                "{}",
                pulp_mca::render_report(block.len(), pulp_mca::DEFAULT_ITERATIONS, &features)
            );
            ExitCode::SUCCESS
        }
        "profile" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            let model = EnergyModel::table1();
            for team in 1..=config.num_cores {
                let lowered = match lower(&kernel, team, &config) {
                    Ok(l) => l,
                    Err(e) => {
                        eprintln!("lowering failed at team {team}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let run = match profile_run(&config, &lowered.program, 100_000_000) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("simulation failed at team {team}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                if let Err(e) = run.stats.check_consistency() {
                    eprintln!("attribution inconsistent at team {team}: {e}");
                    return ExitCode::FAILURE;
                }
                let attributed = run.stats.breakdown_totals().total();
                println!("== {name} team {team} ==");
                print!("{}", run.stats.summary());
                println!(
                    "attribution: {attributed} cycle-cells = {} cycles x {} cores (exclusive)",
                    run.stats.cycles,
                    run.stats.cores.len()
                );
                for r in &run.regions {
                    println!(
                        "  {:<12} cycles {:>8}..{:<8} ({} cycles, {} executed)",
                        r.label(),
                        r.start_cycle,
                        r.end_cycle,
                        r.cycles(),
                        r.breakdown.execute
                    );
                }
                print!("{}", energy_waterfall(&run.stats, &model, &config));
                println!();
            }
            ExitCode::SUCCESS
        }
        "trace" => {
            let Some(name) = &args.kernel else {
                return usage();
            };
            let Some(def) = find_kernel(&defs, name) else {
                return ExitCode::FAILURE;
            };
            let Some(kernel) = instantiate(def, &args) else {
                return ExitCode::FAILURE;
            };
            let lowered = match lower(&kernel, args.team, &config) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("lowering failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(path) = &args.chrome {
                let run = match profile_run(&config, &lowered.program, 100_000_000) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("simulation failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let mut rec = recorder_of_run(&run);
                energy_waterfall(&run.stats, &EnergyModel::table1(), &config).record(&mut rec);
                let json = pulp_obs::chrome_trace(&rec, &format!("pulp_cli {name} t{}", args.team));
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "wrote {path}: {} cycles, {} spans (load in chrome://tracing or ui.perfetto.dev)",
                    run.stats.cycles,
                    rec.spans().len()
                );
                ExitCode::SUCCESS
            } else {
                let mut sink = TextSink::new();
                match simulate_traced(&config, &lowered.program, 100_000_000, &mut sink) {
                    Ok(_) => {
                        print!("{}", sink.text);
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("simulation failed: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
        }
        "cache" => {
            let Some(action) = args.kernel.as_deref() else {
                return usage();
            };
            let Some(dir) = args.cache_dir.as_deref() else {
                eprintln!("cache {action}: --cache-dir DIR is required");
                return ExitCode::FAILURE;
            };
            let dir = std::path::Path::new(dir);
            match action {
                "stats" => match SweepCache::dir_stats(dir) {
                    Ok(stats) => {
                        println!("cache dir : {}", dir.display());
                        println!("version   : {}", default_cache_version());
                        println!("entries   : {}", stats.entries);
                        println!("size      : {} bytes", stats.bytes);
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("cannot read {}: {e}", dir.display());
                        ExitCode::FAILURE
                    }
                },
                "clear" => match SweepCache::clear(dir) {
                    Ok(removed) => {
                        println!("removed {removed} cached sweep(s) from {}", dir.display());
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("cannot clear {}: {e}", dir.display());
                        ExitCode::FAILURE
                    }
                },
                _ => usage(),
            }
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Option<Args> {
        parse_from(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_full_command_line() {
        let a = parse(&[
            "measure", "gemm", "--dtype", "i32", "--size", "512", "--team", "6",
        ])
        .expect("parse");
        assert_eq!(a.command, "measure");
        assert_eq!(a.kernel.as_deref(), Some("gemm"));
        assert_eq!(a.dtype, Some(DType::I32));
        assert_eq!(a.size, 512);
        assert_eq!(a.team, 6);
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["pretty", "fir"]).expect("parse");
        assert_eq!(a.dtype, None);
        assert_eq!(a.size, 2048);
        assert_eq!(a.team, 4);
    }

    #[test]
    fn rejects_bad_dtype_and_flags() {
        assert!(parse(&["measure", "gemm", "--dtype", "f64"]).is_none());
        assert!(parse(&["measure", "gemm", "--bogus"]).is_none());
        assert!(parse(&[]).is_none());
    }

    #[test]
    fn chrome_flag_takes_a_path() {
        let a = parse(&["trace", "fir", "--chrome", "out.json"]).expect("parse");
        assert_eq!(a.chrome.as_deref(), Some("out.json"));
        assert!(parse(&["trace", "fir", "--chrome"]).is_none());
    }

    #[test]
    fn cache_subcommand_parses() {
        let a = parse(&["cache", "stats", "--cache-dir", "/tmp/sweeps"]).expect("parse");
        assert_eq!(a.command, "cache");
        assert_eq!(a.kernel.as_deref(), Some("stats"));
        assert_eq!(a.cache_dir.as_deref(), Some("/tmp/sweeps"));
        assert!(parse(&["cache", "clear", "--cache-dir"]).is_none());
    }
}

//! E4 — Figure 2 (right): classification accuracy vs energy tolerance
//! across static feature families (RAW, AGG, MCA, RAW+AGG, ALL) plus the
//! importance-pruned "optimised" set.
//!
//! Expected shape (paper): the families are roughly coherent at 0%
//! tolerance (~57%), approach 80% at 5%, and pruning to the most important
//! features improves the 0%-tolerance accuracy.

use pulp_bench::{load_or_build_dataset, CommonArgs};
use pulp_energy::{
    default_tolerances, report::render_curves, tolerance_curve, top_feature_columns,
    StaticFeatureSet, ToleranceCurve,
};

/// Features kept by the pruning step (the paper's "optimised" classifier).
const OPTIMIZED_FEATURES: usize = 6;

fn main() {
    let start = std::time::Instant::now();
    let args = CommonArgs::parse();
    let opts = args.pipeline_options();
    let data = load_or_build_dataset(&opts, &args);
    let protocol = args.protocol();
    let tolerances = default_tolerances();
    let energies = data.energies();

    let mut curves: Vec<ToleranceCurve> = Vec::new();
    for set in StaticFeatureSet::ALL_SETS {
        let ds = data.static_dataset(set).expect("static dataset");
        if !args.quiet {
            args.logger().info(
                "fig2-right",
                "evaluating feature set",
                &[
                    ("set", set.name().to_string()),
                    ("features", ds.n_features().to_string()),
                ],
            );
        }
        curves.push(tolerance_curve(
            set.name(),
            &ds,
            &energies,
            &tolerances,
            &protocol,
        ));
    }

    // Optimised: rank the full static vector, keep the top features.
    let all = data
        .static_dataset(StaticFeatureSet::All)
        .expect("static dataset");
    let top = top_feature_columns(&all, OPTIMIZED_FEATURES, &protocol);
    let kept: Vec<&str> = top
        .iter()
        .map(|&c| all.feature_names()[c].as_str())
        .collect();
    if !args.quiet {
        args.logger().info(
            "fig2-right",
            "optimised set keeps",
            &[("features", format!("{kept:?}"))],
        );
    }
    let optimized = all.select_features(&top);
    curves.push(tolerance_curve(
        "optimised",
        &optimized,
        &energies,
        &tolerances,
        &protocol,
    ));

    println!("E4 / Figure 2 (right) — static feature families\n");
    print!("{}", render_curves(&curves));
    println!("\noptimised set keeps: {kept:?}");

    println!("\nshape checks:");
    for c in &curves {
        let at = |t: f64| c.at(t).expect("non-empty tolerance grid");
        println!(
            "  {:<10} @0% = {:>5.1}%   @5% = {:>5.1}%",
            c.label,
            at(0.0) * 100.0,
            at(0.05) * 100.0
        );
    }
    args.dump_json(&curves);
    args.write_manifest("fig2_right", &opts, Some(&protocol), start);
}

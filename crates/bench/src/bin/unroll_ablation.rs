//! E9 (extension) — compiler-knob sensitivity: loop unrolling.
//!
//! The paper extracts static features from one fixed compilation of each
//! kernel. This ablation asks how robust the approach is to a compiler
//! knob it holds fixed: innermost-loop unrolling changes both the energy
//! landscape (fewer loop-control instructions, more I-cache refills) and
//! the static features (bigger `op`/`tcdm` counts). We measure, per
//! unroll factor: the energy at the optimum, whether the optimal core
//! count moves, and whether a predictor trained on factor-1 code still
//! places unrolled kernels within tolerance.

use kernel_ir::{unroll_innermost, DType};
use pulp_bench::CommonArgs;
use pulp_energy::{measure_kernel, static_feature_vector, EnergyPredictor, StaticFeatureSet};
use pulp_energy_model::EnergyModel;
use pulp_kernels::{registry, KernelParams};
use pulp_ml::TreeParams;
use pulp_sim::ClusterConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    kernel: String,
    factor: u32,
    optimal_cores: usize,
    energy_at_optimum_uj: f64,
    energy_saved_vs_rolled: f64,
    static_op: f64,
    predictor_waste: f64,
}

fn main() {
    let start = std::time::Instant::now();
    let args = CommonArgs::parse();
    let opts = args.pipeline_options();
    let config = ClusterConfig::default();
    let model = EnergyModel::table1();

    // Train a predictor on ordinary (factor-1) kernels.
    if !args.quiet {
        args.logger()
            .info("unroll", "training factor-1 predictor", &[]);
    }
    let data = pulp_bench::load_or_build_dataset(&opts, &args);
    let predictor =
        EnergyPredictor::train(&data, StaticFeatureSet::All, TreeParams::default()).expect("train");

    let kernels = ["fir", "gemm", "autocorr", "conv2d_5x5"];
    let factors = [1u32, 2, 4, 8];
    println!("E9 — loop-unrolling ablation\n");
    println!(
        "{:<12} {:>7} {:>6} {:>12} {:>10} {:>10} {:>12}",
        "kernel", "unroll", "best", "E@best [uJ]", "saved", "static op", "pred waste"
    );
    let mut rows = Vec::new();
    for name in kernels {
        let def = registry()
            .into_iter()
            .find(|d| d.name == name)
            .expect("kernel");
        let base = def
            .build(&KernelParams::new(DType::I32, 8196))
            .expect("build");
        let mut rolled_energy = 0.0;
        for factor in factors {
            let kernel = unroll_innermost(&base, factor);
            let profile = measure_kernel(&kernel, &config, &model).expect("measure");
            let best = profile.label();
            let e_best = profile.energy[best];
            if factor == 1 {
                rolled_energy = e_best;
            }
            let predicted = predictor.predict_cores(&kernel) - 1;
            let waste = profile.waste(predicted);
            let op = static_feature_vector(&kernel)[0];
            println!(
                "{:<12} {:>7} {:>6} {:>12.4} {:>9.1}% {:>10} {:>11.1}%",
                name,
                factor,
                best + 1,
                e_best * 1e-9,
                (1.0 - e_best / rolled_energy) * 100.0,
                op,
                waste * 100.0
            );
            rows.push(Row {
                kernel: name.to_string(),
                factor,
                optimal_cores: best + 1,
                energy_at_optimum_uj: e_best * 1e-9,
                energy_saved_vs_rolled: 1.0 - e_best / rolled_energy,
                static_op: op,
                predictor_waste: waste,
            });
        }
    }

    println!("\nshape checks:");
    let saved_any = rows
        .iter()
        .any(|r| r.factor > 1 && r.energy_saved_vs_rolled > 0.02);
    println!("  unrolling saves energy somewhere (> 2%): {saved_any}");
    let max_waste = rows
        .iter()
        .filter(|r| r.factor > 1)
        .map(|r| r.predictor_waste)
        .fold(0.0f64, f64::max);
    println!(
        "  factor-1 predictor stays within {:.1}% waste on unrolled code",
        max_waste * 100.0
    );
    args.dump_json(&rows);
    args.write_manifest("unroll_ablation", &opts, None, start);
}

//! `profile_report` — cycle-attribution and energy waterfall sweep.
//!
//! Profiles the quick kernel subset at every team size and prints, per
//! run, total cycles, energy and the dominant non-execute stall cause.
//! `--detail` additionally prints the full per-core stall table and the
//! energy waterfall of the single most interesting run per kernel (its
//! minimum-energy team).
//!
//! ```text
//! profile_report [--size BYTES] [--detail] [--json PATH] [--quiet]
//! ```

use kernel_ir::{lower, DType};
use pulp_bench::{profile_run, QUICK_KERNELS};
use pulp_energy_model::{energy_waterfall, EnergyModel};
use pulp_kernels::{registry, KernelParams};
use pulp_sim::{ClusterConfig, CycleCause};
use serde::Value;
use std::process::ExitCode;

struct Args {
    size: usize,
    detail: bool,
    json: Option<String>,
    quiet: bool,
}

fn parse_args() -> Option<Args> {
    let mut args = Args {
        size: 2048,
        detail: false,
        json: None,
        quiet: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--size" => args.size = argv.next()?.parse().ok()?,
            "--detail" => args.detail = true,
            "--json" => args.json = Some(argv.next()?),
            "--quiet" => args.quiet = true,
            other => {
                eprintln!("unknown argument {other}");
                return None;
            }
        }
    }
    Some(args)
}

/// The cause (other than plain execution) that claimed the most cycles.
fn dominant_stall(b: &pulp_sim::CycleBreakdown) -> (CycleCause, u64) {
    CycleCause::ALL
        .iter()
        .filter(|c| !matches!(c, CycleCause::Execute | CycleCause::ExecTail))
        .map(|&c| (c, b.count(c)))
        .max_by_key(|&(_, n)| n)
        .unwrap_or((CycleCause::Idle, 0))
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        eprintln!("usage: profile_report [--size BYTES] [--detail] [--json PATH] [--quiet]");
        return ExitCode::FAILURE;
    };
    let config = ClusterConfig::default();
    let model = EnergyModel::table1();
    let defs = registry();
    let mut json_kernels: Vec<(String, Value)> = Vec::new();

    if !args.quiet {
        println!(
            "{:<20} {:>4} {:>10} {:>12} {:>7} {:<14}",
            "kernel", "team", "cycles", "energy [uJ]", "exec%", "top stall"
        );
    }
    for name in QUICK_KERNELS {
        let Some(def) = defs.iter().find(|d| d.name == *name) else {
            eprintln!("quick kernel {name} missing from registry");
            return ExitCode::FAILURE;
        };
        let dtype = if def.supports(DType::F32) {
            DType::F32
        } else {
            DType::I32
        };
        let kernel = match def.build(&KernelParams::new(dtype, args.size)) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("cannot instantiate {name}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut best: Option<(usize, f64)> = None;
        let mut team_values: Vec<Value> = Vec::new();
        for team in 1..=config.num_cores {
            let run = match lower(&kernel, team, &config)
                .map_err(|e| e.to_string())
                .and_then(|l| {
                    profile_run(&config, &l.program, 100_000_000).map_err(|e| e.to_string())
                }) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{name} team {team}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let totals = run.stats.breakdown_totals();
            debug_assert_eq!(
                totals.total(),
                run.stats.cycles * run.stats.cores.len() as u64
            );
            let fj = energy_waterfall(&run.stats, &model, &config).total();
            let exec_pct = 100.0 * totals.execute as f64 / totals.total() as f64;
            let (cause, n) = dominant_stall(&totals);
            if !args.quiet {
                println!(
                    "{:<20} {:>4} {:>10} {:>12.4} {:>6.1}% {:<10} ({n})",
                    name,
                    team,
                    run.stats.cycles,
                    fj * 1e-9,
                    exec_pct,
                    cause.token()
                );
            }
            if best.is_none_or(|(_, e)| fj < e) {
                best = Some((team, fj));
            }
            team_values.push(Value::Map(vec![
                ("team".to_string(), Value::U64(team as u64)),
                ("cycles".to_string(), Value::U64(run.stats.cycles)),
                ("energy_fj".to_string(), Value::F64(fj)),
                (
                    "breakdown".to_string(),
                    Value::Map(
                        totals
                            .iter()
                            .map(|(c, v)| (c.token().to_string(), Value::U64(v)))
                            .collect(),
                    ),
                ),
            ]));
        }
        if args.detail {
            let (team, _) = best.expect("at least one team");
            let lowered = lower(&kernel, team, &config).expect("lowering succeeded above");
            let run = profile_run(&config, &lowered.program, 100_000_000)
                .expect("simulation succeeded above");
            println!("-- {name} detail (minimum-energy team {team}) --");
            print!("{}", run.stats.summary());
            print!("{}", energy_waterfall(&run.stats, &model, &config));
        }
        json_kernels.push((name.to_string(), Value::Seq(team_values)));
    }

    if let Some(path) = &args.json {
        let record = Value::Map(vec![
            ("size".to_string(), Value::U64(args.size as u64)),
            ("kernels".to_string(), Value::Map(json_kernels)),
        ]);
        let text = serde_json::to_string_pretty(&record).expect("value serialises");
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            eprintln!("[profile_report] wrote {path}");
        }
    }
    ExitCode::SUCCESS
}

//! # pulp-bench — experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §5 and
//! EXPERIMENTS.md), plus Criterion micro-benchmarks of the substrates.
//!
//! All experiment binaries accept:
//!
//! * `--quick` — reduced dataset (subset of kernels, 2 payload sizes) and
//!   reduced CV protocol; for smoke-testing the harness.
//! * `--json <path>` — dump the machine-readable record next to the text
//!   report.
//! * `--threads <n>` — simulation worker threads (default: all cores).
//! * `--cv-threads <n>` — cross-validation worker threads (default: all
//!   cores; predictions are bit-identical at any value).
//! * `--cache-dir <dir>` — content-addressed sweep cache; repeat runs skip
//!   every previously simulated sample.
//! * `--progress` — per-sample progress lines on stderr during the sweep.
//! * `--quiet` — suppress informational stderr chatter.
//!
//! Without `--cache-dir` the full dataset build (448 samples × 8 team
//! sizes) is cached wholesale on disk (`target/pulp-dataset-*.json`) so
//! consecutive experiments reuse it; with `--cache-dir` that coarse cache
//! is bypassed in favour of the per-sample sweep cache.

pub mod models_bench;
pub mod net;
pub mod profiling;
pub mod serve;
pub mod serve_bench;
pub mod sim_bench;

pub use models_bench::{run_models_bench, ModelsBenchReport, ModelsBenchRow, MODELS};
pub use profiling::{
    chrome_trace_of_run, profile_run, recorder_of_run, CauseRun, CoreTimeline, ProfiledRun,
};
pub use serve_bench::{
    run_serve_bench, OpenLoopReport, ServeBenchMixRow, ServeBenchOptions, ServeBenchReport,
    ServeBenchRun,
};
pub use sim_bench::{basket_program, run_sim_bench, SimBenchOptions, SimBenchReport, SimBenchRow};

use pulp_energy::pipeline::{BuildObserver, LabeledDataset, PipelineOptions};
use pulp_energy::{Protocol, RunManifest, SweepCache};
use pulp_obs::{JournalEvent, JournalWriter, LogFormat, Logger, Recorder};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Usage text printed when a common flag is given an invalid value.
pub const COMMON_USAGE: &str = "common options:
  --quick             reduced dataset + reduced CV protocol
  --json <path>       dump the machine-readable record to <path>
  --threads <n>       simulation worker threads (0 = all cores)
  --cv-threads <n>    cross-validation worker threads (0 = all cores)
  --cache-dir <dir>   content-addressed sweep cache directory
  --progress          per-sample progress lines on stderr
  --quiet             suppress informational stderr chatter
  --log-json          JSON-lines structured logs on stderr (default: text)
  --manifest <path>   run-manifest output path (default: manifest.json)
  --no-manifest       skip writing the run manifest
  --max-cycles <n>    per-run simulation cycle budget (positive integer)
  --journal <path>    append-only JSONL run journal (read with `pulp_cli report`)";

/// Parsed common command-line options.
#[derive(Debug, Clone, Default)]
pub struct CommonArgs {
    /// Reduced dataset + protocol.
    pub quick: bool,
    /// Optional JSON dump path.
    pub json: Option<PathBuf>,
    /// Simulation threads (0 = all).
    pub threads: usize,
    /// Cross-validation threads (0 = all).
    pub cv_threads: usize,
    /// Sweep-cache directory (`--cache-dir`).
    pub cache_dir: Option<PathBuf>,
    /// Per-sample progress on stderr (`--progress`).
    pub progress: bool,
    /// Suppress informational stderr chatter (`--quiet`).
    pub quiet: bool,
    /// Structured JSON-lines logs instead of `[stage] message` text
    /// (`--log-json`).
    pub log_json: bool,
    /// Run-manifest output path (`--manifest`; default `manifest.json`).
    pub manifest: Option<PathBuf>,
    /// Skip the run manifest entirely (`--no-manifest`).
    pub no_manifest: bool,
    /// Per-run simulation cycle budget (`--max-cycles`; `None` = the
    /// simulator default).
    pub max_cycles: Option<u64>,
    /// Run-journal output path (`--journal`); `None` = no journal.
    pub journal: Option<PathBuf>,
}

fn flag_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    match args.next() {
        Some(v) if !v.starts_with("--") => Ok(v),
        _ => Err(format!("{flag} requires a value")),
    }
}

fn numeric_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<usize, String> {
    let v = flag_value(args, flag)?;
    v.parse()
        .map_err(|_| format!("{flag} expects a non-negative integer, got `{v}`"))
}

fn positive_u64_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<u64, String> {
    let v = flag_value(args, flag)?;
    match v.parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("{flag} expects a positive integer, got `{v}`")),
    }
}

impl CommonArgs {
    /// Parses `std::env::args`; invalid values for known flags print the
    /// usage message and exit with status 2 instead of panicking or being
    /// silently replaced by a default.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}\n\n{COMMON_USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// [`parse`](Self::parse) over an explicit argument list (testable).
    ///
    /// Unknown flags and bare tokens are ignored — binaries with extra
    /// options (e.g. `telemetry_guard --iters 31`) share this parser — but
    /// a known flag with a missing or malformed value is an error.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending flag.
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut out = Self::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--json" => out.json = Some(PathBuf::from(flag_value(&mut args, "--json")?)),
                "--threads" => out.threads = numeric_value(&mut args, "--threads")?,
                "--cv-threads" => out.cv_threads = numeric_value(&mut args, "--cv-threads")?,
                "--cache-dir" => {
                    out.cache_dir = Some(PathBuf::from(flag_value(&mut args, "--cache-dir")?));
                }
                "--progress" => out.progress = true,
                "--quiet" => out.quiet = true,
                "--log-json" => out.log_json = true,
                "--manifest" => {
                    out.manifest = Some(PathBuf::from(flag_value(&mut args, "--manifest")?));
                }
                "--no-manifest" => out.no_manifest = true,
                "--max-cycles" => {
                    out.max_cycles = Some(positive_u64_value(&mut args, "--max-cycles")?);
                }
                "--journal" => {
                    out.journal = Some(PathBuf::from(flag_value(&mut args, "--journal")?));
                }
                _ => {}
            }
        }
        Ok(out)
    }

    /// The pipeline options implied by these arguments. Opens the sweep
    /// cache when `--cache-dir` was given (an unopenable directory warns
    /// and degrades to uncached simulation).
    pub fn pipeline_options(&self) -> PipelineOptions {
        let mut opts = if self.quick {
            PipelineOptions::quick(QUICK_KERNELS)
        } else {
            PipelineOptions::default()
        };
        opts.threads = self.threads;
        // `--quiet` wins over `--progress`: a quiet run emits no live
        // progress/ETA lines even when both flags are given.
        opts.progress = self.progress && !self.quiet;
        if let Some(max_cycles) = self.max_cycles {
            opts.max_cycles = max_cycles;
        }
        if let Some(dir) = &self.cache_dir {
            match SweepCache::new(dir) {
                Ok(cache) => opts.cache = Some(Arc::new(cache)),
                Err(e) => eprintln!(
                    "warning: cannot open cache dir {}: {e}; continuing uncached",
                    dir.display()
                ),
            }
        }
        opts
    }

    /// The evaluation protocol implied by these arguments.
    pub fn protocol(&self) -> Protocol {
        let base = if self.quick {
            Protocol::quick()
        } else {
            Protocol::default()
        };
        Protocol {
            cv_threads: self.cv_threads,
            ..base
        }
    }

    /// The structured logger implied by these arguments: JSON-lines under
    /// `--log-json`, the historical `[stage] message` text otherwise.
    pub fn logger(&self) -> Logger {
        Logger::new(if self.log_json {
            LogFormat::Json
        } else {
            LogFormat::Text
        })
    }

    /// Writes the run manifest for `tool` (unless `--no-manifest`):
    /// versions, config/model hashes (sweep-cache keying), protocol, seed,
    /// cache counters and wall time since `start`. The default path is
    /// `manifest.json` in the working directory — next to the binary's
    /// report output — overridable with `--manifest <path>`.
    ///
    /// Returns the manifest written (also when writing was skipped or
    /// failed), so binaries can embed its hash in their own reports.
    pub fn write_manifest(
        &self,
        tool: &str,
        opts: &PipelineOptions,
        protocol: Option<&Protocol>,
        start: Instant,
    ) -> RunManifest {
        let mut m = RunManifest::new(tool, &opts.config, &opts.model)
            .with_extra("quick", self.quick)
            .with_wall_time_ms(start.elapsed().as_millis() as u64);
        if let Some(p) = protocol {
            m = m.with_protocol(*p);
        }
        if let Some(cache) = &opts.cache {
            m = m.with_cache_stats(cache.stats());
        }
        if self.no_manifest {
            return m;
        }
        let path = self
            .manifest
            .clone()
            .unwrap_or_else(|| PathBuf::from("manifest.json"));
        if let Err(e) = m.write(&path) {
            self.logger().warn(
                "manifest",
                "cannot write manifest",
                &[
                    ("path", path.display().to_string()),
                    ("error", e.to_string()),
                ],
            );
        } else if !self.quiet {
            self.logger().info(
                "manifest",
                "written",
                &[
                    ("path", path.display().to_string()),
                    ("hash", m.manifest_hash()),
                ],
            );
        }
        m
    }

    /// Opens the run journal when `--journal` was given. The run id is
    /// seeded from the **pre-run** manifest hash — the same provenance
    /// [`write_manifest`](Self::write_manifest) records minus the fields
    /// only known at exit (wall time, cache counters) — so the id is
    /// stable for identical inputs and computable before the run starts.
    ///
    /// An unopenable path warns and degrades to no journal; observability
    /// must never fail the experiment.
    pub fn journal_writer(
        &self,
        tool: &str,
        opts: &PipelineOptions,
        protocol: Option<&Protocol>,
    ) -> Option<JournalWriter> {
        let path = self.journal.as_ref()?;
        let mut pre =
            RunManifest::new(tool, &opts.config, &opts.model).with_extra("quick", self.quick);
        if let Some(p) = protocol {
            pre = pre.with_protocol(*p);
        }
        match JournalWriter::create(path, tool, &pre.manifest_hash(), pre.seed) {
            Ok(w) => Some(w),
            Err(e) => {
                self.logger().warn(
                    "journal",
                    "cannot open journal; continuing without one",
                    &[
                        ("path", path.display().to_string()),
                        ("error", e.to_string()),
                    ],
                );
                None
            }
        }
    }

    /// Finalizes `journal` (writing the `run_end` record) and, unless
    /// `--quiet`, logs where it landed.
    pub fn finish_journal(&self, journal: Option<JournalWriter>) {
        let Some(journal) = journal else { return };
        let run_id = journal.run_id().to_string();
        if let Err(e) = journal.finalize() {
            self.logger()
                .warn("journal", "finalize failed", &[("error", e.to_string())]);
        } else if !self.quiet {
            if let Some(path) = &self.journal {
                self.logger().info(
                    "journal",
                    "written",
                    &[("path", path.display().to_string()), ("run", run_id)],
                );
            }
        }
    }

    /// Writes `record` as pretty JSON if `--json` was given.
    pub fn dump_json<T: serde::Serialize>(&self, record: &T) {
        if let Some(path) = &self.json {
            match serde_json::to_string_pretty(record) {
                Ok(s) => {
                    if let Err(e) = std::fs::write(path, s) {
                        eprintln!("warning: cannot write {}: {e}", path.display());
                    }
                }
                Err(e) => eprintln!("warning: cannot serialise record: {e}"),
            }
        }
    }
}

/// Kernel subset used by `--quick` runs: one representative per behaviour
/// class.
pub const QUICK_KERNELS: &[&str] = &[
    "gemm",
    "fir",
    "vec_scale",
    "fpu_storm",
    "bank_hammer",
    "reduction_critical",
    "compute_dense",
    "l2_stream",
];

/// Builds the dataset, reusing an on-disk cache when the options match.
/// `--quiet` suppresses the stderr chatter; `--progress` (already folded
/// into `opts` by [`CommonArgs::pipeline_options`]) adds per-sample lines.
///
/// # Panics
///
/// Panics when the dataset cannot be built — experiments cannot proceed
/// without it.
pub fn load_or_build_dataset(opts: &PipelineOptions, args: &CommonArgs) -> LabeledDataset {
    load_or_build_dataset_observed(opts, args, None)
}

/// [`load_or_build_dataset`] with an optional run journal: the build's
/// stage events, per-shard heartbeats, slow kernels and cache attribution
/// are appended to `journal`, and the `--progress` line (with ETA and
/// straggler flags) goes through the binary's [`Logger`] — so `--log-json`
/// yields machine-readable progress too. A dataset reused from the coarse
/// JSON cache journals a `dataset_load` stage instead of a build.
///
/// # Panics
///
/// See [`load_or_build_dataset`].
pub fn load_or_build_dataset_observed(
    opts: &PipelineOptions,
    args: &CommonArgs,
    mut journal: Option<&mut JournalWriter>,
) -> LabeledDataset {
    let quiet = args.quiet;
    let log = args.logger();
    let journal_stage = |journal: &mut Option<&mut JournalWriter>, ev: JournalEvent| {
        if let Some(j) = journal {
            if let Err(e) = j.event(ev) {
                eprintln!("[dataset] warning: journal write failed: {e}");
            }
        }
    };
    // With a sweep cache the per-sample entries are the source of truth:
    // the coarse whole-dataset JSON cache is bypassed so every sample goes
    // through (and populates) the content-addressed store.
    let dataset_cache = if opts.cache.is_none() {
        Some(cache_path(args.quick))
    } else {
        None
    };
    if let Some(cache) = &dataset_cache {
        let load_t0 = std::time::Instant::now();
        if let Ok(text) = std::fs::read_to_string(cache) {
            if let Ok(data) = serde_json::from_str::<LabeledDataset>(&text) {
                if !quiet {
                    log.info(
                        "dataset",
                        "reusing cache",
                        &[("path", cache.display().to_string())],
                    );
                }
                journal_stage(
                    &mut journal,
                    JournalEvent::StageStart {
                        stage: "dataset_load".into(),
                    },
                );
                journal_stage(
                    &mut journal,
                    JournalEvent::StageEnd {
                        stage: "dataset_load".into(),
                        wall_ms: load_t0.elapsed().as_secs_f64() * 1e3,
                    },
                );
                return data;
            }
        }
    }
    if !quiet {
        log.info(
            "dataset",
            "building (this simulates every sample at 1..=8 cores)",
            &[(
                "kernels",
                opts.kernel_filter.as_ref().map_or(59, Vec::len).to_string(),
            )],
        );
    }
    let start = std::time::Instant::now();
    let mut rec = Recorder::new();
    let data = LabeledDataset::build_observed(
        opts,
        &mut rec,
        BuildObserver {
            journal,
            logger: Some(&log),
        },
    )
    .expect("dataset build failed");
    if !quiet {
        log.info(
            "dataset",
            "built",
            &[
                ("samples", data.len().to_string()),
                ("elapsed", format!("{:.1?}", start.elapsed())),
            ],
        );
    }
    if let Some(sweep) = &opts.cache {
        // In text mode this renders exactly as the historical
        // `[cache] N hits, ...` line the CI warm-cache check asserts on: a
        // warm run must report a 100% hit rate (zero simulator
        // invocations).
        log.info("cache", &sweep.stats().to_string(), &[]);
    }
    if let Some(cache) = &dataset_cache {
        if let Ok(s) = serde_json::to_string(&data) {
            if std::fs::write(cache, s).is_ok() && !quiet {
                log.info(
                    "dataset",
                    "cached",
                    &[("path", cache.display().to_string())],
                );
            }
        }
    }
    data
}

fn cache_path(quick: bool) -> PathBuf {
    let dir = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(find_target_dir);
    dir.join(if quick {
        "pulp-dataset-quick.json"
    } else {
        "pulp-dataset-full.json"
    })
}

fn find_target_dir() -> PathBuf {
    // Walk up from the executable towards a `target` directory; fall back
    // to the current directory.
    if let Ok(exe) = std::env::current_exe() {
        let mut p: &Path = exe.as_path();
        while let Some(parent) = p.parent() {
            if parent.file_name().is_some_and(|n| n == "target") {
                return parent.to_path_buf();
            }
            p = parent;
        }
    }
    PathBuf::from(".")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_kernels_exist_in_registry() {
        let names: Vec<&str> = pulp_kernels::registry().iter().map(|d| d.name).collect();
        for k in QUICK_KERNELS {
            assert!(names.contains(k), "unknown quick kernel {k}");
        }
    }

    #[test]
    fn pipeline_options_respect_quick() {
        let args = CommonArgs {
            quick: true,
            threads: 2,
            progress: true,
            ..CommonArgs::default()
        };
        let opts = args.pipeline_options();
        assert_eq!(opts.threads, 2);
        assert!(opts.progress);
        assert!(opts.cache.is_none());
        assert_eq!(
            opts.kernel_filter.as_ref().map(Vec::len),
            Some(QUICK_KERNELS.len())
        );
        assert_eq!(
            args.protocol().repeats,
            pulp_energy::Protocol::quick().repeats
        );
    }

    fn parse(tokens: &[&str]) -> Result<CommonArgs, String> {
        CommonArgs::parse_from(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parser_accepts_the_new_flags() {
        let args = parse(&[
            "--quick",
            "--threads",
            "3",
            "--cv-threads",
            "4",
            "--cache-dir",
            "/tmp/sweeps",
            "--quiet",
        ])
        .expect("valid");
        assert!(args.quick && args.quiet);
        assert_eq!(args.threads, 3);
        assert_eq!(args.cv_threads, 4);
        assert_eq!(args.cache_dir.as_deref(), Some(Path::new("/tmp/sweeps")));
        assert_eq!(args.protocol().cv_threads, 4);
    }

    #[test]
    fn parser_rejects_malformed_numeric_values() {
        // Regression: `--threads banana` used to silently become 0.
        let err = parse(&["--threads", "banana"]).unwrap_err();
        assert!(err.contains("--threads") && err.contains("banana"), "{err}");
        let err = parse(&["--cv-threads", "-1"]).unwrap_err();
        assert!(err.contains("--cv-threads"), "{err}");
        let err = parse(&["--threads"]).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
        let err = parse(&["--cache-dir", "--quick"]).unwrap_err();
        assert!(err.contains("--cache-dir"), "{err}");
        let err = parse(&["--json"]).unwrap_err();
        assert!(err.contains("--json"), "{err}");
    }

    #[test]
    fn parser_still_ignores_foreign_flags() {
        // telemetry_guard shares this parser and adds its own options.
        let args = parse(&["--iters", "31", "--threshold", "2", "--strict", "--quick"])
            .expect("foreign flags pass through");
        assert!(args.quick);
        assert_eq!(args.threads, 0);
    }

    #[test]
    fn max_cycles_parses_strictly_and_reaches_the_pipeline() {
        let args = parse(&["--max-cycles", "5000"]).expect("valid");
        assert_eq!(args.max_cycles, Some(5000));
        assert_eq!(args.pipeline_options().max_cycles, 5000);
        // Unset: the simulator default flows through.
        let args = parse(&[]).expect("valid");
        assert_eq!(args.max_cycles, None);
        assert_eq!(
            args.pipeline_options().max_cycles,
            pulp_sim::DEFAULT_MAX_CYCLES
        );
        // Strict parsing: zero, negatives and garbage are rejected.
        for bad in [
            &["--max-cycles", "0"][..],
            &["--max-cycles", "-5"],
            &["--max-cycles", "many"],
        ] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains("--max-cycles"), "{err}");
        }
        let err = parse(&["--max-cycles"]).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }

    #[test]
    fn journal_flag_parses_and_quiet_wins_over_progress() {
        let args = parse(&["--journal", "/tmp/run.jsonl", "--progress", "--quiet"]).expect("valid");
        assert_eq!(args.journal.as_deref(), Some(Path::new("/tmp/run.jsonl")));
        assert!(
            !args.pipeline_options().progress,
            "--quiet must suppress --progress"
        );
        let loud = parse(&["--progress"]).expect("valid");
        assert!(loud.pipeline_options().progress);
        let err = parse(&["--journal"]).unwrap_err();
        assert!(err.contains("--journal"), "{err}");
        assert!(parse(&[]).expect("valid").journal.is_none());
    }

    #[test]
    fn journal_writer_opens_seeded_and_finalizes() {
        let path =
            std::env::temp_dir().join(format!("pulp-bench-journal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let args = CommonArgs {
            quick: true,
            journal: Some(path.clone()),
            quiet: true,
            ..CommonArgs::default()
        };
        let opts = args.pipeline_options();
        let protocol = args.protocol();
        let w = args
            .journal_writer("test_tool", &opts, Some(&protocol))
            .expect("journal opens");
        // Run id derives from the pre-run manifest: stable across calls.
        let run_id = w.run_id().to_string();
        args.finish_journal(Some(w));
        let journal = pulp_obs::JournalReader::read_file(&path).expect("valid journal");
        assert_eq!(journal.run_id, run_id);
        assert!(journal.ok());
        let (tool, _, seed) = journal.run_start();
        assert_eq!(tool, "test_tool");
        assert_eq!(seed, protocol.seed);
        let again = args
            .journal_writer("test_tool", &opts, Some(&protocol))
            .expect("journal reopens");
        assert_eq!(again.run_id(), run_id, "run id is deterministic");
        drop(again);
        // No journal flag → no writer.
        assert!(CommonArgs::default()
            .journal_writer("t", &opts, None)
            .is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cache_dir_opens_a_sweep_cache() {
        let dir = std::env::temp_dir().join(format!("pulp-bench-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = CommonArgs {
            cache_dir: Some(dir.clone()),
            ..CommonArgs::default()
        };
        let opts = args.pipeline_options();
        assert!(opts.cache.is_some());
        assert!(dir.is_dir(), "cache dir must be created eagerly");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! # pulp-bench — experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §5 and
//! EXPERIMENTS.md), plus Criterion micro-benchmarks of the substrates.
//!
//! All experiment binaries accept:
//!
//! * `--quick` — reduced dataset (subset of kernels, 2 payload sizes) and
//!   reduced CV protocol; for smoke-testing the harness.
//! * `--json <path>` — dump the machine-readable record next to the text
//!   report.
//! * `--threads <n>` — simulation worker threads (default: all cores).
//! * `--progress` — per-sample progress lines on stderr during the sweep.
//! * `--quiet` — suppress informational stderr chatter.
//!
//! The full dataset build (448 samples × 8 team sizes) is cached on disk
//! (`target/pulp-dataset-*.json`) so consecutive experiments reuse it.

pub mod profiling;

pub use profiling::{
    chrome_trace_of_run, profile_run, recorder_of_run, CauseRun, CoreTimeline, ProfiledRun,
};

use pulp_energy::pipeline::{LabeledDataset, PipelineOptions};
use pulp_energy::Protocol;
use std::path::{Path, PathBuf};

/// Parsed common command-line options.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Reduced dataset + protocol.
    pub quick: bool,
    /// Optional JSON dump path.
    pub json: Option<PathBuf>,
    /// Simulation threads (0 = all).
    pub threads: usize,
    /// Per-sample progress on stderr (`--progress`).
    pub progress: bool,
    /// Suppress informational stderr chatter (`--quiet`).
    pub quiet: bool,
}

impl CommonArgs {
    /// Parses `std::env::args`, ignoring unknown flags.
    pub fn parse() -> Self {
        let mut quick = false;
        let mut json = None;
        let mut threads = 0usize;
        let mut progress = false;
        let mut quiet = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--json" => json = args.next().map(PathBuf::from),
                "--threads" => {
                    threads = args.next().and_then(|v| v.parse().ok()).unwrap_or(0);
                }
                "--progress" => progress = true,
                "--quiet" => quiet = true,
                _ => {}
            }
        }
        Self {
            quick,
            json,
            threads,
            progress,
            quiet,
        }
    }

    /// The pipeline options implied by these arguments.
    pub fn pipeline_options(&self) -> PipelineOptions {
        let mut opts = if self.quick {
            PipelineOptions::quick(QUICK_KERNELS)
        } else {
            PipelineOptions::default()
        };
        opts.threads = self.threads;
        opts.progress = self.progress;
        opts
    }

    /// The evaluation protocol implied by these arguments.
    pub fn protocol(&self) -> Protocol {
        if self.quick {
            Protocol::quick()
        } else {
            Protocol::default()
        }
    }

    /// Writes `record` as pretty JSON if `--json` was given.
    pub fn dump_json<T: serde::Serialize>(&self, record: &T) {
        if let Some(path) = &self.json {
            match serde_json::to_string_pretty(record) {
                Ok(s) => {
                    if let Err(e) = std::fs::write(path, s) {
                        eprintln!("warning: cannot write {}: {e}", path.display());
                    }
                }
                Err(e) => eprintln!("warning: cannot serialise record: {e}"),
            }
        }
    }
}

/// Kernel subset used by `--quick` runs: one representative per behaviour
/// class.
pub const QUICK_KERNELS: &[&str] = &[
    "gemm",
    "fir",
    "vec_scale",
    "fpu_storm",
    "bank_hammer",
    "reduction_critical",
    "compute_dense",
    "l2_stream",
];

/// Builds the dataset, reusing an on-disk cache when the options match.
/// `--quiet` suppresses the stderr chatter; `--progress` (already folded
/// into `opts` by [`CommonArgs::pipeline_options`]) adds per-sample lines.
///
/// # Panics
///
/// Panics when the dataset cannot be built — experiments cannot proceed
/// without it.
pub fn load_or_build_dataset(opts: &PipelineOptions, args: &CommonArgs) -> LabeledDataset {
    let quiet = args.quiet;
    let cache = cache_path(args.quick);
    if let Ok(text) = std::fs::read_to_string(&cache) {
        if let Ok(data) = serde_json::from_str::<LabeledDataset>(&text) {
            if !quiet {
                eprintln!("[dataset] reusing cache {}", cache.display());
            }
            return data;
        }
    }
    if !quiet {
        eprintln!(
            "[dataset] building ({} kernels x sizes; this simulates every sample at 1..=8 cores)...",
            opts.kernel_filter.as_ref().map_or(59, Vec::len)
        );
    }
    let start = std::time::Instant::now();
    let data = LabeledDataset::build(opts).expect("dataset build failed");
    if !quiet {
        eprintln!(
            "[dataset] {} samples in {:.1?}",
            data.len(),
            start.elapsed()
        );
    }
    if let Ok(s) = serde_json::to_string(&data) {
        if std::fs::write(&cache, s).is_ok() && !quiet {
            eprintln!("[dataset] cached at {}", cache.display());
        }
    }
    data
}

fn cache_path(quick: bool) -> PathBuf {
    let dir = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(find_target_dir);
    dir.join(if quick {
        "pulp-dataset-quick.json"
    } else {
        "pulp-dataset-full.json"
    })
}

fn find_target_dir() -> PathBuf {
    // Walk up from the executable towards a `target` directory; fall back
    // to the current directory.
    if let Ok(exe) = std::env::current_exe() {
        let mut p: &Path = exe.as_path();
        while let Some(parent) = p.parent() {
            if parent.file_name().is_some_and(|n| n == "target") {
                return parent.to_path_buf();
            }
            p = parent;
        }
    }
    PathBuf::from(".")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_kernels_exist_in_registry() {
        let names: Vec<&str> = pulp_kernels::registry().iter().map(|d| d.name).collect();
        for k in QUICK_KERNELS {
            assert!(names.contains(k), "unknown quick kernel {k}");
        }
    }

    #[test]
    fn pipeline_options_respect_quick() {
        let args = CommonArgs {
            quick: true,
            json: None,
            threads: 2,
            progress: true,
            quiet: false,
        };
        let opts = args.pipeline_options();
        assert_eq!(opts.threads, 2);
        assert!(opts.progress);
        assert_eq!(
            opts.kernel_filter.as_ref().map(Vec::len),
            Some(QUICK_KERNELS.len())
        );
        assert_eq!(
            args.protocol().repeats,
            pulp_energy::Protocol::quick().repeats
        );
    }
}
